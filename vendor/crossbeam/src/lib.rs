//! Offline vendored shim for the one `crossbeam` API this workspace uses:
//! [`thread::scope`]. Delegates to [`std::thread::scope`] (stable since Rust
//! 1.63), preserving crossbeam's `Result`-returning signature and the
//! `|_| ...` spawn-closure shape call sites rely on.

#![warn(missing_docs)]

/// Scoped threads with crossbeam's calling convention.
pub mod thread {
    use std::any::Any;

    /// A scope handle; `spawn` closures receive a reference to it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (unused by
        /// this workspace, kept for crossbeam signature compatibility).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// returning. Returns `Err` with the panic payload if any spawned thread
    /// panicked (crossbeam's contract); `std::thread::scope` itself would
    /// propagate the panic, so the `Err` arm is reached only via the
    /// resume/catch below.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
