//! Offline vendored shim for the subset of the `criterion` API this
//! workspace's benches use: `Criterion`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a short warmup, then
//! a fixed measurement loop, and prints the mean wall-clock time per
//! iteration — enough to compare strategies locally and to keep
//! `cargo bench` / bench-target builds working without the real crate.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one parameterized benchmark case.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runs closures under timing.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `f`: warmup, then `samples` timed runs. The measured mean is
    /// stored on the bencher and printed by the owning group.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            std::hint::black_box(f());
        }
        let t0 = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.mean = t0.elapsed() / self.samples as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: self.samples,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!("{}/{}: ~{:?}/iter", self.name, id, b.mean);
    }

    /// Runs one benchmark receiving a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (upstream API compatibility; nothing to flush here).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("default", f);
        self
    }
}

/// Declares a function running the listed benchmarks with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let runs = std::cell::Cell::new(0usize);
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs.set(runs.get() + 1);
            });
        });
        group.finish();
        assert!(runs.get() >= 3, "bencher ran {} times", runs.get());
    }
}
