//! Offline vendored shim for the subset of the `rand` 0.9 API used by this
//! workspace: [`Rng::random_range`] over integer and float ranges,
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the handful of external APIs it relies on. `StdRng` here
//! is a small counter-based SplitMix64/xoshiro-style generator — not
//! cryptographic, not stream-compatible with upstream `rand`, but
//! deterministic per seed and statistically solid for sampling, shuffling,
//! and randomized-restart search, which is all the learner needs.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free (modulo-bias-corrected via Lemire-style widening) draw of a
/// uniform integer in `[0, span)`.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply trick; a single retry loop removes the bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types producible directly from a generator (for [`Rng::random`]).
pub trait FromRng {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (same seed ⇒ same stream).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 seeding a
    /// xoshiro256++-style state. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (super::uniform_below(rng, (i + 1) as u64)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.random_range(0..13usize);
            assert!(x < 13);
            let y = rng.random_range(5..=9u32);
            assert!((5..=9).contains(&y));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
