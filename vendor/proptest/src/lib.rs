//! Offline vendored shim for the subset of the `proptest` API this workspace
//! uses: the [`Strategy`] trait with `prop_map`, integer-range / tuple /
//! vector / char-class-regex strategies, `prop_oneof!` unions,
//! `prop_compose!`, and the `proptest!` / `prop_assert*!` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics with
//! the case index and seed, which is enough to reproduce deterministically
//! (generation is seeded per case index).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::rc::Rc;

/// A failed test-case assertion (carried by `prop_assert*!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Rc<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// A union of same-valued strategies; each draw picks one arm uniformly.
/// Built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<Rc<dyn Strategy<Value = T>>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Creates a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<Rc<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// String generation from a restricted regex form: `[<class>]{m,n}` where
/// `<class>` is literal characters, `\`-escapes, and `a-z` style ranges.
/// This covers the patterns used by the workspace's property tests.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (chars, lo, hi) = parse_class_regex(self)
            .unwrap_or_else(|| panic!("unsupported string-strategy pattern: {self:?}"));
        let len = rng.random_range(lo..=hi);
        (0..len)
            .map(|_| chars[rng.random_range(0..chars.len())])
            .collect()
    }
}

/// Parses `[<class>]{m,n}` into (alphabet, m, n); `None` if the pattern does
/// not have that exact shape.
fn parse_class_regex(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let quant = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo: usize = quant.0.trim().parse().ok()?;
    let hi: usize = quant.1.trim().parse().ok()?;
    if lo > hi {
        return None;
    }
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        let c = if cs[i] == '\\' && i + 1 < cs.len() {
            i += 1;
            cs[i]
        } else if i + 2 < cs.len() && cs[i + 1] == '-' {
            // `a-z` range.
            let (a, b) = (cs[i], cs[i + 2]);
            if a > b {
                return None;
            }
            for code in a as u32..=b as u32 {
                chars.push(char::from_u32(code)?);
            }
            i += 3;
            continue;
        } else {
            cs[i]
        };
        chars.push(c);
        i += 1;
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy};

    /// Strategy for vectors of `elem` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// A `Vec<S::Value>` strategy with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Deterministic per-case RNG used by the `proptest!` macro. Public because
/// the macro expands in downstream crates.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0x5052_4F50_u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs `cases` random test cases: the `proptest!` macro's engine.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::case_rng(case);
                    $(let $arg = ($strat).generate(&mut __proptest_rng);)*
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::rc::Rc<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::rc::Rc::new($arm)),+];
        $crate::Union::new(arms)
    }};
}

/// Defines a function returning a composed strategy (subset of upstream
/// `prop_compose!`: plain typed parameters, 1–3 strategy bindings).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident : $argty:ty),* $(,)?)
            ($b1:ident in $s1:expr $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            use $crate::Strategy as _;
            ($s1).prop_map(move |$b1| $body)
        }
    };
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident : $argty:ty),* $(,)?)
            ($b1:ident in $s1:expr, $b2:ident in $s2:expr $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            use $crate::Strategy as _;
            (($s1), ($s2)).prop_map(move |($b1, $b2)| $body)
        }
    };
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident : $argty:ty),* $(,)?)
            ($b1:ident in $s1:expr, $b2:ident in $s2:expr, $b3:ident in $s3:expr $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            use $crate::Strategy as _;
            (($s1), ($s2), ($s3)).prop_map(move |($b1, $b2, $b3)| $body)
        }
    };
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_regex_parses_used_patterns() {
        let (chars, lo, hi) = super::parse_class_regex("[a-z0-9]{0,8}").unwrap();
        assert_eq!((lo, hi), (0, 8));
        assert_eq!(chars.len(), 36);
        let (chars, _, _) = super::parse_class_regex("[a-z,\"\\- ]{0,8}").unwrap();
        assert!(chars.contains(&','));
        assert!(chars.contains(&'"'));
        assert!(chars.contains(&'-'));
        assert!(chars.contains(&' '));
        assert!(chars.contains(&'q'));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, pair in (0usize..4, 1usize..5)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 4 && (1..5).contains(&pair.1));
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec((0u8..3).prop_map(|x| x * 2), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for x in &v {
                prop_assert!(x % 2 == 0 && *x < 6);
            }
        }

        #[test]
        fn oneof_and_strings(choice in prop_oneof![(0u32..1).prop_map(|_| true), (0u32..1).prop_map(|_| false)],
                             s in "[a-c]{1,3}") {
            let _ = choice;
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "bad string {:?}", s);
        }
    }

    prop_compose! {
        fn pair_sum(base: u32)(a in 0u32..5, b in 0u32..5) -> u32 {
            base + a + b
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn composed(x in pair_sum(100)) {
            prop_assert!((100..110).contains(&x));
        }
    }
}
