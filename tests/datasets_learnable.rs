//! End-to-end learnability checks: on reduced-scale versions of each
//! synthetic dataset, the learner with the *expert* bias recovers a
//! definition that separates held-out positives from negatives. These are
//! the fast versions of the Table 5 "Manual" column.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias_repro::autobias::bottom::{BcConfig, SamplingStrategy};
use autobias_repro::autobias::eval::{evaluate_definition, kfold_splits};
use autobias_repro::autobias::learn::{Learner, LearnerConfig};
use autobias_repro::datasets::{flt, hiv, imdb, sys, uw, Dataset};

fn learner() -> Learner {
    Learner::new(LearnerConfig {
        bc: BcConfig {
            depth: 2,
            strategy: SamplingStrategy::Naive { per_selection: 20 },
            max_body_literals: 100_000,
            max_tuples: 3_000,
        },
        seed: 5,
        ..LearnerConfig::default()
    })
}

fn check(ds: &Dataset, min_fm: f64) {
    let bias = ds.manual_bias().expect("manual bias");
    let (train, test) = kfold_splits(&ds.pos, &ds.neg, 3, 5).swap_remove(0);
    let (def, stats) = learner().learn(&ds.db, &bias, &train);
    assert!(!def.is_empty(), "{}: nothing learned", ds.name);
    assert!(!stats.timed_out);
    let m = evaluate_definition(&ds.db, &bias, &def, &test, 2, 5);
    assert!(
        m.f_measure() >= min_fm,
        "{}: F-measure {:.2} below {min_fm} (P={:.2} R={:.2})\n{}",
        ds.name,
        m.f_measure(),
        m.precision(),
        m.recall(),
        def.render(&ds.db)
    );
}

#[test]
fn uw_manual_bias_learns() {
    let ds = uw::generate(
        &uw::UwConfig {
            students: 60,
            professors: 20,
            courses: 25,
            advised_pairs: 40,
            negatives: 80,
            // At this reduced scale the default label noise would leave too
            // few evidenced pairs per fold; keep the noise knobs mild here
            // (the full-scale noisy configuration is exercised by the
            // table5 harness).
            evidence_prob: 0.95,
            noise_coauthor_pairs: 3,
            ..uw::UwConfig::default()
        },
        5,
    );
    check(&ds, 0.7);
}

#[test]
fn hiv_manual_bias_learns() {
    let ds = hiv::generate(
        &hiv::HivConfig {
            compounds: 120,
            positives: 40,
            negatives: 70,
            ..hiv::HivConfig::default()
        },
        5,
    );
    check(&ds, 0.7);
}

#[test]
fn imdb_manual_bias_learns() {
    let ds = imdb::generate(
        &imdb::ImdbConfig {
            movies: 300,
            directors: 100,
            actors: 200,
            writers: 60,
            positives: 30,
            negatives: 60,
            ..imdb::ImdbConfig::default()
        },
        5,
    );
    check(&ds, 0.8);
}

#[test]
fn flt_manual_bias_learns() {
    let ds = flt::generate(
        &flt::FltConfig {
            flights: 800,
            airports: 40,
            positives: 40,
            negatives: 120,
            ..flt::FltConfig::default()
        },
        5,
    );
    check(&ds, 0.8);
}

#[test]
fn sys_manual_bias_learns() {
    let ds = sys::generate(
        &sys::SysConfig {
            processes: 300,
            malicious: 25,
            negatives: 120,
            ..sys::SysConfig::default()
        },
        5,
    );
    check(&ds, 0.7);
}
