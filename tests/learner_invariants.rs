//! Cross-cutting learner invariants that hold regardless of data:
//!
//! - prefix coverage is antitone (the blocking-atom binary search's premise);
//! - armg output is a syntactic subset of its input;
//! - learned clauses respect the language bias (only body relations with
//!   modes, constants only on `#`-able attributes);
//! - sampled learning never reports coverage that exact query evaluation
//!   contradicts on the *training* set (one-sided approximation).

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias_repro::autobias::generalize::blocking_atom;
use autobias_repro::autobias::prelude::*;
use autobias_repro::relstore::{AttrRef, Database};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn coauthor_world(n: usize) -> (Database, relstore::RelId, TrainingSet, LanguageBias) {
    let mut db = Database::new();
    let student = db.add_relation("student", &["stud"]);
    let professor = db.add_relation("professor", &["prof"]);
    let publ = db.add_relation("publication", &["title", "person"]);
    let in_phase = db.add_relation("inPhase", &["stud", "phase"]);
    let target = db.add_relation("advisedBy", &["stud", "prof"]);
    let phases = ["a", "b", "c"];
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for i in 0..n {
        let s = format!("s{i}");
        let p = format!("f{i}");
        let t = format!("t{i}");
        db.insert(student, &[&s]);
        db.insert(professor, &[&p]);
        db.insert(publ, &[&t, &s]);
        db.insert(publ, &[&t, &p]);
        db.insert(in_phase, &[&s, phases[i % 3]]);
        db.insert(target, &[&s, &p]);
    }
    for i in 0..n {
        let s = db.lookup(&format!("s{i}")).unwrap();
        let p = db.lookup(&format!("f{i}")).unwrap();
        let p2 = db.lookup(&format!("f{}", (i + 1) % n)).unwrap();
        pos.push(Example::new(target, vec![s, p]));
        neg.push(Example::new(target, vec![s, p2]));
    }
    db.build_indexes();
    let bias = parse_bias(
        &db,
        target,
        "
pred student(T1)
pred professor(T3)
pred publication(T5, T1)
pred publication(T5, T3)
pred inPhase(T1, T2)
pred advisedBy(T1, T3)
mode student(+)
mode professor(+)
mode publication(-, +)
mode inPhase(+, #)
mode inPhase(+, -)
",
    )
    .unwrap();
    (db, target, TrainingSet::new(pos, neg), bias)
}

fn engine(db: &Database, train: &TrainingSet, bias: &LanguageBias) -> CoverageEngine {
    let cfg = BcConfig {
        depth: 2,
        strategy: SamplingStrategy::Full,
        max_tuples: 5_000,
        max_body_literals: 50_000,
    };
    CoverageEngine::build(db, bias, train, &cfg, SubsumeConfig::default(), 17)
}

/// Prefix coverage is antitone in the prefix length for every (clause,
/// example) pair: once a prefix fails, every extension fails.
#[test]
fn prefix_coverage_is_antitone() {
    let (db, _, train, bias) = coauthor_world(8);
    let eng = engine(&db, &train, &bias);
    for seed in 0..3 {
        let clause = eng.pos[seed].clause.clone();
        for ex in 0..train.pos.len() {
            let mut failed_at: Option<usize> = None;
            for len in 0..=clause.len() {
                let prefix = Clause::new(clause.head.clone(), clause.body[..len].to_vec());
                let covers = eng.covers_pos(&prefix, ex);
                if let Some(f) = failed_at {
                    assert!(
                        !covers,
                        "prefix {len} covers example {ex} after prefix {f} failed"
                    );
                } else if !covers {
                    failed_at = Some(len);
                }
            }
            // blocking_atom must agree with the linear scan.
            let expected = failed_at.map(|f| f - 1);
            assert_eq!(blocking_atom(&clause, &eng, ex), expected);
        }
    }
}

/// armg's result uses only literals present in its input (it only removes).
#[test]
fn armg_removes_never_adds() {
    let (db, _, train, bias) = coauthor_world(8);
    let eng = engine(&db, &train, &bias);
    let bc = eng.pos[0].clause.clone();
    for ex in 1..train.pos.len() {
        if eng.covers_pos(&bc, ex) {
            continue;
        }
        if let Some(g) = armg(&bc, &eng, ex) {
            for lit in &g.body {
                assert!(
                    bc.body.contains(lit),
                    "armg invented literal {}",
                    lit.render(&db)
                );
            }
            assert!(g.len() < bc.len());
        }
    }
}

/// Learned clauses stay inside the language bias: every body literal's
/// relation has a mode, and constants appear only on `#`-able attributes.
#[test]
fn learned_clauses_respect_bias() {
    let (db, _, train, bias) = coauthor_world(10);
    let cfg = LearnerConfig {
        bc: BcConfig {
            depth: 2,
            strategy: SamplingStrategy::Full,
            max_tuples: 5_000,
            max_body_literals: 50_000,
        },
        ..LearnerConfig::default()
    };
    let (def, _) = Learner::new(cfg).learn(&db, &bias, &train);
    assert!(!def.is_empty());
    for clause in &def.clauses {
        assert_eq!(clause.head.rel, bias.target);
        for lit in &clause.body {
            assert!(
                bias.modes_for(lit.rel).next().is_some(),
                "literal of relation without a mode: {}",
                lit.render(&db)
            );
            for (pos, term) in lit.args.iter().enumerate() {
                if matches!(term, Term::Const(_)) {
                    assert!(
                        bias.can_be_const(AttrRef::new(lit.rel, pos)),
                        "constant on a non-# attribute in {}",
                        lit.render(&db)
                    );
                }
            }
        }
    }
}

/// Sampled coverage is one-sided w.r.t. exact query evaluation: if the
/// sampled engine says a clause covers a training example, the exact SPJ
/// evaluation agrees (sampling can only *miss* coverage).
#[test]
fn sampled_coverage_is_one_sided_vs_query() {
    let (db, _, train, bias) = coauthor_world(10);
    let cfg = BcConfig {
        depth: 2,
        strategy: SamplingStrategy::Naive { per_selection: 3 },
        max_tuples: 100,
        max_body_literals: 1_000,
    };
    let eng = CoverageEngine::build(&db, &bias, &train, &cfg, SubsumeConfig::default(), 5);
    let mut rng = StdRng::seed_from_u64(2);
    let bc = build_bottom_clause(&db, &bias, &train.pos[0], &cfg, &mut rng);
    // Candidate: the generalized co-authorship clause.
    let candidate = armg(&bc.clause, &eng, 1).unwrap_or(bc.clause);
    let qcfg = QueryConfig::default();
    for (i, e) in train.pos.iter().enumerate() {
        if eng.covers_pos(&candidate, i) {
            assert!(
                clause_covers(&db, &candidate, e, &qcfg),
                "sampled engine claims coverage the exact semantics denies: {}",
                e.render(&db)
            );
        }
    }
    for (i, e) in train.neg.iter().enumerate() {
        if eng.covers_neg(&candidate, i) {
            assert!(clause_covers(&db, &candidate, e, &qcfg));
        }
    }
}
