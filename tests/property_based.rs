//! Property-based tests over the core invariants:
//!
//! - θ-subsumption matches a brute-force oracle on small random instances;
//! - sampled bottom clauses only contain tuples the full BC contains;
//! - IND discovery agrees with the direct subset check on random databases;
//! - the type graph's joinability relation is reflexive and symmetric;
//! - k-fold splits partition the data;
//! - armg results generalize (cover everything the input covered).

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point
#![cfg(not(miri))] // proptest-heavy: hundreds of cases, far too slow under miri

use autobias_repro::autobias::bottom::GroundLiteral;
use autobias_repro::autobias::prelude::*;
use autobias_repro::constraints::{build_type_graph, check_ind, discover_inds, IndConfig};
use autobias_repro::relstore::{AttrRef, Const, Database, FxHashMap, FxHashSet, RelId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------- θ-subsumption vs brute force ----------

/// Brute-force subsumption oracle: try every mapping of body literals to
/// ground literals (exponential; fine for ≤4 body literals).
fn brute_force_subsumes(clause: &Clause, ground: &GroundClause) -> bool {
    if clause.head.rel != ground.example.rel || clause.head.args.len() != ground.example.args.len()
    {
        return false;
    }
    let mut binding: FxHashMap<VarId, Const> = FxHashMap::default();
    for (t, &c) in clause.head.args.iter().zip(ground.example.args.iter()) {
        match *t {
            Term::Var(v) => match binding.get(&v) {
                None => {
                    binding.insert(v, c);
                }
                Some(&b) if b == c => {}
                Some(_) => return false,
            },
            Term::Const(k) => {
                if k != c {
                    return false;
                }
            }
        }
    }
    fn rec(body: &[Literal], ground: &GroundClause, binding: &FxHashMap<VarId, Const>) -> bool {
        let Some(lit) = body.first() else {
            return true;
        };
        'g: for g in &ground.body {
            if g.rel != lit.rel || g.vals.len() != lit.args.len() {
                continue;
            }
            let mut next = binding.clone();
            for (t, &gv) in lit.args.iter().zip(g.vals.iter()) {
                match *t {
                    Term::Const(c) => {
                        if c != gv {
                            continue 'g;
                        }
                    }
                    Term::Var(v) => match next.get(&v) {
                        None => {
                            next.insert(v, gv);
                        }
                        Some(&b) if b == gv => {}
                        Some(_) => continue 'g,
                    },
                }
            }
            if rec(&body[1..], ground, &next) {
                return true;
            }
        }
        false
    }
    rec(&clause.body, ground, &binding)
}

/// Strategy: a small ground clause over 2 relations with ≤ 8 body literals
/// and constants drawn from a tiny pool (to force shared values).
fn ground_strategy() -> impl Strategy<Value = GroundClause> {
    let lit = (0u32..2, 0u32..5, 0u32..5).prop_map(|(r, a, b)| GroundLiteral {
        rel: RelId(r),
        vals: vec![Const(a), Const(b)].into(),
    });
    (proptest::collection::vec(lit, 0..8), 0u32..5, 0u32..5).prop_map(|(body, a, b)| {
        GroundClause::new(Example::new(RelId(9), vec![Const(a), Const(b)]), body)
    })
}

/// Strategy: a clause with ≤ 4 body literals over the same relations, with
/// variables 0..6 and occasional constants.
fn clause_strategy() -> impl Strategy<Value = Clause> {
    let term = prop_oneof![
        (0u32..6).prop_map(|v| Term::Var(VarId(v))),
        (0u32..5).prop_map(|c| Term::Const(Const(c))),
    ];
    let lit =
        (0u32..2, term.clone(), term).prop_map(|(r, a, b)| Literal::new(RelId(r), vec![a, b]));
    proptest::collection::vec(lit, 0..4).prop_map(|body| {
        Clause::new(
            Literal::new(RelId(9), vec![Term::Var(VarId(0)), Term::Var(VarId(1))]),
            body,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With a generous node budget the randomized search is complete on these
    /// tiny instances, so it must agree exactly with brute force.
    #[test]
    fn subsumption_matches_brute_force(clause in clause_strategy(), ground in ground_strategy()) {
        let cfg = SubsumeConfig { node_limit: 1_000_000, max_restarts: 0 };
        let fast = theta_subsumes(&clause, &ground, &cfg);
        let slow = brute_force_subsumes(&clause, &ground);
        prop_assert_eq!(fast, slow);
    }

    /// The approximation is one-sided: with a tight budget the answer may be
    /// a false "no" but never a false "yes".
    #[test]
    fn tight_budget_is_one_sided(clause in clause_strategy(), ground in ground_strategy()) {
        let tight = SubsumeConfig { node_limit: 3, max_restarts: 0 };
        if theta_subsumes(&clause, &ground, &tight) {
            prop_assert!(brute_force_subsumes(&clause, &ground));
        }
    }
}

// ---------- sampling invariants ----------

/// Random database in the UW-fragment shape.
fn small_uw(seed: u64, n: usize) -> (Database, RelId) {
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    let mut db = Database::new();
    let student = db.add_relation("student", &["stud"]);
    let publ = db.add_relation("publication", &["title", "person"]);
    let target = db.add_relation("advisedBy", &["stud", "prof"]);
    for i in 0..n {
        db.insert(student, &[&format!("s{i}")]);
        let t = format!("p{}", rng.random_range(0..n.max(1)));
        db.insert(publ, &[&t, &format!("s{i}")]);
    }
    db.insert(target, &["s0", "s1"]);
    db.build_indexes();
    (db, target)
}

const SMALL_BIAS: &str = "
pred student(T1)
pred publication(T5, T1)
pred advisedBy(T1, T1)
mode student(+)
mode publication(-, +)
mode publication(+, -)
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every tuple a sampled BC collects is in the full BC's collection:
    /// sampling only removes, never invents.
    #[test]
    fn sampled_bc_is_subset_of_full(seed in 0u64..500, n in 2usize..20, strat in 0usize..3) {
        let (db, target) = small_uw(seed, n);
        let bias = parse_bias(&db, target, SMALL_BIAS).unwrap();
        let s0 = db.lookup("s0").unwrap();
        let s1 = db.lookup("s1").unwrap();
        let e = Example::new(target, vec![s0, s1]);
        let full_cfg = BcConfig { depth: 2, strategy: SamplingStrategy::Full, max_body_literals: 100_000, max_tuples: 10_000 };
        let strategy = match strat {
            0 => SamplingStrategy::Naive { per_selection: 2 },
            1 => SamplingStrategy::Random { per_selection: 2, oversample: 5 },
            _ => SamplingStrategy::Stratified { per_stratum: 1 },
        };
        let s_cfg = BcConfig { depth: 2, strategy, max_body_literals: 100_000, max_tuples: 10_000 };
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let full: FxHashSet<GroundLiteral> =
            build_bottom_clause(&db, &bias, &e, &full_cfg, &mut rng).ground.body.into_iter().collect();
        let sampled = build_bottom_clause(&db, &bias, &e, &s_cfg, &mut rng).ground;
        for lit in &sampled.body {
            prop_assert!(full.contains(lit), "sampled literal outside full BC");
        }
    }

    /// The BC's variable-ized clause always covers its own ground BC.
    #[test]
    fn bc_covers_itself(seed in 0u64..200, n in 2usize..15) {
        let (db, target) = small_uw(seed, n);
        let bias = parse_bias(&db, target, SMALL_BIAS).unwrap();
        let s0 = db.lookup("s0").unwrap();
        let s1 = db.lookup("s1").unwrap();
        let e = Example::new(target, vec![s0, s1]);
        let cfg = BcConfig { depth: 2, strategy: SamplingStrategy::Full, max_body_literals: 100_000, max_tuples: 10_000 };
        let mut rng = StdRng::seed_from_u64(seed);
        let bc = build_bottom_clause(&db, &bias, &e, &cfg, &mut rng);
        prop_assert!(theta_subsumes(&bc.clause, &bc.ground, &SubsumeConfig::default()));
    }
}

// ---------- IND discovery ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Discovery agrees with the direct σ-based check on random data.
    #[test]
    fn ind_discovery_agrees_with_oracle(
        rows_a in proptest::collection::vec(0u32..10, 1..30),
        rows_b in proptest::collection::vec(0u32..10, 1..30),
    ) {
        let mut db = Database::new();
        let ra = db.add_relation("ra", &["x"]);
        let rb = db.add_relation("rb", &["y"]);
        for v in &rows_a { db.insert(ra, &[&format!("v{v}")]); }
        for v in &rows_b { db.insert(rb, &[&format!("v{v}")]); }
        let cfg = IndConfig { max_error: 1.0, min_distinct_for_approx: 1, ..IndConfig::default() };
        let inds = discover_inds(&db, &cfg);
        let a = AttrRef::new(ra, 0);
        let b = AttrRef::new(rb, 0);
        let found = inds.iter().find(|i| i.from == a && i.to == b).expect("pair reported");
        let direct = check_ind(&db, a, b);
        prop_assert!((found.error - direct).abs() < 1e-12);
    }

    /// Type-graph joinability is reflexive and symmetric for every attribute.
    #[test]
    fn typegraph_joinability_reflexive_symmetric(
        rows_a in proptest::collection::vec(0u32..8, 1..20),
        rows_b in proptest::collection::vec(0u32..8, 1..20),
    ) {
        let mut db = Database::new();
        let ra = db.add_relation("ra", &["x", "y"]);
        let rb = db.add_relation("rb", &["z"]);
        for (i, v) in rows_a.iter().enumerate() {
            db.insert(ra, &[&format!("v{v}"), &format!("w{i}")]);
        }
        for v in &rows_b { db.insert(rb, &[&format!("v{v}")]); }
        let inds = discover_inds(&db, &IndConfig::default());
        let g = build_type_graph(&db, &inds);
        let attrs = db.catalog().all_attrs();
        for &x in &attrs {
            prop_assert!(g.share_type(x, x), "reflexive");
            for &y in &attrs {
                prop_assert_eq!(g.share_type(x, y), g.share_type(y, x), "symmetric");
            }
        }
    }
}

// ---------- k-fold and armg ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every example lands in exactly one test fold, and train/test never
    /// overlap.
    #[test]
    fn kfold_partition(np in 2usize..40, nn in 2usize..40, k in 2usize..6, seed in 0u64..100) {
        let mk = |n: usize| -> Vec<Example> {
            (0..n).map(|i| Example::new(RelId(0), vec![Const(i as u32)])).collect()
        };
        let pos = mk(np);
        let neg = mk(nn);
        let splits = kfold_splits(&pos, &neg, k, seed);
        prop_assert_eq!(splits.len(), k);
        let total_test_pos: usize = splits.iter().map(|(_, t)| t.pos.len()).sum();
        prop_assert_eq!(total_test_pos, np);
        for (train, test) in &splits {
            prop_assert_eq!(train.pos.len() + test.pos.len(), np);
            for e in &test.pos {
                prop_assert!(!train.pos.contains(e));
            }
            for e in &test.neg {
                prop_assert!(!train.neg.contains(e));
            }
        }
    }
}

/// armg output covers both the new example and everything the input covered
/// (it is a *generalization*), checked on the co-authorship world.
#[test]
fn armg_is_a_generalization() {
    let mut db = Database::new();
    let student = db.add_relation("student", &["stud"]);
    let publ = db.add_relation("publication", &["title", "person"]);
    let in_phase = db.add_relation("inPhase", &["stud", "phase"]);
    let target = db.add_relation("advisedBy", &["stud", "prof"]);
    let phases = ["a", "b", "c"];
    for i in 0..9 {
        let s = format!("s{i}");
        let p = format!("f{i}");
        let t = format!("t{i}");
        db.insert(student, &[&s]);
        db.insert(publ, &[&t, &s]);
        db.insert(publ, &[&t, &p]);
        db.insert(in_phase, &[&s, phases[i % 3]]);
    }
    db.build_indexes();
    let bias = parse_bias(
        &db,
        target,
        "
pred student(T1)
pred publication(T5, T1)
pred inPhase(T1, T2)
pred advisedBy(T1, T3)
pred publication(T5, T3)
mode student(+)
mode publication(-, +)
mode inPhase(+, #)
mode inPhase(+, -)
",
    )
    .unwrap();
    let ex = |i: usize, db: &Database| {
        let s = db.lookup(&format!("s{i}")).unwrap();
        let p = db.lookup(&format!("f{i}")).unwrap();
        Example::new(target, vec![s, p])
    };
    let train = TrainingSet::new((0..9).map(|i| ex(i, &db)).collect(), vec![]);
    let cfg = BcConfig {
        depth: 2,
        strategy: SamplingStrategy::Full,
        max_body_literals: 100_000,
        max_tuples: 5000,
    };
    let engine = CoverageEngine::build(&db, &bias, &train, &cfg, SubsumeConfig::default(), 3);

    for seed_idx in 0..3 {
        let bc = engine.pos[seed_idx].clause.clone();
        let covered_before: Vec<usize> = (0..9).filter(|&i| engine.covers_pos(&bc, i)).collect();
        for other in 0..9 {
            if engine.covers_pos(&bc, other) {
                continue;
            }
            let g = armg(&bc, &engine, other).expect("armg");
            assert!(engine.covers_pos(&g, other), "covers the armg target");
            for &i in &covered_before {
                assert!(engine.covers_pos(&g, i), "still covers example {i}");
            }
        }
    }
}
