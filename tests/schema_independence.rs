//! Schema-independence check (the design goal of Castor, the learner
//! AutoBias builds on — Picado et al. SIGMOD'17): storing the same
//! information normalized or denormalized should not change what is
//! learnable, and AutoBias's IND-driven bias induction should adapt to the
//! new schema *automatically* — the surrogate keys introduced by vertical
//! partitioning participate in exact INDs, so the type graph re-links the
//! fragments without any human intervention.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias_repro::autobias::prelude::*;
use autobias_repro::relstore::transform::vertical_partition;
use autobias_repro::relstore::Database;

/// Movie world where dramaDirector(d) ⇔ d directed a drama movie.
fn movie_world() -> (Database, relstore::RelId, Vec<Example>, Vec<Example>) {
    let mut db = Database::new();
    let directed = db.add_relation("directedBy", &["mid", "did"]);
    let genre = db.add_relation("genre", &["mid", "g"]);
    let target = db.add_relation("dramaDirector", &["did"]);
    let genres = ["drama", "comedy", "action"];
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for i in 0..18 {
        let m = format!("m{i}");
        let d = format!("d{i}");
        db.insert(directed, &[&m, &d]);
        db.insert(genre, &[&m, genres[i % 3]]);
        let dc = db.lookup(&d).unwrap();
        if i % 3 == 0 {
            db.insert(target, &[&d]);
            pos.push(Example::new(target, vec![dc]));
        } else {
            neg.push(Example::new(target, vec![dc]));
        }
    }
    db.build_indexes();
    (db, target, pos, neg)
}

fn learn_fm(
    db: &Database,
    target: relstore::RelId,
    pos: &[Example],
    neg: &[Example],
    depth: usize,
) -> f64 {
    let (bias, _, _) = induce_bias(
        db,
        target,
        &AutoBiasConfig {
            constant_threshold: ConstantThreshold::Absolute(10),
            ..AutoBiasConfig::default()
        },
    )
    .expect("bias induction");
    let cfg = LearnerConfig {
        bc: BcConfig {
            depth,
            strategy: SamplingStrategy::Full,
            max_tuples: 5_000,
            max_body_literals: 20_000,
        },
        reduce_clauses: true,
        ..LearnerConfig::default()
    };
    let train = TrainingSet::new(pos.to_vec(), neg.to_vec());
    let (def, _) = Learner::new(cfg).learn(db, &bias, &train);
    // Evaluate on the training set with exact query semantics — the point is
    // expressibility across schemas, not generalization.
    let qcfg = QueryConfig::default();
    let tp = pos
        .iter()
        .filter(|e| definition_covers(db, &def, e, &qcfg))
        .count();
    let fp = neg
        .iter()
        .filter(|e| definition_covers(db, &def, e, &qcfg))
        .count();
    let m = Metrics {
        tp,
        fp,
        fn_: pos.len() - tp,
    };
    m.f_measure()
}

#[test]
fn autobias_learns_equally_well_on_partitioned_schema() {
    let (db, target, pos, neg) = movie_world();
    let fm_original = learn_fm(&db, target, &pos, &neg, 2);
    assert!(fm_original > 0.95, "original schema FM {fm_original}");

    // Partition genre(mid, g) into genre_mid(genre_id, mid) and
    // genre_g(genre_id, g). The drama rule now needs one extra hop:
    // dramaDirector(x) ← directedBy(m, x), genre_mid(t, m), genre_g(t, drama)
    let genre = db.rel_id("genre").unwrap();
    let parts = vertical_partition(&db, genre).expect("partition");
    let mut new_db = parts.db;
    let new_target = new_db.rel_id("dramaDirector").unwrap();
    // Re-intern the example constants against the new database's dictionary
    // (ids differ across databases; names are stable).
    let new_pos: Vec<Example> = pos
        .iter()
        .map(|e| {
            let name = db.const_name(e.args[0]).to_string();
            let c = new_db.intern(&name);
            Example::new(new_target, vec![c])
        })
        .collect();
    let new_neg: Vec<Example> = neg
        .iter()
        .map(|e| {
            let name = db.const_name(e.args[0]).to_string();
            let c = new_db.intern(&name);
            Example::new(new_target, vec![c])
        })
        .collect();
    new_db.build_indexes();

    // One extra hop in the join path → depth 3.
    let fm_partitioned = learn_fm(&new_db, new_target, &new_pos, &new_neg, 3);
    assert!(
        fm_partitioned > 0.95,
        "partitioned schema FM {fm_partitioned} (original {fm_original})"
    );
}
