//! Integration tests pinning the properties the paper states explicitly:
//! Example 2.5's bottom clause, Figure 1's type-graph shape, Table 3's
//! induced definitions, and the §3.2 mode-generation rules.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias_repro::autobias::prelude::*;
use autobias_repro::constraints::{build_type_graph, discover_inds, IndConfig};
use autobias_repro::relstore::fixtures::uw_fragment;
use autobias_repro::relstore::{AttrRef, Database};
use rand::rngs::StdRng;
use rand::SeedableRng;

const UW_TABLE3_BIAS: &str = "
pred student(T1)
pred inPhase(T1, T2)
pred professor(T3)
pred hasPosition(T3, T4)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)
mode student(+)
mode inPhase(+, -)
mode inPhase(+, #)
mode professor(+)
mode hasPosition(+, -)
mode publication(-, +)
";

fn uw_with_target() -> (Database, autobias_repro::relstore::RelId) {
    let mut db = uw_fragment();
    let target = db.add_relation("advisedBy", &["stud", "prof"]);
    db.insert(target, &["juan", "sarita"]);
    db.insert(target, &["john", "mary"]);
    db.build_indexes();
    (db, target)
}

/// Example 2.5: the bottom clause for advisedBy(juan, sarita) at d = 1 under
/// the Table 3 bias has exactly the paper's seven literals.
#[test]
fn example_2_5_exact_reproduction() {
    let (db, target) = uw_with_target();
    let bias = parse_bias(&db, target, UW_TABLE3_BIAS).unwrap();
    let juan = db.lookup("juan").unwrap();
    let sarita = db.lookup("sarita").unwrap();
    let example = Example::new(target, vec![juan, sarita]);
    let mut rng = StdRng::seed_from_u64(0);
    let bc = build_bottom_clause(
        &db,
        &bias,
        &example,
        &BcConfig {
            depth: 1,
            strategy: SamplingStrategy::Full,
            max_body_literals: 100_000,
            max_tuples: 1000,
        },
        &mut rng,
    );
    let rendered: Vec<String> = bc.clause.body.iter().map(|l| l.render(&db)).collect();
    assert_eq!(bc.clause.len(), 7, "literals: {rendered:?}");
    // The seven literals, structurally:
    assert!(rendered.contains(&"student(x)".to_string()));
    assert!(rendered.contains(&"professor(y)".to_string()));
    // inPhase twice: variable form and constant form (modes (+,-) and (+,#)).
    let in_phase: Vec<_> = rendered
        .iter()
        .filter(|l| l.starts_with("inPhase("))
        .collect();
    assert_eq!(in_phase.len(), 2);
    assert!(in_phase.iter().any(|l| l.contains("post_quals")));
    // hasPosition with a fresh variable.
    assert_eq!(
        rendered
            .iter()
            .filter(|l| l.starts_with("hasPosition("))
            .count(),
        1
    );
    // publication(z, x) and publication(z, y) sharing the title variable.
    let pubs: Vec<_> = rendered
        .iter()
        .filter(|l| l.starts_with("publication("))
        .collect();
    assert_eq!(pubs.len(), 2);
}

/// The bottom clause must cover its own example (it is the most specific
/// covering clause).
#[test]
fn bottom_clause_covers_own_example() {
    let (db, target) = uw_with_target();
    let bias = parse_bias(&db, target, UW_TABLE3_BIAS).unwrap();
    let juan = db.lookup("juan").unwrap();
    let sarita = db.lookup("sarita").unwrap();
    let example = Example::new(target, vec![juan, sarita]);
    let mut rng = StdRng::seed_from_u64(0);
    let bc = build_bottom_clause(&db, &bias, &example, &BcConfig::default(), &mut rng);
    assert!(theta_subsumes(
        &bc.clause,
        &bc.ground,
        &SubsumeConfig::default()
    ));
}

/// §3.2: the generated mode definitions for the UW fragment follow the
/// paper's rules — one `+` per mode, `-` elsewhere, `#` only below the
/// constant-threshold.
#[test]
fn mode_generation_rules() {
    let (db, target) = uw_with_target();
    let (bias, _, _) = induce_bias(
        &db,
        target,
        &AutoBiasConfig {
            constant_threshold: ConstantThreshold::Absolute(3),
            ..AutoBiasConfig::default()
        },
    )
    .unwrap();
    for mode in &bias.modes {
        let plus = mode
            .args
            .iter()
            .filter(|a| matches!(a, ArgMode::Plus))
            .count();
        assert_eq!(
            plus, 1,
            "every mode has exactly one + (no Cartesian products)"
        );
    }
    // inPhase[phase] has 1 distinct value (< 3): must be constant-able.
    let in_phase = db.rel_id("inPhase").unwrap();
    assert!(bias.can_be_const(AttrRef::new(in_phase, 1)));
    // student[stud] has 2 distinct values (< 3): also constant-able.
    // publication[title] has 2 (< 3). The threshold drives everything.
    let publ = db.rel_id("publication").unwrap();
    assert!(bias.can_be_const(AttrRef::new(publ, 0)));
}

/// Figure 1 (on data with the paper's IND structure): publication[person]
/// joins both student and professor; the two entity types stay distinct.
#[test]
fn figure1_type_graph_shape() {
    let mut db = Database::new();
    let student = db.add_relation("student", &["stud"]);
    let professor = db.add_relation("professor", &["prof"]);
    let publ = db.add_relation("publication", &["title", "person"]);
    for i in 0..10 {
        db.insert(student, &[&format!("s{i}")]);
        db.insert(professor, &[&format!("f{i}")]);
    }
    for i in 0..4 {
        db.insert(publ, &[&format!("p{i}"), &format!("s{i}")]);
        db.insert(publ, &[&format!("p{i}"), &format!("f{i}")]);
    }
    let inds = discover_inds(&db, &IndConfig::default());
    let graph = build_type_graph(&db, &inds);
    let person = AttrRef::new(publ, 1);
    let stud = AttrRef::new(student, 0);
    let prof = AttrRef::new(professor, 0);
    assert!(graph.share_type(person, stud));
    assert!(graph.share_type(person, prof));
    assert!(!graph.share_type(stud, prof));
    // Titles are their own domain.
    assert!(!graph.share_type(AttrRef::new(publ, 0), person));
}

/// End-to-end on the paper's running example: learning advisedBy with the
/// Table 3 bias recovers the co-authorship clause.
#[test]
fn uw_fragment_learns_coauthorship() {
    let (db, target) = uw_with_target();
    let bias = parse_bias(&db, target, UW_TABLE3_BIAS).unwrap();
    let juan = db.lookup("juan").unwrap();
    let sarita = db.lookup("sarita").unwrap();
    let john = db.lookup("john").unwrap();
    let mary = db.lookup("mary").unwrap();
    let train = TrainingSet::new(
        vec![
            Example::new(target, vec![juan, sarita]),
            Example::new(target, vec![john, mary]),
        ],
        vec![
            Example::new(target, vec![juan, mary]),
            Example::new(target, vec![john, sarita]),
        ],
    );
    let learner = Learner::new(LearnerConfig {
        bc: BcConfig {
            depth: 2,
            strategy: SamplingStrategy::Full,
            max_body_literals: 100_000,
            max_tuples: 1000,
        },
        ..LearnerConfig::default()
    });
    let (def, _, pos_cov, neg_cov) = learner.learn_with_coverage(&db, &bias, &train);
    assert!(!def.is_empty());
    assert!(pos_cov.iter().all(|&c| c));
    assert!(neg_cov.iter().all(|&c| !c));
}
