//! A registry of named monotonic counters. A [`Counter`] is a `static` with
//! a Prometheus-style name and help string; bumping it is a single relaxed
//! `fetch_add` — the same cost whether or not anything ever scrapes it.
//! Crates register their counters once (idempotently) and exporters iterate
//! [`registered`] so every counter in the process shows up in one scrape
//! without the exporter hard-coding names.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonic counter with Prometheus metadata. Declare as a `static`,
/// bump from hot paths, [`register`] it once for export.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter. `name` should follow Prometheus conventions
    /// (snake_case, `_total` suffix); `help` is the `# HELP` text.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            value: AtomicU64::new(0),
        }
    }

    /// Increments by one — one relaxed `fetch_add`.
    #[inline]
    pub fn bump(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `# HELP` text.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

fn registry() -> &'static Mutex<Vec<&'static Counter>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Counter>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Adds `c` to the global registry. Idempotent (a counter already present —
/// by pointer or by name — is not added twice), so crates can register from
/// multiple entry points without coordination. Never call this from a hot
/// path; registration takes a lock.
pub fn register(c: &'static Counter) {
    let mut r = registry().lock().expect("counter registry poisoned");
    if !r.iter().any(|e| std::ptr::eq(*e, c) || e.name == c.name) {
        r.push(c);
    }
}

/// Snapshot of all registered counters, sorted by name.
pub fn registered() -> Vec<&'static Counter> {
    let mut v = registry()
        .lock()
        .expect("counter registry poisoned")
        .clone();
    v.sort_by_key(|c| c.name);
    v
}

/// A plain-text table of every registered counter with a non-zero value,
/// sorted by name — the counter companion to
/// [`render_summary_table`](crate::summary::render_summary_table), printed
/// by the CLI under `--profile`. Zero counters are elided: a learning run
/// registers every counter in the process, most of which are silent for any
/// one configuration.
pub fn render_counters_table() -> String {
    let counters: Vec<_> = registered()
        .into_iter()
        .map(|c| (c.name(), c.get()))
        .filter(|&(_, v)| v != 0)
        .collect();
    if counters.is_empty() {
        return String::new();
    }
    let name_w = counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once("counter".len()))
        .max()
        .unwrap_or(7);
    let mut out = String::new();
    out.push_str(&format!("{:name_w$}  {:>12}\n", "counter", "value"));
    for (name, value) in counters {
        out.push_str(&format!("{name:name_w$}  {value:>12}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_A: Counter = Counter::new("obs_test_a_total", "Test counter A.");
    static TEST_B: Counter = Counter::new("obs_test_b_total", "Test counter B.");

    #[test]
    fn bump_add_get() {
        static C: Counter = Counter::new("obs_test_local_total", "Local.");
        assert_eq!(C.get(), 0);
        C.bump();
        C.add(4);
        C.add(0);
        assert_eq!(C.get(), 5);
    }

    #[test]
    fn register_is_idempotent_and_sorted() {
        register(&TEST_B);
        register(&TEST_A);
        register(&TEST_A);
        register(&TEST_B);
        let names: Vec<_> = registered()
            .iter()
            .map(|c| c.name())
            .filter(|n| n.starts_with("obs_test_") && !n.contains("local"))
            .collect();
        assert_eq!(names, vec!["obs_test_a_total", "obs_test_b_total"]);
        assert_eq!(TEST_A.help(), "Test counter A.");
    }

    // Named outside the `obs_test_` prefix that
    // `register_is_idempotent_and_sorted` snapshots — the registry is
    // process-global, so that test would see these otherwise.
    #[test]
    fn counters_table_elides_zeros_and_aligns() {
        static SHOWN: Counter = Counter::new("obs_table_demo_shown_total", "Shown.");
        static ZERO: Counter = Counter::new("obs_table_demo_zero_total", "Elided.");
        register(&SHOWN);
        register(&ZERO);
        SHOWN.add(3);
        let table = render_counters_table();
        assert!(table.contains("obs_table_demo_shown_total"), "{table}");
        assert!(!table.contains("obs_table_demo_zero_total"), "{table}");
        assert!(table.starts_with("counter"), "{table}");
    }
}
