//! Context-carried trace trees with W3C `traceparent` propagation.
//!
//! The process-wide recorder in [`mod@crate::span`] answers "where does this
//! *process* spend time"; this module answers "where did *this request* go".
//! A [`TraceCtx`] is one trace: a 128-bit trace id plus a tree of spans with
//! explicit `span_id`/`parent_id` links. Installing a context on a thread
//! ([`TraceCtx::install`]) makes every span entered via [`crate::span!`]
//! record into that tree as well as into the global recorder; the install
//! guard restores the previous context on drop, so contexts nest.
//!
//! The fast path is unchanged: while no context is installed anywhere and
//! the global mode is [`crate::Mode::Off`], entering a span is still a
//! single relaxed atomic load (the trace flag lives in the same state byte
//! as the mode).
//!
//! Trace ids follow the W3C Trace Context wire format: incoming
//! `traceparent` headers are parsed with [`parse_traceparent`] so a caller's
//! trace id is reused, and [`format_traceparent`] renders the header for
//! downstream hops. Finished trees ([`TraceCtx::finish`]) serialize to JSON
//! ([`TraceTree::to_json`]) or to chrome-trace ([`TraceTree::to_chrome`],
//! reusing [`crate::chrome`]).

use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::span::SpanEvent;

/// Cap on spans recorded into one trace tree. A request executes a handful
/// of coarse spans; thousands means a span was opened per tuple, which the
/// naming convention forbids. Overflow is counted, never silent.
pub const MAX_TRACE_SPANS: usize = 4096;

/// One completed span inside a trace tree.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Static span name (same naming table as the global recorder).
    pub name: &'static str,
    /// Optional static label.
    pub label: Option<&'static str>,
    /// Numeric notes attached while the span was open.
    pub notes: Vec<(&'static str, u64)>,
    /// Id unique within the trace (allocated at entry, starting at 1).
    pub span_id: u64,
    /// Id of the enclosing span on the same thread; 0 for tree roots.
    pub parent_id: u64,
    /// Small dense thread id (same numbering as the global recorder).
    pub tid: u32,
    /// Start, microseconds since the trace began.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

struct TraceInner {
    trace_id: u128,
    /// Caller's span id from an incoming `traceparent`, 0 if none.
    remote_parent: u64,
    start: Instant,
    next_span_id: AtomicU64,
    dropped: AtomicU64,
    spans: Mutex<Vec<TraceSpan>>,
}

/// A handle to one in-progress trace. Clone-cheap (`Arc` inside); clones
/// share the same tree.
#[derive(Clone)]
pub struct TraceCtx {
    inner: Arc<TraceInner>,
}

/// A finished trace: the id plus every recorded span, parent-linked.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// Trace id as 32 lowercase hex digits (W3C wire form).
    pub trace_id: String,
    /// Caller's span id from the incoming `traceparent`, 0 if none.
    pub remote_parent_id: u64,
    /// Spans dropped past [`MAX_TRACE_SPANS`].
    pub dropped: u64,
    /// Completed spans in completion order (children before parents).
    pub spans: Vec<TraceSpan>,
}

struct ActiveTrace {
    inner: Arc<TraceInner>,
    /// Open span ids on this thread, innermost last.
    stack: Vec<u64>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Count of installed contexts process-wide; drives the trace flag inside
/// the span recorder's state byte.
static INSTALLED: AtomicU64 = AtomicU64::new(0);

/// Ticket handed to a [`crate::SpanGuard`] at entry when a context is
/// installed; redeemed on drop via [`record`].
pub(crate) struct TraceAttach {
    inner: Arc<TraceInner>,
    span_id: u64,
    parent_id: u64,
}

/// Allocates a span id under the thread's installed context, if any.
pub(crate) fn attach() -> Option<TraceAttach> {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let at = a.as_mut()?;
        let span_id = at.inner.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent_id = at.stack.last().copied().unwrap_or(0);
        at.stack.push(span_id);
        Some(TraceAttach {
            inner: Arc::clone(&at.inner),
            span_id,
            parent_id,
        })
    })
}

/// Completes an attached span: pops it from the thread's open stack and
/// pushes the finished [`TraceSpan`] into its tree (bounded).
pub(crate) fn record(
    attach: TraceAttach,
    name: &'static str,
    label: Option<&'static str>,
    notes: &[(&'static str, u64)],
    tid: u32,
    start: Instant,
    dur: Duration,
) {
    ACTIVE.with(|a| {
        if let Some(at) = a.borrow_mut().as_mut() {
            if Arc::ptr_eq(&at.inner, &attach.inner) {
                if at.stack.last() == Some(&attach.span_id) {
                    at.stack.pop();
                } else if let Some(pos) = at.stack.iter().rposition(|&s| s == attach.span_id) {
                    at.stack.remove(pos);
                }
            }
        }
    });
    let span = TraceSpan {
        name,
        label,
        notes: notes.to_vec(),
        span_id: attach.span_id,
        parent_id: attach.parent_id,
        tid,
        start_us: start
            .saturating_duration_since(attach.inner.start)
            .as_micros()
            .min(u64::MAX as u128) as u64,
        dur_us: dur.as_micros().min(u64::MAX as u128) as u64,
    };
    let mut spans = attach.inner.spans.lock().expect("trace spans poisoned");
    if spans.len() < MAX_TRACE_SPANS {
        spans.push(span);
    } else {
        attach.inner.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// RAII guard from [`TraceCtx::install`]; restores the thread's previous
/// context (if any) on drop. Not `Send` — it manages thread-local state.
pub struct TraceGuard {
    prev: Option<ActiveTrace>,
    restored: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.restored {
            return;
        }
        self.restored = true;
        ACTIVE.with(|a| {
            *a.borrow_mut() = self.prev.take();
        });
        // When the count of installed contexts returns to zero, clear the
        // trace flag — then re-check, so a concurrent install that raced the
        // clear wins and the flag stays up.
        if INSTALLED.fetch_sub(1, Ordering::Relaxed) == 1 {
            crate::span::set_trace_flag(false);
            if INSTALLED.load(Ordering::Relaxed) > 0 {
                crate::span::set_trace_flag(true);
            }
        }
    }
}

impl TraceCtx {
    /// Starts a trace. With `parent` (a parsed incoming `traceparent`), the
    /// caller's trace id is continued and its span id becomes the tree's
    /// remote parent; without, a fresh random trace id is drawn.
    pub fn begin(parent: Option<(u128, u64)>) -> Self {
        let (trace_id, remote_parent) = match parent {
            Some((t, s)) => (t, s),
            None => (new_trace_id(), 0),
        };
        Self {
            inner: Arc::new(TraceInner {
                trace_id,
                remote_parent,
                start: Instant::now(),
                next_span_id: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The raw 128-bit trace id.
    pub fn trace_id(&self) -> u128 {
        self.inner.trace_id
    }

    /// The trace id as 32 lowercase hex digits.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.inner.trace_id)
    }

    /// Installs this context on the current thread; spans entered until the
    /// returned guard drops record into this trace. Contexts nest: the guard
    /// restores whatever was installed before.
    #[must_use = "spans record into the trace only while the guard lives"]
    pub fn install(&self) -> TraceGuard {
        let prev = ACTIVE.with(|a| {
            a.borrow_mut().replace(ActiveTrace {
                inner: Arc::clone(&self.inner),
                stack: Vec::new(),
            })
        });
        if INSTALLED.fetch_add(1, Ordering::Relaxed) == 0 {
            crate::span::set_trace_flag(true);
        }
        TraceGuard {
            prev,
            restored: false,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner.spans.lock().expect("trace spans poisoned").len()
    }

    /// Takes the recorded spans out as a finished [`TraceTree`]. Call after
    /// every install guard for this context has dropped.
    pub fn finish(&self) -> TraceTree {
        let spans = std::mem::take(&mut *self.inner.spans.lock().expect("trace spans poisoned"));
        TraceTree {
            trace_id: self.trace_id_hex(),
            remote_parent_id: self.inner.remote_parent,
            dropped: self.inner.dropped.load(Ordering::Relaxed),
            spans,
        }
    }
}

impl TraceTree {
    /// Serializes the tree as a JSON object: trace id, drop count, and one
    /// object per span carrying its `span_id`/`parent_id` links and notes.
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                let mut m = vec![
                    ("span_id".to_string(), Json::Num(s.span_id as f64)),
                    ("parent_id".to_string(), Json::Num(s.parent_id as f64)),
                    ("name".to_string(), Json::Str(s.name.to_string())),
                    ("tid".to_string(), Json::Num(s.tid as f64)),
                    ("start_us".to_string(), Json::Num(s.start_us as f64)),
                    ("dur_us".to_string(), Json::Num(s.dur_us as f64)),
                ];
                if let Some(label) = s.label {
                    m.push(("label".to_string(), Json::Str(label.to_string())));
                }
                if !s.notes.is_empty() {
                    m.push((
                        "notes".to_string(),
                        Json::Obj(
                            s.notes
                                .iter()
                                .map(|(k, v)| (k.to_string(), Json::Num(*v as f64)))
                                .collect(),
                        ),
                    ));
                }
                Json::Obj(m)
            })
            .collect();
        Json::Obj(vec![
            ("trace_id".to_string(), Json::Str(self.trace_id.clone())),
            (
                "remote_parent_id".to_string(),
                Json::Num(self.remote_parent_id as f64),
            ),
            ("dropped".to_string(), Json::Num(self.dropped as f64)),
            ("spans".to_string(), Json::Arr(spans)),
        ])
    }

    /// Exports the tree as chrome-trace JSON via [`crate::chrome`]. Depths
    /// are recomputed from the parent links so the exporter's nesting notes
    /// stay meaningful.
    pub fn to_chrome(&self) -> String {
        let parents: HashMap<u64, u64> = self
            .spans
            .iter()
            .map(|s| (s.span_id, s.parent_id))
            .collect();
        let depth_of = |mut id: u64| -> u32 {
            let mut depth = 0u32;
            while let Some(&p) = parents.get(&id) {
                if p == 0 || depth > 64 {
                    break;
                }
                depth += 1;
                id = p;
            }
            depth
        };
        let events: Vec<SpanEvent> = self
            .spans
            .iter()
            .map(|s| SpanEvent {
                name: s.name,
                label: s.label,
                notes: s.notes.clone(),
                tid: s.tid,
                depth: depth_of(s.span_id),
                start_us: s.start_us,
                dur_us: s.dur_us,
            })
            .collect();
        crate::chrome::export_chrome_trace(&events)
    }
}

/// Draws a fresh non-zero 128-bit trace id. Randomness comes from the
/// process's [`RandomState`] seed (`std`'s per-process SipHash keys) mixed
/// with a monotonic nonce — no external RNG dependency, unique per process
/// and unpredictable across processes.
pub fn new_trace_id() -> u128 {
    loop {
        let hi = seeded_hash();
        let lo = seeded_hash();
        let id = ((hi as u128) << 64) | lo as u128;
        if id != 0 {
            return id;
        }
    }
}

fn seeded_hash() -> u64 {
    static SEED: OnceLock<RandomState> = OnceLock::new();
    static NONCE: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);
    let mut h = SEED.get_or_init(RandomState::new).build_hasher();
    h.write_u64(NONCE.fetch_add(1, Ordering::Relaxed));
    h.finish()
}

/// Parses a W3C `traceparent` header value: `VV-<32 hex>-<16 hex>-FF`.
/// Returns the trace id and the caller's span id. Rejects the all-zero
/// trace id and malformed fields, per the spec.
pub fn parse_traceparent(value: &str) -> Option<(u128, u64)> {
    let mut parts = value.trim().split('-');
    let version = parts.next()?;
    if version.len() != 2 || version == "ff" || u8::from_str_radix(version, 16).is_err() {
        return None;
    }
    let trace_hex = parts.next()?;
    if trace_hex.len() != 32 {
        return None;
    }
    let trace_id = u128::from_str_radix(trace_hex, 16).ok()?;
    if trace_id == 0 {
        return None;
    }
    let span_hex = parts.next()?;
    if span_hex.len() != 16 {
        return None;
    }
    let span_id = u64::from_str_radix(span_hex, 16).ok()?;
    let flags = parts.next()?;
    if flags.len() != 2 || u8::from_str_radix(flags, 16).is_err() {
        return None;
    }
    // Version 00 has exactly four fields; later versions may append more.
    if version == "00" && parts.next().is_some() {
        return None;
    }
    Some((trace_id, span_id))
}

/// Renders a `traceparent` header value for this trace (sampled flag set).
pub fn format_traceparent(trace_id: u128, span_id: u64) -> String {
    format!("00-{trace_id:032x}-{span_id:016x}-01")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_round_trip_and_rejects() {
        let (t, s) = (
            0x0123_4567_89ab_cdef_0123_4567_89ab_cdefu128,
            0xdead_beefu64,
        );
        let header = format_traceparent(t, s);
        assert_eq!(
            header,
            "00-0123456789abcdef0123456789abcdef-00000000deadbeef-01"
        );
        assert_eq!(parse_traceparent(&header), Some((t, s)));
        assert_eq!(parse_traceparent(&format!("  {header} ")), Some((t, s)));
        // Malformed variants.
        for bad in [
            "",
            "00",
            "00-0123456789abcdef0123456789abcdef-00000000deadbeef",
            "00-00000000000000000000000000000000-00000000deadbeef-01",
            "00-0123456789abcdef0123456789abcde-00000000deadbeef-01",
            "00-0123456789abcdef0123456789abcdef-00000000deadbee-01",
            "ff-0123456789abcdef0123456789abcdef-00000000deadbeef-01",
            "zz-0123456789abcdef0123456789abcdef-00000000deadbeef-01",
            "00-0123456789abcdef0123456789abcdxx-00000000deadbeef-01",
            "00-0123456789abcdef0123456789abcdef-00000000deadbeef-01-extra",
        ] {
            assert_eq!(parse_traceparent(bad), None, "accepted {bad:?}");
        }
        // Future versions may carry extra fields.
        assert_eq!(
            parse_traceparent("42-0123456789abcdef0123456789abcdef-00000000deadbeef-01-x"),
            Some((t, s))
        );
    }

    #[test]
    fn fresh_trace_ids_are_distinct_and_nonzero() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn installed_context_records_parented_tree_with_mode_off() {
        let _g = crate::span::test_lock();
        crate::set_mode(crate::Mode::Off);
        let ctx = TraceCtx::begin(None);
        {
            let _install = ctx.install();
            let mut root = crate::span!("test.root");
            root.note("n", 5);
            {
                let _child = crate::span!("test.child", "lbl");
                let _grandchild = crate::span!("test.grandchild");
            }
            let _sibling = crate::span!("test.sibling");
        }
        // Nothing leaked into the global recorder.
        assert_eq!(crate::span::events_len(), 0);
        assert!(crate::summary::phase_snapshot().is_empty());
        let tree = ctx.finish();
        assert_eq!(tree.spans.len(), 4);
        let by_name = |n: &str| tree.spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("test.root");
        let child = by_name("test.child");
        let grandchild = by_name("test.grandchild");
        let sibling = by_name("test.sibling");
        assert_eq!(root.parent_id, 0);
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(grandchild.parent_id, child.span_id);
        assert_eq!(sibling.parent_id, root.span_id);
        assert_eq!(root.notes, vec![("n", 5)]);
        assert_eq!(child.label, Some("lbl"));
        // Spans outside the install guard do not record.
        {
            let _after = crate::span!("test.after");
        }
        assert_eq!(ctx.span_count(), 0, "finish drained and nothing new landed");
    }

    #[test]
    fn nested_install_restores_previous_context() {
        let _g = crate::span::test_lock();
        crate::set_mode(crate::Mode::Off);
        let outer = TraceCtx::begin(None);
        let inner = TraceCtx::begin(None);
        {
            let _a = outer.install();
            {
                let _b = inner.install();
                let _sp = crate::span!("test.inner_ctx");
            }
            let _sp = crate::span!("test.outer_ctx");
        }
        let outer_tree = outer.finish();
        let inner_tree = inner.finish();
        assert_eq!(inner_tree.spans.len(), 1);
        assert_eq!(inner_tree.spans[0].name, "test.inner_ctx");
        assert_eq!(outer_tree.spans.len(), 1);
        assert_eq!(outer_tree.spans[0].name, "test.outer_ctx");
        assert_ne!(outer_tree.trace_id, inner_tree.trace_id);
    }

    #[test]
    fn continued_parent_sets_trace_id_and_remote_parent() {
        let ctx = TraceCtx::begin(Some((0xabcu128, 0x77u64)));
        assert_eq!(ctx.trace_id_hex(), format!("{:032x}", 0xabcu128));
        let tree = ctx.finish();
        assert_eq!(tree.remote_parent_id, 0x77);
    }

    #[test]
    fn tree_serializes_to_json_and_chrome() {
        let _g = crate::span::test_lock();
        crate::set_mode(crate::Mode::Off);
        let ctx = TraceCtx::begin(None);
        {
            let _install = ctx.install();
            let mut sp = crate::span!("test.json_root");
            sp.note("tuples", 3);
            let _inner = crate::span!("test.json_child");
        }
        let tree = ctx.finish();
        let doc = tree.to_json().to_string();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("trace_id").and_then(Json::as_str),
            Some(tree.trace_id.as_str())
        );
        let spans = parsed.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans.len(), 2);
        let chrome = tree.to_chrome();
        assert!(chrome.contains("test.json_root"));
        assert!(chrome.contains("\"ph\":\"X\""));
    }

    #[test]
    fn trace_flag_clears_after_last_guard() {
        let _g = crate::span::test_lock();
        crate::set_mode(crate::Mode::Off);
        let ctx = TraceCtx::begin(None);
        {
            let _install = ctx.install();
            let sp = crate::span!("test.flagged");
            assert!(sp.is_active());
        }
        let sp = crate::span!("test.unflagged");
        assert!(
            !sp.is_active(),
            "flag must clear once no context is installed"
        );
    }
}
