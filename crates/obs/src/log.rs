//! Leveled logging to stderr: [`crate::error!`], [`crate::warn!`],
//! [`crate::info!`], [`crate::debug!`]. The threshold comes from the
//! `AUTOBIAS_LOG` environment variable (`error|warn|info|debug`, read once
//! on first use) or programmatically via [`set_level`] (e.g. the CLI's
//! `--log-level` flag, which wins over the environment). Default is `info`,
//! so messages that used to be unconditional `eprintln!` calls stay visible.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed.
    Error = 0,
    /// Something suspicious; the operation continued.
    Warn = 1,
    /// Progress and result summaries (the default threshold).
    Info = 2,
    /// Detail for debugging.
    Debug = 3,
}

impl Level {
    /// Lowercase name, as used by `AUTOBIAS_LOG` and `--log-level`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Sentinel: threshold not yet initialized from the environment.
const UNINIT: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn from_u8(v: u8) -> Level {
    match v {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

#[cold]
fn init_from_env() -> Level {
    let l = std::env::var("AUTOBIAS_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info);
    LEVEL.store(l as u8, Ordering::Relaxed);
    l
}

/// Current threshold (initializing from `AUTOBIAS_LOG` on first call).
pub fn level() -> Level {
    let v = LEVEL.load(Ordering::Relaxed);
    if v == UNINIT {
        init_from_env()
    } else {
        from_u8(v)
    }
}

/// Sets the threshold, overriding the environment.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether messages at `l` are currently emitted.
#[inline]
pub fn enabled(l: Level) -> bool {
    l <= level()
}

/// Writes one log line. Not called directly — use the macros, which check
/// [`enabled`] first so disabled levels never format their arguments.
#[doc(hidden)]
pub fn emit(l: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("{}: {args}", l.as_str());
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::emit($crate::log::Level::Error, format_args!($($t)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::emit($crate::log::Level::Warn, format_args!($($t)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit($crate::log::Level::Info, format_args!($($t)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit($crate::log::Level::Debug, format_args!($($t)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_levels() {
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse(" WARN "), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("Info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn threshold_gates_levels() {
        let prev = level();
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(prev);
    }

    #[test]
    fn macros_compile_and_respect_threshold() {
        let prev = level();
        set_level(Level::Error);
        // These must not panic and must not format when disabled: the
        // argument position would panic if evaluated.
        crate::debug!("not shown {}", {
            // Evaluated only when debug is enabled.
            "x"
        });
        crate::error!("shown: {}", 1 + 1);
        set_level(prev);
    }
}
