//! Chrome-trace JSON exporter. The output is the "JSON Object Format" of
//! the Trace Event specification — an object with a `traceEvents` array of
//! complete (`"ph":"X"`) events — and loads directly in `about://tracing`
//! or <https://ui.perfetto.dev>. Timestamps and durations are microseconds
//! since the recorder epoch, as the format requires.

use crate::span::{dropped_events, snapshot_events, SpanEvent};

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_event(out: &mut String, e: &SpanEvent) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"autobias\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
        json_escape(e.name),
        e.tid,
        e.start_us,
        e.dur_us
    ));
    out.push_str(",\"args\":{");
    let mut first = true;
    if let Some(label) = e.label {
        out.push_str(&format!("\"label\":\"{}\"", json_escape(label)));
        first = false;
    }
    for (k, v) in &e.notes {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", json_escape(k)));
        first = false;
    }
    out.push_str("}}");
}

/// Serializes `events` (plus a process-name metadata event and, when the
/// buffer overflowed, a `dropped_events` count) as chrome-trace JSON.
pub fn export_chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"name\":\"autobias\",\"dropped_events\":{}}}}}",
        dropped_events()
    ));
    for e in events {
        out.push(',');
        push_event(&mut out, e);
    }
    out.push_str("]}");
    out
}

/// Exports the recorder's current event buffer.
pub fn export_current() -> String {
    export_chrome_trace(&snapshot_events())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str) -> SpanEvent {
        SpanEvent {
            name,
            label: Some("naive"),
            notes: vec![("tuples", 42), ("ground_literals", 7)],
            tid: 3,
            depth: 1,
            start_us: 100,
            dur_us: 250,
        }
    }

    #[test]
    fn export_is_wellformed_and_contains_fields() {
        let json = export_chrome_trace(&[ev("bc.build")]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"bc.build\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":250"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"label\":\"naive\""));
        assert!(json.contains("\"tuples\":42"));
        assert!(json.contains("\"ground_literals\":7"));
        // Balanced braces/brackets — a cheap structural well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_export_still_has_metadata() {
        let json = export_chrome_trace(&[]);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"dropped_events\""));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn empty_export_is_parseable_with_single_metadata_event() {
        let _g = crate::span::test_lock();
        crate::set_mode(crate::Mode::Off);
        crate::reset();
        let json = export_chrome_trace(&[]);
        let parsed = crate::json::Json::parse(&json).expect("empty export parses");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1, "only the process_name metadata event");
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            events[0]
                .path(&["args", "dropped_events"])
                .unwrap()
                .as_f64(),
            Some(0.0)
        );
    }

    #[test]
    fn buffer_overflow_drops_are_counted_and_exported() {
        let _g = crate::span::test_lock();
        crate::set_mode(crate::Mode::Full);
        crate::reset();
        const EXTRA: usize = 5;
        for _ in 0..crate::span::MAX_EVENTS + EXTRA {
            let _sp = crate::span!("test.overflow");
        }
        assert_eq!(crate::span::events_len(), crate::span::MAX_EVENTS);
        assert_eq!(dropped_events(), EXTRA as u64);
        // The drop count rides along even when exporting a detached slice.
        let json = export_chrome_trace(&[]);
        assert!(
            json.contains(&format!("\"dropped_events\":{EXTRA}")),
            "{json}"
        );
        crate::reset();
        crate::set_mode(crate::Mode::Off);
        assert_eq!(dropped_events(), 0, "reset clears the drop counter");
    }

    #[test]
    fn nested_spans_export_child_before_parent_and_inside_it() {
        let _g = crate::span::test_lock();
        crate::set_mode(crate::Mode::Full);
        crate::reset();
        {
            let _outer = crate::span!("test.parent");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = crate::span!("test.child");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let json = export_current();
        crate::reset();
        crate::set_mode(crate::Mode::Off);

        let parsed = crate::json::Json::parse(&json).expect("nested export parses");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let idx = |name: &str| {
            events
                .iter()
                .position(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
                .unwrap_or_else(|| panic!("event {name} in export"))
        };
        let (ci, pi) = (idx("test.child"), idx("test.parent"));
        assert!(
            ci < pi,
            "spans complete innermost-first, so the child must precede its parent"
        );
        let ts = |i: usize| events[i].get("ts").unwrap().as_f64().unwrap();
        let dur = |i: usize| events[i].get("dur").unwrap().as_f64().unwrap();
        assert!(ts(pi) <= ts(ci), "parent starts before child");
        assert!(
            ts(ci) + dur(ci) <= ts(pi) + dur(pi),
            "child interval nests inside the parent interval"
        );
        // Same thread: the viewer reconstructs nesting from tid + intervals.
        assert_eq!(
            events[ci].get("tid").unwrap().as_f64(),
            events[pi].get("tid").unwrap().as_f64()
        );
    }
}
