//! A minimal JSON value parser (recursive descent, `std` only), used by the
//! run-report machinery and the `bench_compare` perf-regression gate to read
//! back the JSON this workspace writes. It accepts standard JSON (RFC 8259)
//! with two deliberate simplifications: numbers are parsed as `f64` and
//! object key order is preserved (no deduplication — last write wins on
//! lookup is *not* implemented; [`Json::get`] returns the first match, which
//! is what our own writers produce).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Path lookup: `j.path(&["methods", "Manual", "time_secs"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for k in keys {
            cur = cur.get(k)?;
        }
        Some(cur)
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "\"{}\"", crate::chrome::json_escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", crate::chrome::json_escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writers;
                            // map lone surrogates to U+FFFD instead of erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-3.25e2").unwrap(), Json::Num(-325.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures_and_paths() {
        let j = Json::parse(
            r#"{"dataset": "uw", "methods": {"Manual": {"time_secs": 1.5, "phases": {"learn": {"count": 2}}}}, "tags": [1, 2, 3]}"#,
        )
        .unwrap();
        assert_eq!(j.get("dataset").unwrap().as_str(), Some("uw"));
        assert_eq!(
            j.path(&["methods", "Manual", "time_secs"])
                .unwrap()
                .as_f64(),
            Some(1.5)
        );
        assert_eq!(
            j.path(&["methods", "Manual", "phases", "learn", "count"])
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        let tags = j.get("tags").unwrap().as_arr().unwrap();
        assert_eq!(tags.len(), 3);
        assert_eq!(tags[2].as_f64(), Some(3.0));
        assert!(j.path(&["methods", "NoSuch"]).is_none());
    }

    #[test]
    fn unescapes_strings() {
        let j = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn roundtrips_through_display() {
        let src = r#"{"a":[1,true,null,"x\ny"],"b":{"c":2.5}}"#;
        let j = Json::parse(src).unwrap();
        let again = Json::parse(&j.to_string()).unwrap();
        assert_eq!(j, again);
    }

    #[test]
    fn escapes_every_control_character() {
        // Every code point in U+0000..=U+001F must leave a displayed string
        // as an escape sequence (RFC 8259 §7) and parse back to itself —
        // access-log lines and kept traces embed request paths verbatim, so
        // a single raw control byte would corrupt the JSONL stream.
        let all_controls: String = (0u32..=0x1f).map(|c| char::from_u32(c).unwrap()).collect();
        let rendered = Json::Str(all_controls.clone()).to_string();
        for b in rendered.bytes() {
            assert!(
                b >= 0x20,
                "raw control byte {b:#04x} leaked into {rendered:?}"
            );
        }
        assert!(rendered.contains("\\u0000"));
        assert!(rendered.contains("\\n"));
        assert!(rendered.contains("\\r"));
        assert!(rendered.contains("\\t"));
        assert!(rendered.contains("\\u001f"));
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(parsed.as_str(), Some(all_controls.as_str()));
    }

    #[test]
    fn control_characters_survive_object_keys() {
        // Keys go through the same escaper as values.
        let j = Json::Obj(vec![("a\u{1}b".to_string(), Json::Str("\u{7}".into()))]);
        let rendered = j.to_string();
        assert_eq!(rendered, "{\"a\\u0001b\":\"\\u0007\"}");
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.get("a\u{1}b").unwrap().as_str(), Some("\u{7}"));
    }

    #[test]
    fn parses_own_chrome_trace_output() {
        let json = crate::chrome::export_chrome_trace(&[]);
        let parsed = Json::parse(&json).expect("chrome export is valid JSON");
        assert!(parsed.get("traceEvents").unwrap().as_arr().is_some());
    }
}
