//! Flat per-phase statistics: every span completion (in `Summary` or `Full`
//! mode) is folded into a count / total / max / latency-bucket aggregate
//! keyed by span name. [`phase_snapshot`] is the raw data the serving layer
//! renders as Prometheus histograms; [`render_summary_table`] is the human
//! view printed by `autobias learn --profile`.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Histogram bucket upper bounds in **seconds**, shared with the Prometheus
/// exporter in `crates/serve` (`autobias_phase_duration_seconds`). The last
/// bucket is `+Inf`, per the Prometheus histogram convention. Spans range
/// from sub-millisecond (one θ-subsumption batch) to tens of seconds (a
/// whole learn on IMDb-scale data), hence the wide log-ish spread.
pub const PHASE_BUCKETS: [f64; 9] = [
    0.000_1,
    0.001,
    0.01,
    0.05,
    0.25,
    1.0,
    5.0,
    30.0,
    f64::INFINITY,
];

#[derive(Debug, Clone, Copy, Default)]
struct Agg {
    count: u64,
    total_us: u64,
    max_us: u64,
    buckets: [u64; PHASE_BUCKETS.len()],
}

/// Aggregated wall-clock statistics for one span name (one pipeline phase).
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Span name (see the naming table in the crate docs).
    pub name: &'static str,
    /// Completed spans observed.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
    /// Per-bucket counts (NOT cumulative) aligned with [`PHASE_BUCKETS`];
    /// exporters cumulate when rendering Prometheus `_bucket` series.
    pub bucket_counts: [u64; PHASE_BUCKETS.len()],
}

impl PhaseStat {
    /// Mean span duration in microseconds (0 when no spans completed).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }

    /// Total time in this phase, seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_us as f64 / 1e6
    }
}

fn table() -> &'static Mutex<HashMap<&'static str, Agg>> {
    static TABLE: OnceLock<Mutex<HashMap<&'static str, Agg>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Folds one completed span into the aggregate for `name`. Called from the
/// span guard's `Drop`; the lock is held only for the hash-map update.
pub(crate) fn record(name: &'static str, dur: Duration) {
    let us = dur.as_micros().min(u64::MAX as u128) as u64;
    let secs = dur.as_secs_f64();
    let bucket = PHASE_BUCKETS
        .iter()
        .position(|&le| secs <= le)
        .unwrap_or(PHASE_BUCKETS.len() - 1);
    let mut t = table().lock().expect("phase table poisoned");
    let a = t.entry(name).or_default();
    a.count += 1;
    a.total_us += us;
    a.max_us = a.max_us.max(us);
    a.buckets[bucket] += 1;
}

/// Clears the aggregates (called from [`crate::span::reset`]).
pub(crate) fn reset() {
    table().lock().expect("phase table poisoned").clear();
}

/// Snapshot of all phase aggregates, sorted by name for determinism.
pub fn phase_snapshot() -> Vec<PhaseStat> {
    let t = table().lock().expect("phase table poisoned");
    let mut out: Vec<PhaseStat> = t
        .iter()
        .map(|(&name, a)| PhaseStat {
            name,
            count: a.count,
            total_us: a.total_us,
            max_us: a.max_us,
            bucket_counts: a.buckets,
        })
        .collect();
    out.sort_by_key(|p| p.name);
    out
}

/// Formats microseconds as a human duration (`873µs`, `12.3ms`, `4.56s`).
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{:.2}s", us as f64 / 1e6)
    }
}

/// Renders the per-phase summary table printed by `--profile`, sorted by
/// total time descending so the dominating phase is on top.
pub fn render_summary_table() -> String {
    let mut phases = phase_snapshot();
    phases.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(b.name)));
    let name_w = phases
        .iter()
        .map(|p| p.name.len())
        .chain(std::iter::once("phase".len()))
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    out.push_str(&format!(
        "{:name_w$}  {:>9}  {:>10}  {:>10}  {:>10}\n",
        "phase", "count", "total", "mean", "max"
    ));
    for p in &phases {
        out.push_str(&format!(
            "{:name_w$}  {:>9}  {:>10}  {:>10}  {:>10}\n",
            p.name,
            p.count,
            fmt_us(p.total_us),
            fmt_us(p.mean_us()),
            fmt_us(p.max_us),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_all_durations() {
        // Last bucket is +Inf so any duration lands somewhere, and bounds
        // are strictly increasing (the exporter relies on both).
        assert_eq!(*PHASE_BUCKETS.last().unwrap(), f64::INFINITY);
        for w in PHASE_BUCKETS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn record_aggregates_and_buckets() {
        let _g = crate::span::test_lock();
        reset();
        record("test.sum", Duration::from_micros(50)); // ≤ 0.1ms bucket
        record("test.sum", Duration::from_millis(2)); // ≤ 10ms bucket
        record("test.sum", Duration::from_millis(2));
        let snap = phase_snapshot();
        let p = snap.iter().find(|p| p.name == "test.sum").unwrap();
        assert_eq!(p.count, 3);
        assert_eq!(p.max_us, 2_000);
        assert_eq!(p.mean_us(), (50 + 2_000 + 2_000) / 3);
        assert_eq!(p.bucket_counts[0], 1);
        assert_eq!(p.bucket_counts.iter().sum::<u64>(), 3);
        reset();
    }

    #[test]
    fn summary_table_sorted_by_total() {
        let _g = crate::span::test_lock();
        reset();
        record("test.fast", Duration::from_micros(10));
        record("test.slow", Duration::from_secs(1));
        let table = render_summary_table();
        let slow = table.find("test.slow").unwrap();
        let fast = table.find("test.fast").unwrap();
        assert!(slow < fast, "dominating phase first:\n{table}");
        assert!(table.starts_with("phase"));
        reset();
    }

    #[test]
    fn fmt_us_scales_units() {
        assert_eq!(fmt_us(873), "873µs");
        assert_eq!(fmt_us(12_300), "12.3ms");
        assert_eq!(fmt_us(4_560_000), "4.56s");
    }
}
