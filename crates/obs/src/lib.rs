//! # obs — the workspace's observability layer
//!
//! Zero-dependency tracing, profiling, metrics, and logging shared by every
//! crate in the pipeline. The paper's claims are claims about *where time
//! goes* (bottom-clause construction under different sampling regimes,
//! θ-subsumption vs. SQL coverage testing); this crate is how the
//! reproduction measures that instead of guessing.
//!
//! Four pieces, all built on `std` only:
//!
//! - [`mod@span`] — hierarchical RAII spans over a process-wide recorder. A
//!   span is `let _sp = obs::span!("bc.build");`; guards nest via a
//!   thread-local depth, record wall-clock on drop, and can carry numeric
//!   notes (`sp.note("ground", n)`). Three recorder modes:
//!   [`Mode::Off`] (the default — entering a span costs **one relaxed
//!   atomic load**, nothing is recorded), [`Mode::Summary`] (per-phase
//!   aggregates only), and [`Mode::Full`] (aggregates plus a bounded event
//!   buffer for trace export).
//! - [`mod@trace`] — context-carried trace trees. A [`trace::TraceCtx`]
//!   installed on a thread gives every span entered there a
//!   `span_id`/`parent_id` inside one request- or job-scoped tree, with W3C
//!   `traceparent` propagation ([`trace::parse_traceparent`]); the serving
//!   layer tail-samples finished trees. The off fast path is shared with
//!   the global recorder: mode and the "any trace installed" flag live in
//!   one state byte, so a span still costs one relaxed load when both are
//!   off.
//! - [`chrome`] — exports the recorded events as chrome-trace JSON,
//!   loadable in `about://tracing` or [Perfetto](https://ui.perfetto.dev).
//! - [`summary`] — flat per-phase statistics (count, total, mean, max, and
//!   fixed latency buckets) with a human summary table and the raw data the
//!   serving layer renders as Prometheus histograms.
//! - [`metrics`] — a registry of named monotonic [`metrics::Counter`]s.
//!   Bumping a counter is a single relaxed `fetch_add` whether or not
//!   anything ever reads it; exporters iterate the registry so every
//!   counter in the process shows up in one scrape.
//! - [`log`] — a leveled logger (`error!`/`warn!`/`info!`/`debug!`)
//!   configured by the `AUTOBIAS_LOG` environment variable or
//!   [`log::set_level`], replacing ad-hoc `eprintln!` calls.
//! - [`progress`] — the structured [`progress::ProgressEvent`] channel a
//!   learning run emits (iteration started, clause accepted, …) and the
//!   [`progress::ProgressSink`] trait its consumers implement.
//! - [`report`] — folds a run's progress events plus the span summary and
//!   counter registry into a versioned JSON [`report::RunReport`] — the
//!   flight-recorder artifact behind `autobias learn --report-out` and the
//!   server's run ledger.
//! - [`json`] — a minimal `std`-only JSON parser for reading back the JSON
//!   this workspace writes (run reports, bench results, traces).
//!
//! ## Span naming convention
//!
//! Dotted lowercase names, coarse-grained (a span per pipeline stage or per
//! example, never per tuple or per subsumption node). The pipeline's stable
//! names, asserted by CI's trace-smoke step:
//!
//! | span                  | where                                        |
//! |-----------------------|----------------------------------------------|
//! | `bias.induce`         | whole automatic bias induction               |
//! | `bias.ind_discovery`  | unary IND discovery                          |
//! | `bias.type_graph`     | type-graph construction                      |
//! | `learn`               | one `Learner::learn` call                    |
//! | `learn.bc_build`      | ground-BC construction for a training set    |
//! | `bc.build`            | one bottom clause (label = sampling regime)  |
//! | `learn.clause_search` | one beam search (`LearnClause`)              |
//! | `coverage.theta`      | θ-subsumption coverage batch                 |
//! | `coverage.spj`        | direct SPJ evaluation of a definition        |
//! | `analyze.check`       | one static-verifier pass (bias or theory)    |
//!
//! ## Overhead budget
//!
//! With the recorder [`Mode::Off`] a span is one relaxed load and counters
//! are one relaxed `fetch_add` — the pre-existing hot-path cost. `Summary`
//! adds two `Instant` reads and one short mutex-protected hash-map update
//! per span; `Full` additionally pushes one event into a buffer capped at
//! [`span::MAX_EVENTS`] (drops beyond the cap are counted, never silent).
//! The `obs_overhead` bench in `crates/bench` compares a full learning run
//! under all three modes.
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod log;
pub mod metrics;
pub mod progress;
pub mod report;
pub mod span;
pub mod summary;
pub mod trace;

pub use chrome::export_chrome_trace;
pub use progress::{NullSink, ProgressEvent, ProgressSink};
pub use report::{PlanReport, ReportBuilder, RunReport};
pub use span::{enable_at_least, mode, reset, set_mode, Mode, SpanGuard};
pub use summary::{phase_snapshot, render_summary_table, PhaseStat, PHASE_BUCKETS};
pub use trace::{format_traceparent, parse_traceparent, TraceCtx, TraceTree};
