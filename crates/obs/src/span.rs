//! Hierarchical RAII spans over a process-wide recorder, plus per-context
//! trace trees.
//!
//! A span is opened with [`enter`] (or the [`crate::span!`] macro) and
//! closed by dropping the returned [`SpanGuard`]. Nesting is tracked per
//! thread; the chrome-trace exporter relies on time containment within one
//! thread track, so the process-wide buffer stores no explicit parent ids.
//! The recorder has three modes (see [`Mode`]); everything is monotonic and
//! thread-safe.
//!
//! Independently of the global mode, a [`crate::trace::TraceCtx`] can be
//! installed on a thread: every span entered while it is installed is also
//! recorded into that context's tree with explicit `span_id`/`parent_id`
//! links (see [`crate::trace`]). Both sinks share the single fast-path
//! check: one relaxed atomic load of a combined state byte (mode in the low
//! bits, a "some trace installed" flag above them), so a span costs nothing
//! extra when both are off.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// What the recorder captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Mode {
    /// Nothing. Entering a span costs one relaxed atomic load.
    Off = 0,
    /// Per-phase aggregates only ([`crate::summary`]).
    Summary = 1,
    /// Aggregates plus the bounded event buffer for chrome-trace export.
    Full = 2,
}

/// Combined recorder state: mode in the low two bits, [`TRACE_BIT`] set
/// while at least one `TraceCtx` is installed anywhere in the process.
static STATE: AtomicU8 = AtomicU8::new(0);

const MODE_MASK: u8 = 0b0011;
const TRACE_BIT: u8 = 0b0100;

/// Raises/clears the trace flag in the combined state. Called only by
/// [`crate::trace`] when the count of installed contexts crosses zero.
pub(crate) fn set_trace_flag(on: bool) {
    if on {
        STATE.fetch_or(TRACE_BIT, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!TRACE_BIT, Ordering::Relaxed);
    }
}

/// Cap on buffered events; completions beyond it are aggregated but not
/// buffered, and counted in [`dropped_events`].
pub const MAX_EVENTS: usize = 262_144;

static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Current recorder mode.
#[inline]
pub fn mode() -> Mode {
    match STATE.load(Ordering::Relaxed) & MODE_MASK {
        0 => Mode::Off,
        1 => Mode::Summary,
        _ => Mode::Full,
    }
}

/// Sets the recorder mode (the trace flag is left untouched).
pub fn set_mode(m: Mode) {
    let _ = STATE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
        Some((s & !MODE_MASK) | m as u8)
    });
}

/// Raises the recorder mode if `m` is more detailed than the current one —
/// safe to call from several subsystems without clobbering each other.
pub fn enable_at_least(m: Mode) {
    let _ = STATE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
        Some((s & !MODE_MASK) | (s & MODE_MASK).max(m as u8))
    });
}

/// Events dropped because the buffer hit [`MAX_EVENTS`].
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// One completed span, ready for export.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Static span name (see the naming table in the crate docs).
    pub name: &'static str,
    /// Optional static label (e.g. the sampling regime).
    pub label: Option<&'static str>,
    /// Numeric notes attached while the span was open.
    pub notes: Vec<(&'static str, u64)>,
    /// Small dense thread id (not the OS tid).
    pub tid: u32,
    /// Nesting depth on its thread when opened (0 = top level).
    pub depth: u32,
    /// Start, microseconds since the recorder epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn events() -> &'static Mutex<Vec<SpanEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Snapshot of the buffered events.
pub fn snapshot_events() -> Vec<SpanEvent> {
    events().lock().expect("span buffer poisoned").clone()
}

/// Number of buffered events.
pub fn events_len() -> usize {
    events().lock().expect("span buffer poisoned").len()
}

/// Clears buffered events and per-phase aggregates (counters and the mode
/// are left untouched). Intended for process-owned flows — the CLI before a
/// traced run, tests — not for concurrent servers, where clearing would
/// race other threads' open spans.
pub fn reset() {
    events().lock().expect("span buffer poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
    crate::summary::reset();
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// RAII guard for one span; records on drop. Inactive guards (recorder off)
/// do nothing.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    name: &'static str,
    label: Option<&'static str>,
    notes: Vec<(&'static str, u64)>,
    /// `None` while the recorder is fully off — an inactive guard never
    /// reads the clock.
    start: Option<Instant>,
    depth: u32,
    /// Set when a [`crate::trace::TraceCtx`] was installed on this thread at
    /// entry; the span is then also recorded into that trace tree.
    trace: Option<crate::trace::TraceAttach>,
}

impl SpanGuard {
    /// Attaches a numeric note, exported as a chrome-trace `args` entry.
    /// No-op on an inactive guard.
    #[inline]
    pub fn note(&mut self, key: &'static str, value: u64) {
        if self.start.is_some() {
            self.notes.push((key, value));
        }
    }

    /// Adds `delta` to an existing note or creates it — for accumulating
    /// counts across loop iterations inside one span.
    #[inline]
    pub fn add_note(&mut self, key: &'static str, delta: u64) {
        if self.start.is_none() {
            return;
        }
        match self.notes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v += delta,
            None => self.notes.push((key, delta)),
        }
    }

    /// Whether this guard is recording (recorder was on at entry).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }
}

/// Opens a span. Prefer the [`crate::span!`] macro.
#[inline]
pub fn enter(name: &'static str, label: Option<&'static str>) -> SpanGuard {
    // The off fast path: one relaxed load covering both the global mode and
    // the "any trace installed" flag. No clock read, no allocation.
    if STATE.load(Ordering::Relaxed) == 0 {
        return SpanGuard {
            name,
            label,
            notes: Vec::new(),
            start: None,
            depth: 0,
            trace: None,
        };
    }
    enter_slow(name, label)
}

#[cold]
fn enter_slow(name: &'static str, label: Option<&'static str>) -> SpanGuard {
    let trace = crate::trace::attach();
    if trace.is_none() && mode() == Mode::Off {
        // The trace flag is set but this thread carries no context (another
        // thread's trace raised it). Stay inactive.
        return SpanGuard {
            name,
            label,
            notes: Vec::new(),
            start: None,
            depth: 0,
            trace: None,
        };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        name,
        label,
        notes: Vec::new(),
        start: Some(Instant::now()),
        depth,
        trace,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let dur = start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let notes = std::mem::take(&mut self.notes);
        let tid = TID.with(|t| *t);
        if let Some(attach) = self.trace.take() {
            crate::trace::record(attach, self.name, self.label, &notes, tid, start, dur);
        }
        let m = mode();
        if m == Mode::Off {
            return;
        }
        crate::summary::record(self.name, dur);
        if m == Mode::Full {
            let start_us = start
                .saturating_duration_since(epoch())
                .as_micros()
                .min(u64::MAX as u128) as u64;
            let event = SpanEvent {
                name: self.name,
                label: self.label,
                notes,
                tid,
                depth: self.depth,
                start_us,
                dur_us: dur.as_micros().min(u64::MAX as u128) as u64,
            };
            let mut buf = events().lock().expect("span buffer poisoned");
            if buf.len() < MAX_EVENTS {
                buf.push(event);
            } else {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Opens a span guard: `let _sp = obs::span!("learn");` or, with a static
/// label, `obs::span!("bc.build", "naive")`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name, None)
    };
    ($name:expr, $label:expr) => {
        $crate::span::enter($name, Some($label))
    };
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn off_mode_records_nothing() {
        let _g = test_lock();
        set_mode(Mode::Off);
        reset();
        {
            let mut sp = crate::span!("test.off");
            sp.note("k", 1);
            assert!(!sp.is_active());
        }
        assert_eq!(events_len(), 0);
        assert!(crate::summary::phase_snapshot().is_empty());
    }

    /// The acceptance bound is "one relaxed atomic per event" when tracing
    /// is off; this smoke-checks that 100k disabled spans finish in time
    /// that only a pathologically slower implementation (allocation, locks,
    /// clock reads) would exceed. The real comparison lives in the
    /// `obs_overhead` bench.
    #[test]
    fn off_mode_spans_are_cheap() {
        let _g = test_lock();
        set_mode(Mode::Off);
        let t0 = Instant::now();
        for _ in 0..100_000 {
            let _sp = crate::span!("test.cheap");
        }
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "100k disabled spans took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn full_mode_buffers_nested_events() {
        let _g = test_lock();
        set_mode(Mode::Full);
        reset();
        {
            let mut outer = crate::span!("test.outer");
            outer.note("n", 7);
            outer.add_note("n", 3);
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = crate::span!("test.inner", "labelled");
            }
        }
        set_mode(Mode::Off);
        let evs = snapshot_events();
        assert_eq!(evs.len(), 2);
        // Inner completes (and is buffered) first.
        let inner = &evs[0];
        let outer = &evs[1];
        assert_eq!(inner.name, "test.inner");
        assert_eq!(inner.label, Some("labelled"));
        assert_eq!(inner.depth, outer.depth + 1);
        assert_eq!(outer.notes, vec![("n", 10)]);
        assert!(outer.dur_us >= inner.dur_us);
        // Containment: inner lies within outer on the same thread.
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
        reset();
    }

    #[test]
    fn summary_mode_aggregates_without_buffering() {
        let _g = test_lock();
        set_mode(Mode::Summary);
        reset();
        for _ in 0..3 {
            let _sp = crate::span!("test.agg");
        }
        set_mode(Mode::Off);
        assert_eq!(events_len(), 0);
        let phases = crate::summary::phase_snapshot();
        let agg = phases.iter().find(|p| p.name == "test.agg").unwrap();
        assert_eq!(agg.count, 3);
        reset();
    }

    #[test]
    fn enable_at_least_never_downgrades() {
        let _g = test_lock();
        set_mode(Mode::Full);
        enable_at_least(Mode::Summary);
        assert_eq!(mode(), Mode::Full);
        enable_at_least(Mode::Full);
        assert_eq!(mode(), Mode::Full);
        set_mode(Mode::Off);
        enable_at_least(Mode::Summary);
        assert_eq!(mode(), Mode::Summary);
        set_mode(Mode::Off);
    }
}
