//! End-to-end observability test: boot the server, drive a `/predict` and a
//! `/jobs/learn` to completion, and assert that the phase-duration
//! histograms and core pipeline counters show up in `/metrics` with nonzero
//! values, and that the job status exposes per-phase timings.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias_serve::{serve, ServeConfig};
use datasets::io::save_dataset;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const COAUTHOR_MODEL: &str = "advisedBy(x, y) ← publication(z, x), publication(z, y)\n";

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).unwrap();
    conn.write_all(body.as_bytes()).unwrap();
    conn.flush().unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn setup_dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("autobias_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let data = base.join("data");
    let models = base.join("models");
    let ds = datasets::uw::generate(
        &datasets::uw::UwConfig {
            students: 20,
            professors: 8,
            courses: 10,
            advised_pairs: 10,
            negatives: 20,
            evidence_prob: 1.0,
            ..datasets::uw::UwConfig::default()
        },
        13,
    );
    save_dataset(&ds, &data).expect("save dataset");
    std::fs::create_dir_all(&models).unwrap();
    std::fs::write(models.join("coauthor.model"), COAUTHOR_MODEL).unwrap();
    (data, models)
}

/// Value of an unlabeled counter/gauge sample line in exposition text.
fn sample_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("no sample for {name}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("unparsable value for {name}: {e}"))
}

/// `_count` of one phase's `autobias_phase_duration_seconds` histogram.
fn phase_count(metrics: &str, phase: &str) -> u64 {
    let prefix = format!("autobias_phase_duration_seconds_count{{phase=\"{phase}\"}} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(prefix.as_str()))
        .unwrap_or_else(|| panic!("no phase histogram for {phase:?}"))
        .trim()
        .parse()
        .expect("count parses")
}

#[test]
fn metrics_expose_phase_histograms_and_core_counters() {
    let (data, models) = setup_dirs("metrics_e2e");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: data,
        models_dir: models,
        threads: 2,
        access_log: None,
        request_trace: true,
    };
    let (handle, _report) = serve(&cfg).expect("server boots");
    let addr = handle.addr();

    // Drive a prediction (bumps the SPJ coverage counter)...
    let (status, body) = request(addr, "POST", "/predict", "model coauthor\ns1,p1\n");
    assert_eq!(status, 200, "{body}");

    // ...and a learning job to completion (bumps everything else).
    let (status, body) = request(
        addr,
        "POST",
        "/jobs/learn",
        "name m1\nbias manual\nmax-clauses 2\n",
    );
    assert_eq!(status, 202, "{body}");
    let id = body
        .lines()
        .find_map(|l| l.strip_prefix("id "))
        .expect("job id")
        .to_string();
    let t0 = Instant::now();
    let final_body = loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let state = body
            .lines()
            .find_map(|l| l.strip_prefix("state "))
            .expect("state line")
            .to_string();
        if matches!(state.as_str(), "done" | "cancelled" | "failed") {
            assert_eq!(state, "done", "{body}");
            break body;
        }
        assert!(t0.elapsed() < Duration::from_secs(120), "job stuck: {body}");
        std::thread::sleep(Duration::from_millis(50));
    };

    // Per-job phase stats in GET /jobs/{id}.
    assert!(
        final_body.lines().any(|l| l.starts_with("phase bc_build ")),
        "no bc_build phase line: {final_body}"
    );
    assert!(
        final_body
            .lines()
            .any(|l| l.starts_with("phase clause_search ")),
        "no clause_search phase line: {final_body}"
    );

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);

    // Phase histograms are present with nonzero counts for the learning
    // pipeline phases the job exercised.
    for phase in ["learn", "learn.bc_build", "bc.build", "coverage.theta"] {
        assert!(
            phase_count(&metrics, phase) > 0,
            "phase {phase} has count 0"
        );
    }

    // Core counters from the one registry, nonzero after the traffic above.
    for counter in [
        "autobias_core_subsumption_tests_total",
        "autobias_core_bottom_clauses_total",
        "autobias_core_coverage_queries_total",
        "autobias_core_candidates_generated_total",
        "autobias_core_clauses_accepted_total",
    ] {
        assert!(
            sample_value(&metrics, counter) > 0.0,
            "{counter} is zero:\n{metrics}"
        );
    }

    // The acceptance-rate gauge renders (0 unless Random sampling ran).
    assert!(metrics.contains("autobias_sampler_acceptance_ratio "));

    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join();
}
