//! End-to-end flight-recorder test: start a learning job, stream its
//! progress events over `GET /jobs/{id}/events` (SSE over chunked
//! transfer), check the live progress fields on `GET /jobs/{id}`, fetch the
//! archived run report from `GET /runs/{id}`, and verify that a client
//! hanging up mid-stream is counted as a disconnect, not a request error.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias_serve::http::{read_response_head, ChunkedReader};
use autobias_serve::{serve, ServeConfig};
use datasets::io::save_dataset;
use obs::json::Json;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One-shot HTTP client: sends a request, returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).unwrap();
    conn.write_all(body.as_bytes()).unwrap();
    conn.flush().unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn setup_dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("autobias_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let data = base.join("data");
    let models = base.join("models");
    let ds = datasets::uw::generate(
        &datasets::uw::UwConfig {
            students: 25,
            professors: 10,
            courses: 12,
            advised_pairs: 14,
            negatives: 28,
            evidence_prob: 1.0,
            ..datasets::uw::UwConfig::default()
        },
        11,
    );
    save_dataset(&ds, &data).expect("save dataset");
    std::fs::create_dir_all(&models).unwrap();
    (data, models)
}

/// Consumes a whole SSE stream, returning `(event, data-json)` pairs.
/// Replay semantics make this timing-independent: connecting after the job
/// finished still yields the full event history before the stream closes.
fn read_sse(addr: SocketAddr, path: &str) -> Vec<(String, String)> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    conn.flush().unwrap();
    let mut reader = BufReader::new(conn);
    let (status, headers) = read_response_head(&mut reader).expect("response head");
    assert_eq!(status, 200);
    assert!(
        headers
            .iter()
            .any(|(n, v)| n == "content-type" && v.starts_with("text/event-stream")),
        "{headers:?}"
    );
    assert!(
        headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && v == "chunked"),
        "{headers:?}"
    );
    let mut chunks = ChunkedReader::new(reader);
    let mut raw = String::new();
    while let Some(chunk) = chunks.next_chunk().expect("chunk") {
        raw.push_str(&String::from_utf8(chunk).expect("utf-8 stream"));
    }
    let mut events = Vec::new();
    for frame in raw.split("\n\n") {
        let mut event = None;
        let mut data = None;
        for line in frame.lines() {
            if let Some(e) = line.strip_prefix("event: ") {
                event = Some(e.to_string());
            } else if let Some(d) = line.strip_prefix("data: ") {
                data = Some(d.to_string());
            }
            // `: keep-alive` comment lines fall through both prefixes.
        }
        if let (Some(e), Some(d)) = (event, data) {
            events.push((e, d));
        }
    }
    events
}

fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(name).and_then(|r| r.trim().parse().ok()))
        .unwrap_or_else(|| panic!("no metric {name} in:\n{metrics}"))
}

#[test]
fn flight_recorder_end_to_end() {
    let (data, models) = setup_dirs("flight");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: data.clone(),
        models_dir: models.clone(),
        threads: 4,
        access_log: None,
        request_trace: true,
    };
    let (handle, _) = serve(&cfg).expect("server boots");
    let addr = handle.addr();

    // --- start a learning job and stream its whole event history ---
    let (status, body) = request(addr, "POST", "/jobs/learn", "name flight\nbias manual\n");
    assert_eq!(status, 202, "{body}");
    let id = body
        .lines()
        .find_map(|l| l.strip_prefix("id "))
        .expect("job id")
        .to_string();

    let events = read_sse(addr, &format!("/jobs/{id}/events"));
    assert!(
        events.len() >= 4,
        "expected at least trace + bc_build + iteration + finished, got {events:?}"
    );
    // Every stream leads with the job's trace id so a watcher can correlate
    // the SSE feed with /debug/traces/{id}.
    assert_eq!(events[0].0, "trace");
    assert!(events[0].1.contains("trace_id"), "{:?}", events[0]);
    assert_eq!(events[1].0, "bc_build_finished");
    assert_eq!(events.last().unwrap().0, "finished");
    let accepted = events
        .iter()
        .filter(|(e, _)| e == "clause_accepted")
        .count();
    let iterations = events
        .iter()
        .filter(|(e, _)| e == "iteration_started")
        .count();
    assert!(accepted >= 1, "the UW job learns something: {events:?}");
    assert!(iterations >= accepted);
    for (event, data) in &events {
        let parsed = Json::parse(data).unwrap_or_else(|e| panic!("{event}: {e}\n{data}"));
        assert_eq!(parsed.get("event").unwrap().as_str(), Some(event.as_str()));
    }

    // A second stream replays the identical history (the log is closed).
    let replay = read_sse(addr, &format!("/jobs/{id}/events"));
    assert_eq!(events, replay, "replay must be deterministic");

    // --- live progress fields on the polling endpoint ---
    let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(status, 200);
    assert!(body.contains("state done"), "{body}");
    let iteration_line: usize = body
        .lines()
        .find_map(|l| l.strip_prefix("iteration "))
        .expect("iteration line")
        .parse()
        .unwrap();
    assert_eq!(iteration_line, iterations, "{body}");
    let progress = body
        .lines()
        .find_map(|l| l.strip_prefix("progress "))
        .expect("progress line");
    let (covered, total) = progress.split_once('/').expect("covered/total");
    let (covered, total): (usize, usize) = (covered.parse().unwrap(), total.parse().unwrap());
    assert!(total > 0 && covered <= total, "{body}");
    let clauses_line: usize = body
        .lines()
        .find_map(|l| l.strip_prefix("clauses "))
        .expect("clauses line")
        .parse()
        .unwrap();
    assert_eq!(clauses_line, accepted, "{body}");

    // --- the archived run report agrees with the event stream ---
    let (status, body) = request(addr, "GET", "/runs", "");
    assert_eq!(status, 200);
    assert!(body.lines().any(|l| l == id), "{body}");
    let (status, body) = request(addr, "GET", &format!("/runs/{id}"), "");
    assert_eq!(status, 200);
    let report = Json::parse(&body).unwrap_or_else(|e| panic!("{e}\n{body}"));
    assert_eq!(report.get("schema_version").unwrap().as_f64(), Some(2.0));
    // Schema v2: the archived report records the final compile outcome.
    let plan_compiled = report
        .path(&["plan", "compiled_clauses"])
        .expect("v2 report has a plan section")
        .as_f64()
        .unwrap() as usize;
    let plan_fallback = report
        .path(&["plan", "fallback_clauses"])
        .unwrap()
        .as_f64()
        .unwrap() as usize;
    assert_eq!(plan_compiled + plan_fallback, accepted, "{body}");
    // The server names the dataset after the directory it was loaded from.
    assert_eq!(report.get("dataset").unwrap().as_str(), Some("data"));
    assert_eq!(
        report.path(&["params", "bias"]).unwrap().as_str(),
        Some("manual")
    );
    assert_eq!(
        report.get("iterations").unwrap().as_arr().unwrap().len(),
        iterations
    );
    assert_eq!(
        report.get("clauses").unwrap().as_arr().unwrap().len(),
        accepted
    );
    assert_eq!(
        report.path(&["outcome", "state"]).unwrap().as_str(),
        Some("done")
    );
    let phases = report.get("phases").unwrap().as_obj().unwrap();
    assert!(
        phases.iter().any(|(name, _)| name == "learn"),
        "phase timings must include the learn span: {body}"
    );
    let (status, _) = request(addr, "GET", "/runs/9999", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/jobs/9999/events", "");
    assert_eq!(status, 404);

    // --- a client hanging up mid-stream is a disconnect, not an error ---
    let (status, body) = request(
        addr,
        "POST",
        "/jobs/learn",
        "name abandoned\nbias manual\nsampling full\ndepth 3\n",
    );
    assert_eq!(status, 202, "{body}");
    let id2 = body
        .lines()
        .find_map(|l| l.strip_prefix("id "))
        .expect("job id")
        .to_string();
    {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(
            conn,
            "GET /jobs/{id2}/events HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        conn.flush().unwrap();
        // Read a little so the stream is established, then hang up with
        // data still coming — the server's next writes fail.
        let mut buf = [0u8; 64];
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let _ = conn.read(&mut buf);
    } // dropped: RST on the server's next write
    let (status, _) = request(addr, "POST", &format!("/jobs/{id2}/cancel"), "");
    assert_eq!(status, 200);

    let t0 = Instant::now();
    loop {
        let (status, metrics) = request(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        let disconnects = metric_value(&metrics, "autobias_client_disconnects_total ");
        let event_errors = metric_value(
            &metrics,
            "autobias_request_errors_total{endpoint=\"events\"} ",
        );
        // The two deliberate 404 probes above hit /runs/9999 (runs) and
        // /jobs/9999/events (events): exactly one events error is expected,
        // and none from the disconnected stream.
        assert!(event_errors <= 1, "disconnects must not count as errors");
        if disconnects >= 1 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "no disconnect counted:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // --- graceful shutdown still works with the recorder wired in ---
    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join();
    let _ = std::fs::remove_dir_all(data.parent().unwrap());
}
