//! End-to-end equivalence of the two /predict evaluation engines, and the
//! keep-alive request loop.
//!
//! Boots real servers over a UW dataset and asserts that `/predict`
//! responses are **byte-identical** with compiled plans on
//! (`AUTOBIAS_COMPILE` unset) and off (`AUTOBIAS_COMPILE=0`), for both a
//! hand-written model and a model learned by a background job, across 1 and
//! 8 worker threads. Also drives several requests down one keep-alive
//! connection and checks the reuse counter on `/metrics`.
//!
//! Everything runs in ONE `#[test]` because the compile toggle is a process
//! env var: parallel tests in this binary would race it.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias_serve::http::read_response_head;
use autobias_serve::{serve, ServeConfig};
use datasets::io::save_dataset;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const COAUTHOR_MODEL: &str = "advisedBy(x, y) ← publication(z, x), publication(z, y)\n";

/// One-shot client (Connection: close), as a plain-text `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).unwrap();
    conn.write_all(body.as_bytes()).unwrap();
    conn.flush().unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// A persistent keep-alive connection issuing sequential requests.
struct KeepAliveClient {
    write_half: TcpStream,
    reader: BufReader<TcpStream>,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> Self {
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let read_half = conn.try_clone().expect("clone socket");
        Self {
            write_half: conn,
            reader: BufReader::new(read_half),
        }
    }

    /// Sends one request on the open connection; returns status, the
    /// server's `Connection` header, and the body.
    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String, String) {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.write_half.write_all(head.as_bytes()).unwrap();
        self.write_half.write_all(body.as_bytes()).unwrap();
        self.write_half.flush().unwrap();
        let (status, headers) = read_response_head(&mut self.reader).expect("response head");
        let connection = headers
            .iter()
            .find(|(n, _)| n == "connection")
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        let len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .expect("content-length on fixed responses");
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).expect("body");
        (status, connection, String::from_utf8(body).unwrap())
    }
}

fn setup_dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("autobias_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let data = base.join("data");
    let models = base.join("models");
    let ds = datasets::uw::generate(
        &datasets::uw::UwConfig {
            students: 25,
            professors: 10,
            courses: 12,
            advised_pairs: 14,
            negatives: 28,
            evidence_prob: 1.0,
            ..datasets::uw::UwConfig::default()
        },
        11,
    );
    save_dataset(&ds, &data).expect("save dataset");
    std::fs::create_dir_all(&models).unwrap();
    std::fs::write(models.join("coauthor.model"), COAUTHOR_MODEL).unwrap();
    (data, models)
}

fn sample_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("no sample for {name}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("unparsable value for {name}: {e}"))
}

#[test]
fn compiled_and_interpreted_predict_are_byte_identical() {
    // The toggle must start in its default state regardless of the shell.
    std::env::remove_var("AUTOBIAS_COMPILE");
    let (data, models) = setup_dirs("predict_plan");

    // Batch body: every positive and negative example of the dataset.
    let ds = datasets::io::load_dataset(&data).expect("load");
    let mut tuples = String::new();
    let mut n_tuples = 0usize;
    for e in ds.pos.iter().chain(ds.neg.iter()) {
        let fields: Vec<&str> = e.args.iter().map(|&c| ds.db.const_name(c)).collect();
        tuples.push_str(&format!("{}\n", fields.join(",")));
        n_tuples += 1;
    }
    assert!(n_tuples >= 20, "want a real batch, got {n_tuples}");

    // --- learn a UW model through a job on a 1-thread server ---
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: data.clone(),
        models_dir: models.clone(),
        threads: 1,
        access_log: None,
        request_trace: true,
    };
    let (handle, report) = serve(&cfg).expect("server boots");
    assert_eq!(report.loaded, vec!["coauthor"]);
    let addr = handle.addr();
    let (status, body) = request(
        addr,
        "POST",
        "/jobs/learn",
        "name learned\nbias manual\nmax-clauses 3\n",
    );
    assert_eq!(status, 202, "{body}");
    let id = body.lines().find_map(|l| l.strip_prefix("id ")).unwrap();
    let t0 = Instant::now();
    loop {
        let (_, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        let state = body
            .lines()
            .find_map(|l| l.strip_prefix("state "))
            .unwrap()
            .to_string();
        if state != "queued" && state != "running" {
            assert_eq!(state, "done", "{body}");
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(120), "job stuck: {body}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // --- the differential matrix: 2 models × 2 engines × {1,8} threads ---
    // `plan::enabled()` is consulted per request, so toggling the env var
    // against one running server flips the engine under the same registry
    // snapshot — the strongest form of "output-transparent".
    let mut handles = vec![handle];
    let mut baselines: Vec<(String, String)> = Vec::new(); // (model, response)
    for threads in [1usize, 8] {
        let (handle, addr) = if threads == 1 {
            (None, addr)
        } else {
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                data_dir: data.clone(),
                models_dir: models.clone(),
                threads,
                access_log: None,
                request_trace: true,
            };
            let (h, report) = serve(&cfg).expect("8-thread server boots");
            assert_eq!(report.loaded, vec!["coauthor", "learned"]);
            let addr = h.addr();
            (Some(h), addr)
        };
        for model in ["coauthor", "learned"] {
            let body = format!("model {model}\n{tuples}");
            let (status, compiled) = request(addr, "POST", "/predict", &body);
            assert_eq!(status, 200, "{compiled}");
            assert_eq!(compiled.lines().count(), n_tuples);
            std::env::set_var("AUTOBIAS_COMPILE", "0");
            let (status, interpreted) = request(addr, "POST", "/predict", &body);
            std::env::remove_var("AUTOBIAS_COMPILE");
            assert_eq!(status, 200, "{interpreted}");
            assert_eq!(
                compiled, interpreted,
                "engines must be byte-identical (model {model}, {threads} thread(s))"
            );
            baselines.push((model.to_string(), compiled));
        }
        if let Some(h) = handle {
            handles.push(h);
        }
    }
    // Same verdicts across thread counts, and not vacuously one-sided.
    for (model, response) in &baselines {
        let first = &baselines
            .iter()
            .find(|(m, _)| m == model)
            .expect("baseline")
            .1;
        assert_eq!(response, first, "thread counts disagree for {model}");
    }
    let coauthor = &baselines[0].1;
    assert!(coauthor.lines().any(|l| l.ends_with("\tpositive")));
    assert!(coauthor.lines().any(|l| l.ends_with("\tnegative")));

    // --- keep-alive: several requests down one connection ---
    let mut ka = KeepAliveClient::connect(addr);
    let body = format!("model coauthor\n{tuples}");
    let (status, connection, first) = ka.request("POST", "/predict", &body);
    assert_eq!(status, 200, "{first}");
    assert_eq!(connection, "keep-alive", "server honors HTTP/1.1 default");
    for _ in 0..3 {
        let (status, connection, again) = ka.request("POST", "/predict", &body);
        assert_eq!(status, 200);
        assert_eq!(connection, "keep-alive");
        assert_eq!(again, first, "reused connection, same verdicts");
    }
    let (status, _, metrics) = ka.request("GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        sample_value(&metrics, "autobias_http_keepalive_reuses_total") >= 4.0,
        "4 follow-up requests rode the same connection"
    );
    assert!(sample_value(&metrics, "autobias_http_connections_total") >= 1.0);
    // Plan compilation happened at load (coauthor + learned), and predict
    // traffic split across the two engines.
    assert!(sample_value(&metrics, "autobias_plan_compiled_total") >= 2.0);
    assert!(sample_value(&metrics, "autobias_predict_tuples_total") > 0.0);
    assert!(
        sample_value(&metrics, "autobias_predict_interpreted_tuples_total") > 0.0,
        "the AUTOBIAS_COMPILE=0 round went through the interpreter"
    );
    assert!(
        metrics.contains("autobias_phase_duration_seconds_count{phase=\"predict.compiled_batch\"}"),
        "compiled batches record their span:\n{metrics}"
    );
    assert!(metrics
        .contains("autobias_phase_duration_seconds_count{phase=\"predict.interpreted_batch\"}"));
    assert!(metrics.contains("autobias_phase_duration_seconds_count{phase=\"plan.compile\"}"));

    // A client asking to close is honored.
    let mut closing = KeepAliveClient::connect(addr);
    let head = format!(
        "POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    closing.write_half.write_all(head.as_bytes()).unwrap();
    closing.write_half.write_all(body.as_bytes()).unwrap();
    let (status, headers) = read_response_head(&mut closing.reader).unwrap();
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "connection" && v == "close"));

    // --- shutdown every server ---
    for h in handles {
        let (status, _) = request(h.addr(), "POST", "/shutdown", "");
        assert_eq!(status, 200);
        h.join();
    }
}
