//! End-to-end plan observability: `GET /models/{name}/plan` (EXPLAIN),
//! `?analyze=1` (EXPLAIN ANALYZE with live per-operator counters),
//! the slow-request flight recorder on `GET /debug/slow`, and the
//! q-error / per-model plan series on `GET /metrics`.
//!
//! One `#[test]`: the engine toggle and the stats gate are process env
//! vars, so parallel tests in this binary would race them.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias_serve::{serve, ServeConfig};
use datasets::io::save_dataset;
use obs::json::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

const COAUTHOR_MODEL: &str = "advisedBy(x, y) ← publication(z, x), publication(z, y)\n";

/// One-shot client (Connection: close), as a plain-text `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).unwrap();
    conn.write_all(body.as_bytes()).unwrap();
    conn.flush().unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn setup_dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("autobias_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let data = base.join("data");
    let models = base.join("models");
    let ds = datasets::uw::generate(
        &datasets::uw::UwConfig {
            students: 25,
            professors: 10,
            courses: 12,
            advised_pairs: 14,
            negatives: 28,
            evidence_prob: 1.0,
            ..datasets::uw::UwConfig::default()
        },
        11,
    );
    save_dataset(&ds, &data).expect("save dataset");
    std::fs::create_dir_all(&models).unwrap();
    std::fs::write(models.join("coauthor.model"), COAUTHOR_MODEL).unwrap();
    (data, models)
}

fn sample_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("no sample for {name} in:\n{metrics}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("unparsable value for {name}: {e}"))
}

#[test]
fn explain_analyze_slow_ring_and_metrics() {
    // Both toggles must start in their default (on) state.
    std::env::remove_var("AUTOBIAS_COMPILE");
    std::env::remove_var("AUTOBIAS_PLAN_STATS");
    let (data, models) = setup_dirs("plan_obs");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: data.clone(),
        models_dir: models.clone(),
        threads: 2,
        access_log: None,
        request_trace: true,
    };
    let (handle, report) = serve(&cfg).expect("server boots");
    assert_eq!(report.loaded, vec!["coauthor"]);
    let addr = handle.addr();

    // --- EXPLAIN before any traffic: static plan, no analyze section ---
    let (status, body) = request(addr, "GET", "/models/coauthor/plan", "");
    assert_eq!(status, 200, "{body}");
    let explain = Json::parse(&body).unwrap_or_else(|e| panic!("{e}\n{body}"));
    assert_eq!(explain.get("explain_version").unwrap().as_f64(), Some(1.0));
    assert_eq!(explain.get("model").unwrap().as_str(), Some("coauthor"));
    assert_eq!(explain.get("analyze").unwrap().as_bool(), Some(false));
    assert_eq!(explain.get("compiled").unwrap().as_f64(), Some(1.0));
    assert_eq!(explain.get("fallback").unwrap().as_f64(), Some(0.0));
    let clauses = explain.get("clauses").unwrap().as_arr().unwrap();
    assert_eq!(clauses.len(), 1);
    assert_eq!(clauses[0].get("engine").unwrap().as_str(), Some("compiled"));
    let variants = clauses[0].get("variants").unwrap().as_arr().unwrap();
    assert!(!variants.is_empty());
    let steps = variants[0].get("steps").unwrap().as_arr().unwrap();
    assert!(!steps.is_empty());
    assert!(steps[0].get("est").unwrap().as_f64().unwrap() >= 1.0);
    assert!(
        steps[0].get("entries").is_none(),
        "no runtime counters without analyze=1"
    );
    // Unknown model is a clean 404.
    let (status, _) = request(addr, "GET", "/models/nope/plan", "");
    assert_eq!(status, 404);

    // --- drive a real /predict batch so the tallies move ---
    let ds = datasets::io::load_dataset(&data).expect("load");
    let mut tuples = String::new();
    let mut n_tuples = 0usize;
    for e in ds.pos.iter().chain(ds.neg.iter()) {
        let fields: Vec<&str> = e.args.iter().map(|&c| ds.db.const_name(c)).collect();
        tuples.push_str(&format!("{}\n", fields.join(",")));
        n_tuples += 1;
    }
    assert!(n_tuples >= 20, "want a real batch, got {n_tuples}");
    let payload = format!("model coauthor\n{tuples}");
    let (status, verdicts) = request(addr, "POST", "/predict", &payload);
    assert_eq!(status, 200, "{verdicts}");
    assert_eq!(verdicts.lines().count(), n_tuples);

    // --- EXPLAIN ANALYZE: runtime counters consistent with the batch ---
    let (status, body) = request(addr, "GET", "/models/coauthor/plan?analyze=1", "");
    assert_eq!(status, 200, "{body}");
    let analyzed = Json::parse(&body).unwrap_or_else(|e| panic!("{e}\n{body}"));
    assert_eq!(analyzed.get("analyze").unwrap().as_bool(), Some(true));
    assert!(analyzed.get("batches").unwrap().as_f64().unwrap() >= 1.0);
    let clause = &analyzed.get("clauses").unwrap().as_arr().unwrap()[0];
    let evals = clause.get("evals").unwrap().as_f64().unwrap();
    assert!(
        evals >= n_tuples as f64,
        "every tuple evaluates the only clause: {body}"
    );
    let matches = clause.get("matches").unwrap().as_f64().unwrap();
    let positives = verdicts
        .lines()
        .filter(|l| l.ends_with("\tpositive"))
        .count() as f64;
    assert_eq!(matches, positives, "matches agree with the verdicts");
    let variants = clause.get("variants").unwrap().as_arr().unwrap();
    let first_steps = variants[0].get("steps").unwrap().as_arr().unwrap();
    let entered: f64 = variants
        .iter()
        .map(|v| {
            v.get("steps").unwrap().as_arr().unwrap()[0]
                .get("entries")
                .unwrap()
                .as_f64()
                .unwrap_or(0.0)
        })
        .sum();
    assert_eq!(entered, evals, "every eval enters exactly one variant");
    assert!(first_steps[0].get("avg_candidates").is_some());

    // --- slow ring captured the batch ---
    let (status, body) = request(addr, "GET", "/debug/slow", "");
    assert_eq!(status, 200, "{body}");
    let slow = Json::parse(&body).unwrap_or_else(|e| panic!("{e}\n{body}"));
    let entries = slow.get("slow").unwrap().as_arr().unwrap();
    assert!(!entries.is_empty(), "the predict batch must be recorded");
    let worst = &entries[0];
    assert_eq!(worst.get("model").unwrap().as_str(), Some("coauthor"));
    assert_eq!(worst.get("engine").unwrap().as_str(), Some("compiled"));
    assert_eq!(worst.get("tuples").unwrap().as_f64(), Some(n_tuples as f64));
    assert!(worst.get("entries").unwrap().as_f64().unwrap() > 0.0);

    // --- metrics: q-error histogram and per-model plan series ---
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        sample_value(&metrics, "autobias_plan_estimate_qerror_count") >= 1.0,
        "the batch observed at least one step's q-error:\n{metrics}"
    );
    assert!(
        metrics.contains("autobias_plan_estimate_qerror_bucket{le=\"+Inf\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("autobias_plan_compiled_total{model=\"coauthor\"} 1"),
        "per-model compiled series:\n{metrics}"
    );
    assert!(
        metrics.contains("autobias_plan_fallback_total{model=\"coauthor\"} 0"),
        "{metrics}"
    );

    // --- stats gated off: predictions identical, counters frozen ---
    let before = analyzed.get("batches").unwrap().as_f64().unwrap();
    std::env::set_var("AUTOBIAS_PLAN_STATS", "0");
    // The gate is cached per process after first use; a fresh server
    // process would honor it. Here we only assert the response shape is
    // unaffected by the env var at request time.
    let (status, again) = request(addr, "POST", "/predict", &payload);
    std::env::remove_var("AUTOBIAS_PLAN_STATS");
    assert_eq!(status, 200);
    assert_eq!(again, verdicts, "stats toggling never changes verdicts");
    let (_, body) = request(addr, "GET", "/models/coauthor/plan?analyze=1", "");
    let after = Json::parse(&body)
        .unwrap()
        .get("batches")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(after >= before, "batch counter is monotone");

    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join();
    let _ = std::fs::remove_dir_all(data.parent().unwrap());
}
