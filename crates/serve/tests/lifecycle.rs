//! End-to-end lifecycle test: boot on an ephemeral port, serve predictions
//! checked against a direct-evaluation oracle, hammer /predict from
//! concurrent clients, run a background learning job to completion, cancel
//! another, scrape metrics, and shut down gracefully.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias::clause_text::parse_definition;
use autobias::query::{definition_covers, QueryConfig};
use autobias_serve::{serve, ServeConfig};
use datasets::io::{load_dataset, save_dataset};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const COAUTHOR_MODEL: &str = "advisedBy(x, y) ← publication(z, x), publication(z, y)\n";

/// One-shot HTTP client: sends a request, returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).unwrap();
    conn.write_all(body.as_bytes()).unwrap();
    conn.flush().unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn setup_dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("autobias_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let data = base.join("data");
    let models = base.join("models");
    let ds = datasets::uw::generate(
        &datasets::uw::UwConfig {
            students: 25,
            professors: 10,
            courses: 12,
            advised_pairs: 14,
            negatives: 28,
            evidence_prob: 1.0,
            ..datasets::uw::UwConfig::default()
        },
        11,
    );
    save_dataset(&ds, &data).expect("save dataset");
    std::fs::create_dir_all(&models).unwrap();
    std::fs::write(models.join("coauthor.model"), COAUTHOR_MODEL).unwrap();
    (data, models)
}

fn poll_job(addr: SocketAddr, id: &str, deadline: Duration) -> String {
    let t0 = Instant::now();
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let state = body
            .lines()
            .find_map(|l| l.strip_prefix("state "))
            .unwrap_or_else(|| panic!("no state line in {body:?}"))
            .to_string();
        if matches!(state.as_str(), "done" | "cancelled" | "failed") {
            return body;
        }
        assert!(
            t0.elapsed() < deadline,
            "job {id} still {state} after {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn full_server_lifecycle() {
    let (data, models) = setup_dirs("lifecycle");
    let access_log = data.parent().unwrap().join("access.jsonl");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: data.clone(),
        models_dir: models.clone(),
        threads: 4,
        access_log: Some(access_log.clone()),
        request_trace: true,
    };
    let (handle, report) = serve(&cfg).expect("server boots");
    assert_eq!(report.loaded, vec!["coauthor"]);
    assert!(report.errors.is_empty());
    let addr = handle.addr();

    // --- liveness ---
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // --- model listing ---
    let (status, body) = request(addr, "GET", "/models", "");
    assert_eq!(status, 200);
    assert!(body.contains("coauthor\tclauses=1"), "{body}");

    // --- predict, checked against the direct-evaluation oracle ---
    let mut oracle_ds = load_dataset(&data).expect("oracle load");
    let def = parse_definition(&mut oracle_ds.db, COAUTHOR_MODEL).expect("oracle model");
    let qcfg = QueryConfig::default();
    let examples: Vec<_> = oracle_ds
        .pos
        .iter()
        .chain(oracle_ds.neg.iter())
        .take(12)
        .collect();
    let mut predict_body = String::from("model coauthor\n");
    let mut expected = String::new();
    for e in &examples {
        let fields: Vec<&str> = e.args.iter().map(|&c| oracle_ds.db.const_name(c)).collect();
        predict_body.push_str(&format!("{}\n", fields.join(", ")));
        let covered = definition_covers(&oracle_ds.db, &def, e, &qcfg);
        expected.push_str(&format!(
            "{}\t{}\n",
            fields.join(","),
            if covered { "positive" } else { "negative" }
        ));
    }
    let (status, body) = request(addr, "POST", "/predict", &predict_body);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected, "server must agree with direct evaluation");
    assert!(
        body.lines().any(|l| l.ends_with("\tpositive")),
        "test data should contain at least one covered tuple:\n{body}"
    );
    assert!(
        body.lines().any(|l| l.ends_with("\tnegative")),
        "test data should contain at least one uncovered tuple:\n{body}"
    );

    // --- 8 concurrent clients see identical, correct results ---
    let concurrent_clients = 8;
    let requests_per_client = 5;
    let workers: Vec<_> = (0..concurrent_clients)
        .map(|_| {
            let predict_body = predict_body.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for _ in 0..requests_per_client {
                    let (status, body) = request(addr, "POST", "/predict", &predict_body);
                    assert_eq!(status, 200, "{body}");
                    assert_eq!(body, expected, "concurrent responses must be consistent");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("concurrent client");
    }

    // --- error paths ---
    let (status, body) = request(addr, "POST", "/predict", "model nosuch\na, b\n");
    assert_eq!(status, 404, "{body}");
    let (status, body) = request(addr, "POST", "/predict", "model coauthor\na,,b\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("empty field"), "{body}");
    let (status, body) = request(addr, "POST", "/predict", "model coauthor\n   \n");
    assert_eq!(status, 400, "{body}");
    let (status, body) = request(addr, "POST", "/predict", "model coauthor\nonly_one\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("takes 2 arguments"), "{body}");
    let (status, body) = request(addr, "GET", "/nosuch", "");
    assert_eq!(status, 404);
    assert!(
        body.contains("endpoints:"),
        "404 should list the API: {body}"
    );

    // --- request tracing: a traceparent-continued errored request is
    // tail-sampled and retrievable by its trace id ---
    let client_trace = "cafe000000000000000000000000feed";
    let traced_body = "model nosuch\na, b\n";
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "POST /predict HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\
         traceparent: 00-{client_trace}-00000000000000ab-01\r\nConnection: close\r\n\r\n",
        traced_body.len()
    );
    conn.write_all(head.as_bytes()).unwrap();
    conn.write_all(traced_body.as_bytes()).unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    assert!(
        raw.contains(&format!("x-autobias-trace-id: {client_trace}")),
        "response must echo the continued trace id: {raw}"
    );
    let (status, listing) = request(addr, "GET", "/debug/traces", "");
    assert_eq!(status, 200, "{listing}");
    assert!(listing.contains(client_trace), "{listing}");
    let (status, tree) = request(addr, "GET", &format!("/debug/traces/{client_trace}"), "");
    assert_eq!(status, 200, "{tree}");
    assert!(tree.contains("\"reason\":\"error\""), "{tree}");
    assert!(
        tree.contains("\"http.request\""),
        "root span in tree: {tree}"
    );
    let (status, chrome) = request(
        addr,
        "GET",
        &format!("/debug/traces/{client_trace}?format=chrome"),
        "",
    );
    assert_eq!(status, 200, "{chrome}");
    assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
    let (status, body) = request(addr, "GET", "/debug/traces/0000deadbeef", "");
    assert_eq!(status, 404, "{body}");

    // --- background learning job to completion ---
    let (status, body) = request(addr, "POST", "/jobs/learn", "name learned\nbias manual\n");
    assert_eq!(status, 202, "{body}");
    let id = body
        .lines()
        .find_map(|l| l.strip_prefix("id "))
        .expect("job id")
        .to_string();
    let job_trace = body
        .lines()
        .find_map(|l| l.strip_prefix("trace "))
        .expect("job trace id")
        .to_string();
    let final_status = poll_job(addr, &id, Duration::from_secs(120));
    assert!(final_status.contains("state done"), "{final_status}");
    assert!(
        final_status.contains(&format!("trace {job_trace}")),
        "{final_status}"
    );
    // The finished job's span tree (BC build, clause search) is kept
    // unconditionally in the trace store.
    let (status, job_tree) = request(addr, "GET", &format!("/debug/traces/{job_trace}"), "");
    assert_eq!(status, 200, "{job_tree}");
    assert!(job_tree.contains("\"reason\":\"job\""), "{job_tree}");
    assert!(job_tree.contains("\"learn\""), "{job_tree}");
    // The archived run report carries the same trace id.
    let (status, run_report) = request(addr, "GET", &format!("/runs/{id}"), "");
    assert_eq!(status, 200, "{run_report}");
    assert!(
        run_report.contains(&format!("\"trace_id\": \"{job_trace}\"")),
        "{run_report}"
    );
    let (_, body) = request(addr, "GET", "/models", "");
    assert!(body.contains("learned\t"), "{body}");
    assert!(models.join("learned.model").exists());
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        &predict_body.replace("coauthor", "learned"),
    );
    assert_eq!(status, 200, "{body}");
    assert!(
        body.lines().any(|l| l.ends_with("\tpositive")),
        "learned model should cover something:\n{body}"
    );

    // --- job cancellation terminates the job ---
    let (status, body) = request(
        addr,
        "POST",
        "/jobs/learn",
        "name doomed\nbias manual\nsampling full\n",
    );
    assert_eq!(status, 202, "{body}");
    let id2 = body
        .lines()
        .find_map(|l| l.strip_prefix("id "))
        .expect("job id")
        .to_string();
    let (status, _) = request(addr, "POST", &format!("/jobs/{id2}/cancel"), "");
    assert_eq!(status, 200);
    let final_status = poll_job(addr, &id2, Duration::from_secs(120));
    assert!(
        final_status.contains("state cancelled") || final_status.contains("state done"),
        "cancelled job must terminate: {final_status}"
    );
    let (status, body) = request(addr, "GET", "/jobs", "");
    assert_eq!(status, 200);
    assert_eq!(body.lines().count(), 2, "{body}");

    // --- model reload picks up a file added behind the server's back ---
    std::fs::write(
        models.join("tas.model"),
        "advisedBy(x, y) ← ta(z, x, v3), taughtBy(z, y, v3)\n",
    )
    .unwrap();
    let (status, body) = request(addr, "POST", "/models", "");
    assert_eq!(status, 200);
    assert!(body.contains("tas"), "{body}");

    // --- metrics reflect the traffic ---
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let predict_total: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("autobias_requests_total{endpoint=\"predict\"} "))
        .expect("predict counter")
        .parse()
        .unwrap();
    // 1 oracle batch + 8×5 concurrent + 4 error probes + 1 learned-model batch.
    let sent = 1 + concurrent_clients * requests_per_client + 4 + 1;
    assert!(
        predict_total >= sent as u64,
        "predict counter {predict_total} < sent {sent}"
    );
    assert!(metrics
        .contains("autobias_http_request_duration_seconds_bucket{route=\"predict\",le=\"+Inf\"}"));
    // The /metrics request itself is the one request in flight.
    assert!(
        metrics.contains("autobias_http_requests_in_flight 1"),
        "{metrics}"
    );
    // Traced predict requests leave trace-id exemplars on the latency
    // histogram (later traced requests may rotate which id a bucket holds,
    // so assert presence, not a specific id).
    assert!(
        metrics
            .contains("# EXEMPLAR autobias_http_request_duration_seconds_bucket{route=\"predict\""),
        "{metrics}"
    );
    assert!(metrics.contains("autobias_core_coverage_queries_total"));
    // coauthor + learned + tas + the cancelled job's partial "doomed" model.
    assert!(metrics.contains("autobias_models_loaded 4"), "{metrics}");
    assert!(metrics.contains("autobias_jobs_total 2"), "{metrics}");

    // --- graceful shutdown drains and stops ---
    let (status, body) = request(addr, "POST", "/shutdown", "");
    assert_eq!((status, body.as_str()), (200, "shutting down\n"));
    handle.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after shutdown"
    );

    // --- the access log carries one correlated line per request ---
    let access = std::fs::read_to_string(&access_log).expect("access log written");
    assert!(
        access
            .lines()
            .any(|l| l.contains(client_trace) && l.contains("\"route\":\"predict\"")),
        "traced predict line in access log:\n{access}"
    );
    assert!(
        access.lines().any(|l| l.contains("\"status\":404")),
        "{access}"
    );

    let _ = std::fs::remove_dir_all(data.parent().unwrap());
}
