//! Serve-side admission tests: `POST /models/{name}` uploads run the static
//! verifier and reject Error-verdict models with 422 + JSON diagnostics,
//! bumping `autobias_model_rejections_total`; directory reloads apply the
//! same bar.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias_serve::{serve, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// One-shot HTTP client: sends a request, returns `(status, headers, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).unwrap();
    conn.write_all(body.as_bytes()).unwrap();
    conn.flush().unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let (headers, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, headers, body)
}

fn setup_dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base =
        std::env::temp_dir().join(format!("autobias_admission_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let data = base.join("data");
    let models = base.join("models");
    let ds = datasets::uw::generate(
        &datasets::uw::UwConfig {
            students: 20,
            professors: 8,
            courses: 10,
            advised_pairs: 10,
            negatives: 20,
            evidence_prob: 1.0,
            ..datasets::uw::UwConfig::default()
        },
        11,
    );
    datasets::io::save_dataset(&ds, &data).expect("save dataset");
    std::fs::create_dir_all(&models).unwrap();
    (data, models)
}

fn rejections_from_metrics(addr: SocketAddr) -> u64 {
    let (status, _, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    metrics
        .lines()
        .find_map(|l| l.strip_prefix("autobias_model_rejections_total "))
        .expect("rejection counter exported")
        .parse()
        .expect("counter is a number")
}

#[test]
fn upload_admission_and_rejection() {
    if !analyze::enabled() {
        // The admission bar *is* the static verifier; under AUTOBIAS_VERIFY=0
        // (the CI reference-path matrix) uploads are deliberately accepted
        // unchecked, so there is nothing to reject here.
        return;
    }
    let (data, models) = setup_dirs("upload");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: data,
        models_dir: models.clone(),
        threads: 2,
        access_log: None,
        request_trace: true,
    };
    let (handle, report) = serve(&cfg).expect("boot");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let addr = handle.addr();

    let before = rejections_from_metrics(addr);

    // A well-formed model is admitted, persisted, and immediately servable.
    let good = "advisedBy(x, y) ← publication(z, x), publication(z, y)\n";
    let (status, headers, body) = request(addr, "POST", "/models/coauthor", good);
    assert_eq!(status, 201, "{body}");
    assert!(headers.contains("application/json"), "{headers}");
    assert!(body.contains("\"clauses\": 1"), "{body}");
    assert!(models.join("coauthor.model").exists());
    let (status, _, listing) = request(addr, "GET", "/models", "");
    assert_eq!(status, 200);
    assert!(listing.contains("coauthor"), "{listing}");
    let (status, _, pred) = request(addr, "POST", "/predict", "model coauthor\ns0,f0\n");
    assert_eq!(status, 200, "{pred}");

    // A disconnected literal is an Error finding (AB102): 422 with the JSON
    // diagnostics payload, counter bumped, nothing persisted or registered.
    let bad = "advisedBy(x, y) ← publication(z, x), publication(z, y), student(v9)\n";
    let (status, headers, body) = request(addr, "POST", "/models/broken", bad);
    assert_eq!(status, 422, "{body}");
    assert!(headers.contains("application/json"), "{headers}");
    assert!(body.contains("AB102"), "{body}");
    let json = obs::json::Json::parse(&body).expect("diagnostics payload parses");
    let errors = json.get("errors").and_then(|v| v.as_f64()).unwrap_or(0.0);
    assert!(errors >= 1.0, "{body}");
    assert!(!models.join("broken.model").exists());
    let (_, _, listing) = request(addr, "GET", "/models", "");
    assert!(!listing.contains("broken"), "{listing}");

    // Unparsable text rejects with AB101.
    let (status, _, body) = request(addr, "POST", "/models/garbled", "nosuchrel(x)\n");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("AB101"), "{body}");

    // Invalid names never reach the verifier.
    let (status, _, _) = request(addr, "POST", "/models/bad%2Fname", good);
    assert_eq!(status, 400);

    let after = rejections_from_metrics(addr);
    assert_eq!(after, before + 2, "two rejected uploads counted");

    // Directory reload applies the same bar: a corrupt file on disk is
    // skipped (with its summary as the error) and counted as a rejection.
    std::fs::write(models.join("corrupt.model"), bad).unwrap();
    let (status, _, body) = request(addr, "POST", "/models", "");
    assert_eq!(status, 200);
    assert!(body.contains("corrupt.model"), "{body}");
    assert!(body.contains("error"), "{body}");
    let (_, _, listing) = request(addr, "GET", "/models", "");
    assert!(!listing.contains("corrupt"), "{listing}");
    assert_eq!(rejections_from_metrics(addr), after + 1);

    let (status, _, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join();
}
