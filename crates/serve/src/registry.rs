//! The model registry: named learned definitions, loaded from a directory of
//! model files and shared across request threads.
//!
//! Readers grab an `Arc` snapshot of the whole name → model map under a
//! briefly-held lock and then work lock-free; `reload` builds a fresh map off
//! to the side and swaps the `Arc` in one assignment, so in-flight predict
//! requests keep the snapshot they started with (models never mutate in
//! place). Parsing uses [`autobias::clause_text::parse_definition_frozen`]:
//! the shared [`Database`] is never written, and constants unknown to the
//! data get ephemeral ids recorded on the entry.

use autobias::clause::Definition;
use autobias::clause_text::parse_definition_frozen;
use relstore::Database;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// One loaded model.
#[derive(Debug)]
pub struct ModelEntry {
    /// Registry name (the file stem, or the job-supplied name).
    pub name: String,
    /// The parsed Horn definition.
    pub definition: Definition,
    /// Constant tokens in the model text that do not occur in the data, in
    /// first-seen order. Predict requests re-resolve these in the same order
    /// so the model's ephemeral ids stay stable per request.
    pub unknown_constants: Vec<String>,
    /// Source path, when the model came from a file.
    pub source: Option<PathBuf>,
    /// Evaluation plans compiled at load time ([`plan::compile_definition`]);
    /// `None` when compilation is disabled (`AUTOBIAS_COMPILE=0`). Predict
    /// requests evaluate compiled clauses through the plans and any declined
    /// clauses through the interpreter.
    pub plan: Option<plan::CompiledDefinition>,
    /// Lock-free runtime statistics for the compiled plans, shaped like
    /// `plan` and aggregated across predict batches (EXPLAIN ANALYZE,
    /// q-error metrics). Lives and dies with the entry, so rotated models
    /// can never leak stale series.
    pub stats: Option<plan::PlanStats>,
}

impl ModelEntry {
    /// Builds an entry, compiling the definition into evaluation plans
    /// against `db` (the database requests will be answered from). Every
    /// load path — directory scan, upload, learn-job completion — goes
    /// through here, so a model is compiled exactly once per load, under
    /// the `plan.compile` span.
    pub fn new(
        db: &Database,
        name: String,
        definition: Definition,
        unknown_constants: Vec<String>,
        source: Option<PathBuf>,
    ) -> Self {
        let compiled = if plan::enabled() {
            let mut sp = obs::span!("plan.compile");
            let compiled =
                plan::compile_definition(db, &definition, &plan::CompileConfig::default());
            sp.note("compiled", compiled.num_compiled() as u64);
            sp.note("declined", compiled.num_declined() as u64);
            for (i, why) in compiled.declined() {
                obs::warn!("model {name}: clause {i} declined by plan compiler ({why}), interpreter fallback");
            }
            Some(compiled)
        } else {
            None
        };
        let stats = compiled.as_ref().map(plan::PlanStats::for_definition);
        Self {
            name,
            definition,
            unknown_constants,
            source,
            plan: compiled,
            stats,
        }
    }
}

/// Outcome of one directory scan.
#[derive(Debug, Default)]
pub struct ReloadReport {
    /// Names loaded, sorted.
    pub loaded: Vec<String>,
    /// `(file name, parse error)` pairs for files that failed; they are
    /// skipped, not fatal, so one bad file cannot take down serving.
    pub errors: Vec<(String, String)>,
}

/// Thread-shared registry of named models.
pub struct ModelRegistry {
    dir: PathBuf,
    models: RwLock<Arc<HashMap<String, Arc<ModelEntry>>>>,
}

impl ModelRegistry {
    /// Creates a registry over `dir` and performs the initial scan.
    pub fn open(db: &Database, dir: &Path) -> std::io::Result<(Self, ReloadReport)> {
        std::fs::create_dir_all(dir)?;
        let reg = Self {
            dir: dir.to_path_buf(),
            models: RwLock::new(Arc::new(HashMap::new())),
        };
        let report = reg.reload(db);
        Ok((reg, report))
    }

    /// The directory models are loaded from (and learned models saved to).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rescans the directory, replacing the whole map atomically. Model
    /// files are `*.model` or `*.txt`, one clause per line, named by stem.
    pub fn reload(&self, db: &Database) -> ReloadReport {
        let mut report = ReloadReport::default();
        let mut next: HashMap<String, Arc<ModelEntry>> = HashMap::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) => {
                report
                    .errors
                    .push((self.dir.display().to_string(), e.to_string()));
                return report;
            }
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|s| s.to_str()),
                    Some("model") | Some("txt")
                )
            })
            .collect();
        paths.sort();
        for path in paths {
            let fname = path
                .file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    report.errors.push((fname, e.to_string()));
                    continue;
                }
            };
            match parse_definition_frozen(db, &text) {
                Ok((definition, unknown_constants)) => {
                    // Same admission bar as `POST /models/{name}`: a model
                    // with Error-severity lint findings (disconnected
                    // literals, unbound head variables) does not load.
                    if analyze::enabled() {
                        let verdict = analyze::check_definition(db, &definition, None);
                        if verdict.has_errors() {
                            crate::metrics::MODEL_REJECTIONS.bump();
                            report.errors.push((fname, verdict.summary()));
                            continue;
                        }
                    }
                    let entry = ModelEntry::new(
                        db,
                        stem.to_string(),
                        definition,
                        unknown_constants,
                        Some(path.clone()),
                    );
                    // AB2xx gate: plan verification already declined any
                    // unsound plan to the interpreter, so serving `entry`
                    // would still be correct — but a verifier error means a
                    // compiler bug or tampered artifact, and the admission
                    // bar for those is the same as for AB1xx lint errors.
                    if let Some(report_) = entry
                        .plan
                        .as_ref()
                        .and_then(plan::CompiledDefinition::verify_report)
                    {
                        if report_.has_errors() {
                            crate::metrics::MODEL_REJECTIONS.bump();
                            report
                                .errors
                                .push((fname, format!("plan verification: {}", report_.summary())));
                            continue;
                        }
                    }
                    next.insert(stem.to_string(), Arc::new(entry));
                }
                Err(e) => report.errors.push((fname, e.to_string())),
            }
        }
        report.loaded = next.keys().cloned().collect();
        report.loaded.sort();
        *self.models.write().expect("registry lock poisoned") = Arc::new(next);
        report
    }

    /// Inserts (or replaces) one model, e.g. a just-learned definition.
    /// Copy-on-write: readers holding the previous snapshot are unaffected.
    pub fn insert(&self, entry: ModelEntry) {
        let mut guard = self.models.write().expect("registry lock poisoned");
        let mut next: HashMap<String, Arc<ModelEntry>> = (**guard).clone();
        next.insert(entry.name.clone(), Arc::new(entry));
        *guard = Arc::new(next);
    }

    /// Looks up one model.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.models
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// All models, sorted by name.
    pub fn list(&self) -> Vec<Arc<ModelEntry>> {
        let snapshot = self.models.read().expect("registry lock poisoned").clone();
        let mut all: Vec<Arc<ModelEntry>> = snapshot.values().cloned().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry lock poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_db() -> Database {
        let mut db = relstore::fixtures::uw_fragment();
        db.add_relation("advisedBy", &["stud", "prof"]);
        db.build_indexes();
        db
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("autobias_registry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_skips_bad_files_and_reloads() {
        let db = test_db();
        let dir = temp_dir("load");
        std::fs::write(
            dir.join("coauthor.model"),
            "advisedBy(x, y) ← publication(z, x), publication(z, y)\n",
        )
        .unwrap();
        std::fs::write(dir.join("broken.model"), "nosuchrel(x)\n").unwrap();
        std::fs::write(dir.join("notes.md"), "ignored\n").unwrap();

        let (reg, report) = ModelRegistry::open(&db, &dir).unwrap();
        assert_eq!(report.loaded, vec!["coauthor"]);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].0, "broken.model");
        assert_eq!(reg.get("coauthor").unwrap().definition.len(), 1);
        assert!(reg.get("broken").is_none());

        // A held snapshot survives a reload that removes the model.
        let held = reg.get("coauthor").unwrap();
        std::fs::remove_file(dir.join("coauthor.model")).unwrap();
        let report = reg.reload(&db);
        assert!(report.loaded.is_empty());
        assert!(reg.get("coauthor").is_none());
        assert_eq!(held.definition.len(), 1, "old snapshot still usable");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_is_copy_on_write() {
        let db = test_db();
        let dir = temp_dir("insert");
        let (reg, _) = ModelRegistry::open(&db, &dir).unwrap();
        reg.insert(ModelEntry::new(
            &db,
            "m1".into(),
            Definition::new(),
            vec![],
            None,
        ));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.list()[0].name, "m1");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_models_carry_compiled_plans() {
        let db = test_db();
        let dir = temp_dir("plans");
        std::fs::write(
            dir.join("coauthor.model"),
            "advisedBy(x, y) ← publication(z, x), publication(z, y)\n",
        )
        .unwrap();
        let (reg, report) = ModelRegistry::open(&db, &dir).unwrap();
        assert_eq!(report.loaded, vec!["coauthor"]);
        let entry = reg.get("coauthor").unwrap();
        let compiled = entry.plan.as_ref().expect("compilation on by default");
        assert_eq!(compiled.num_compiled(), 1);
        assert!(compiled.is_fully_compiled());
        std::fs::remove_dir_all(&dir).ok();
    }
}
