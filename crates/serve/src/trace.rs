//! Tail-sampled trace store behind `GET /debug/traces`.
//!
//! Every request records its span tree into an [`obs::trace::TraceCtx`];
//! keeping every tree would be wasteful, so this store samples from the
//! *tail* — a finished tree is retained only when the request is worth a
//! postmortem:
//!
//! - it **errored** (status ≥ 400),
//! - it **fell back** to the clause interpreter (a compiled plan declined),
//! - or it landed **above a rolling latency threshold** — an EWMA of recent
//!   request latencies times a multiplier, with a floor so quiet servers
//!   don't archive every request (`AUTOBIAS_TRACE_SLOW_US` pins the floor,
//!   which CI uses to force-keep requests).
//!
//! Kept traces live in a bounded in-memory deque (newest first; capacity
//! `AUTOBIAS_TRACE_CAP`, default [`TraceStore::DEFAULT_CAP`]) and, when the
//! store is opened with a directory, as JSON documents on disk — both the
//! span tree (`<trace_id>.json`) and the chrome-trace export
//! (`<trace_id>.chrome.json`, loadable in Perfetto) — pruned oldest-first
//! past `AUTOBIAS_TRACE_DISK_CAP` pairs.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use obs::json::Json;
use obs::trace::TraceTree;

/// Why a trace was kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// The request answered with status ≥ 400.
    Error,
    /// A compiled plan declined and the interpreter ran instead.
    InterpreterFallback,
    /// Latency landed above the rolling threshold.
    Slow,
    /// Kept unconditionally (learn jobs archive their tree).
    Job,
}

impl KeepReason {
    /// Stable string for JSON payloads.
    pub fn as_str(self) -> &'static str {
        match self {
            KeepReason::Error => "error",
            KeepReason::InterpreterFallback => "interpreter_fallback",
            KeepReason::Slow => "slow",
            KeepReason::Job => "job",
        }
    }
}

/// One retained trace with its request context.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// Route label (the metrics endpoint name, or `"job"`).
    pub route: &'static str,
    /// Response status (0 for job traces).
    pub status: u16,
    /// Request wall-clock latency in microseconds.
    pub latency_us: u64,
    /// Why the tail sampler kept it.
    pub reason: KeepReason,
    /// The finished span tree.
    pub tree: TraceTree,
}

/// Bounded tail-sampling trace store; one per server.
pub struct TraceStore {
    cap: usize,
    disk_cap: usize,
    dir: Option<PathBuf>,
    /// Newest first.
    entries: Mutex<VecDeque<StoredTrace>>,
    /// Trace ids written to disk, oldest first, for pruning.
    disk_files: Mutex<VecDeque<String>>,
    /// EWMA of request latency in microseconds (×[`EWMA_SCALE`] for
    /// fixed-point storage in an atomic).
    ewma_us_scaled: AtomicU64,
    /// Latency floor below which nothing is "slow".
    slow_floor_us: u64,
    kept: AtomicU64,
    observed: AtomicU64,
}

/// Fixed-point scale for the latency EWMA.
const EWMA_SCALE: u64 = 16;
/// EWMA smoothing: each observation moves the mean by 1/16 of the delta.
const EWMA_SHIFT: u32 = 4;
/// A request is "slow" at this multiple of the rolling mean.
const SLOW_MULTIPLIER: u64 = 4;

impl TraceStore {
    /// Default in-memory retention.
    pub const DEFAULT_CAP: usize = 64;
    /// Default on-disk retention (pairs of tree + chrome documents).
    pub const DEFAULT_DISK_CAP: usize = 256;
    /// Default slow floor: below this latency nothing is kept as "slow"
    /// regardless of the rolling mean.
    pub const DEFAULT_SLOW_FLOOR_US: u64 = 10_000;

    /// A store sized from the environment, optionally persisting kept
    /// traces under `dir` (created on first write).
    pub fn open(dir: Option<PathBuf>) -> Self {
        let cap = env_usize("AUTOBIAS_TRACE_CAP", Self::DEFAULT_CAP).clamp(1, 4096);
        let disk_cap = env_usize("AUTOBIAS_TRACE_DISK_CAP", Self::DEFAULT_DISK_CAP).clamp(1, 65536);
        let slow_floor_us = std::env::var("AUTOBIAS_TRACE_SLOW_US")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(Self::DEFAULT_SLOW_FLOOR_US);
        Self {
            cap,
            disk_cap,
            dir,
            entries: Mutex::new(VecDeque::new()),
            disk_files: Mutex::new(VecDeque::new()),
            ewma_us_scaled: AtomicU64::new(0),
            slow_floor_us,
            kept: AtomicU64::new(0),
            observed: AtomicU64::new(0),
        }
    }

    /// In-memory capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Traces kept so far.
    pub fn kept(&self) -> u64 {
        self.kept.load(Ordering::Relaxed)
    }

    /// Current slow threshold in microseconds: the larger of the floor and
    /// `SLOW_MULTIPLIER`× the rolling mean latency.
    pub fn slow_threshold_us(&self) -> u64 {
        let mean = self.ewma_us_scaled.load(Ordering::Relaxed) / EWMA_SCALE;
        self.slow_floor_us.max(mean.saturating_mul(SLOW_MULTIPLIER))
    }

    /// Feeds one finished request into the rolling latency estimate and
    /// decides whether its trace should be kept. Called for every request,
    /// kept or not, so the threshold tracks real traffic.
    pub fn keep_reason(
        &self,
        status: u16,
        interpreter_fallback: bool,
        latency_us: u64,
    ) -> Option<KeepReason> {
        self.observed.fetch_add(1, Ordering::Relaxed);
        let threshold = self.slow_threshold_us();
        // EWMA update after the threshold read: the request that first
        // crosses the threshold is judged against traffic before it.
        let scaled = latency_us.saturating_mul(EWMA_SCALE);
        let prev = self.ewma_us_scaled.load(Ordering::Relaxed);
        let next = if prev == 0 {
            scaled
        } else {
            // prev + (x - prev)/16, in fixed point; saturating on both ends.
            let delta = (scaled as i128 - prev as i128) >> EWMA_SHIFT;
            (prev as i128 + delta).max(0) as u64
        };
        self.ewma_us_scaled.store(next, Ordering::Relaxed);
        if status >= 400 {
            Some(KeepReason::Error)
        } else if interpreter_fallback {
            Some(KeepReason::InterpreterFallback)
        } else if latency_us >= threshold {
            Some(KeepReason::Slow)
        } else {
            None
        }
    }

    /// Retains one finished trace (already judged by
    /// [`keep_reason`](TraceStore::keep_reason), or kept unconditionally
    /// for jobs). Evicts the oldest in-memory entry past the cap and prunes
    /// on-disk documents past the disk cap.
    pub fn keep(
        &self,
        route: &'static str,
        status: u16,
        latency_us: u64,
        reason: KeepReason,
        tree: TraceTree,
    ) {
        self.kept.fetch_add(1, Ordering::Relaxed);
        let stored = StoredTrace {
            route,
            status,
            latency_us,
            reason,
            tree,
        };
        self.persist(&stored);
        let mut entries = self.entries.lock().expect("trace store poisoned");
        entries.push_front(stored);
        while entries.len() > self.cap {
            entries.pop_back();
        }
    }

    fn persist(&self, stored: &StoredTrace) {
        let Some(dir) = &self.dir else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let id = &stored.tree.trace_id;
        let tree_path = dir.join(format!("{id}.json"));
        let chrome_path = dir.join(format!("{id}.chrome.json"));
        let doc = stored_trace_json(stored).to_string();
        if std::fs::write(&tree_path, doc).is_err() {
            return;
        }
        let _ = std::fs::write(&chrome_path, stored.tree.to_chrome());
        let mut files = self.disk_files.lock().expect("trace store poisoned");
        files.push_back(id.clone());
        while files.len() > self.disk_cap {
            if let Some(old) = files.pop_front() {
                let _ = std::fs::remove_file(dir.join(format!("{old}.json")));
                let _ = std::fs::remove_file(dir.join(format!("{old}.chrome.json")));
            }
        }
    }

    /// The `GET /debug/traces` body: newest-first summaries plus the
    /// store's sampling state.
    pub fn list_json(&self) -> String {
        let entries = self.entries.lock().expect("trace store poisoned");
        let traces = entries
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("trace_id".into(), Json::Str(t.tree.trace_id.clone())),
                    ("route".into(), Json::Str(t.route.to_string())),
                    ("status".into(), Json::Num(t.status as f64)),
                    ("latency_us".into(), Json::Num(t.latency_us as f64)),
                    ("reason".into(), Json::Str(t.reason.as_str().to_string())),
                    ("spans".into(), Json::Num(t.tree.spans.len() as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("cap".into(), Json::Num(self.cap as f64)),
            ("kept".into(), Json::Num(self.kept() as f64)),
            (
                "observed".into(),
                Json::Num(self.observed.load(Ordering::Relaxed) as f64),
            ),
            (
                "slow_threshold_us".into(),
                Json::Num(self.slow_threshold_us() as f64),
            ),
            ("traces".into(), Json::Arr(traces)),
        ])
        .to_string()
    }

    /// The `GET /debug/traces/{id}` body: the stored span tree with its
    /// request context, from memory or (for evicted traces) from disk.
    /// `None` when the id was never kept or has been pruned everywhere.
    pub fn get_json(&self, trace_id: &str) -> Option<String> {
        {
            let entries = self.entries.lock().expect("trace store poisoned");
            if let Some(t) = entries.iter().find(|t| t.tree.trace_id == trace_id) {
                return Some(stored_trace_json(t).to_string());
            }
        }
        self.read_disk(trace_id, "json")
    }

    /// The `?format=chrome` body for one trace: chrome-trace JSON, from
    /// memory or disk.
    pub fn get_chrome(&self, trace_id: &str) -> Option<String> {
        {
            let entries = self.entries.lock().expect("trace store poisoned");
            if let Some(t) = entries.iter().find(|t| t.tree.trace_id == trace_id) {
                return Some(t.tree.to_chrome());
            }
        }
        self.read_disk(trace_id, "chrome.json")
    }

    fn read_disk(&self, trace_id: &str, ext: &str) -> Option<String> {
        // Ids are hex, so a path traversal cannot hide in one — but check
        // anyway: this string came off the wire.
        if !trace_id.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        let dir = self.dir.as_ref()?;
        std::fs::read_to_string(dir.join(format!("{trace_id}.{ext}"))).ok()
    }
}

/// Serializes one stored trace: request context wrapping the span tree.
fn stored_trace_json(t: &StoredTrace) -> Json {
    Json::Obj(vec![
        ("trace_id".into(), Json::Str(t.tree.trace_id.clone())),
        ("route".into(), Json::Str(t.route.to_string())),
        ("status".into(), Json::Num(t.status as f64)),
        ("latency_us".into(), Json::Num(t.latency_us as f64)),
        ("reason".into(), Json::Str(t.reason.as_str().to_string())),
        ("tree".into(), t.tree.to_json()),
    ])
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::trace::TraceCtx;

    fn tree_with_one_span(name_suffix: &'static str) -> TraceTree {
        let ctx = TraceCtx::begin(None);
        {
            let _g = ctx.install();
            let _sp = obs::span!(name_suffix);
        }
        ctx.finish()
    }

    fn fresh_store() -> TraceStore {
        TraceStore {
            cap: 4,
            disk_cap: 2,
            dir: None,
            entries: Mutex::new(VecDeque::new()),
            disk_files: Mutex::new(VecDeque::new()),
            ewma_us_scaled: AtomicU64::new(0),
            slow_floor_us: TraceStore::DEFAULT_SLOW_FLOOR_US,
            kept: AtomicU64::new(0),
            observed: AtomicU64::new(0),
        }
    }

    #[test]
    fn errors_and_fallbacks_always_keep() {
        let s = fresh_store();
        assert_eq!(s.keep_reason(500, false, 10), Some(KeepReason::Error));
        assert_eq!(s.keep_reason(422, false, 10), Some(KeepReason::Error));
        assert_eq!(
            s.keep_reason(200, true, 10),
            Some(KeepReason::InterpreterFallback)
        );
        assert_eq!(s.keep_reason(200, false, 10), None);
    }

    #[test]
    fn slow_keeps_only_above_rolling_threshold() {
        let s = fresh_store();
        // Fast traffic: never slow (under the floor).
        for _ in 0..50 {
            assert_eq!(s.keep_reason(200, false, 100), None);
        }
        // The floor dominates while the mean is tiny.
        assert_eq!(s.slow_threshold_us(), TraceStore::DEFAULT_SLOW_FLOOR_US);
        // A genuine outlier above the floor is kept.
        assert_eq!(
            s.keep_reason(200, false, 50_000),
            Some(KeepReason::Slow),
            "outlier above the floor"
        );
        // Sustained slow traffic raises the mean and thus the threshold.
        for _ in 0..200 {
            let _ = s.keep_reason(200, false, 200_000);
        }
        assert!(
            s.slow_threshold_us() > 400_000,
            "threshold tracks the mean: {}",
            s.slow_threshold_us()
        );
        assert_eq!(
            s.keep_reason(200, false, 250_000),
            None,
            "no longer an outlier once the fleet is slow"
        );
    }

    #[test]
    fn bounded_memory_and_list_get_round_trip() {
        let s = fresh_store();
        let mut ids = Vec::new();
        for _ in 0..6 {
            let tree = tree_with_one_span("test.store_span");
            ids.push(tree.trace_id.clone());
            s.keep("predict", 200, 123, KeepReason::Slow, tree);
        }
        let listed = Json::parse(&s.list_json()).unwrap();
        let traces = listed.get("traces").unwrap().as_arr().unwrap();
        assert_eq!(traces.len(), 4, "bounded to cap");
        // Newest first.
        assert_eq!(
            traces[0].get("trace_id").unwrap().as_str(),
            Some(ids[5].as_str())
        );
        // Evicted ids are gone; retained ones resolve with a parented tree.
        assert!(s.get_json(&ids[0]).is_none());
        let doc = s.get_json(&ids[5]).unwrap();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("reason").unwrap().as_str(), Some("slow"));
        let spans = parsed.path(&["tree", "spans"]).unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].get("name").unwrap().as_str(),
            Some("test.store_span")
        );
        // Chrome export for a retained trace.
        let chrome = s.get_chrome(&ids[5]).unwrap();
        assert!(chrome.contains("\"ph\":\"X\""));
    }

    #[test]
    fn disk_persistence_survives_memory_eviction_and_prunes() {
        let dir = std::env::temp_dir().join(format!(
            "autobias-trace-store-{}-{}",
            std::process::id(),
            obs::trace::new_trace_id() as u64
        ));
        let mut s = fresh_store();
        s.dir = Some(dir.clone());
        let mut ids = Vec::new();
        for _ in 0..6 {
            let tree = tree_with_one_span("test.disk_span");
            ids.push(tree.trace_id.clone());
            s.keep("predict", 500, 9, KeepReason::Error, tree);
        }
        // disk_cap = 2: only the newest two pairs remain on disk.
        let remaining: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(
            remaining.len(),
            4,
            "2 traces × (tree + chrome): {remaining:?}"
        );
        // ids[4] fell out of memory? cap=4 keeps ids[2..6]; drop them all to
        // prove the disk path serves evicted-but-persisted ids.
        s.entries.lock().unwrap().clear();
        assert!(s.get_json(&ids[5]).is_some(), "served from disk");
        assert!(s.get_chrome(&ids[5]).is_some(), "chrome from disk");
        assert!(s.get_json(&ids[0]).is_none(), "pruned from disk");
        // Hostile id never touches the filesystem.
        assert!(s.get_json("../../etc/passwd").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
