//! The serving loop: routing, the shared application state, and graceful
//! shutdown.
//!
//! One `TcpListener` accept thread feeds a bounded [`WorkerPool`]; every
//! worker shares one immutable [`Dataset`] (loaded once, behind an `Arc`),
//! the copy-on-write [`ModelRegistry`], and the [`JobManager`]. Prediction
//! never writes the database: request constants resolve through a per-request
//! [`relstore::ConstResolver`], so the whole request path is lock-free reads
//! plus atomic metric bumps. `POST /shutdown` sets a flag, wakes the accept
//! loop with a loopback connection, and the server drains: queued
//! connections finish, job threads are cancelled and joined.

use crate::access_log::{AccessLog, AccessRecord};
use crate::http::{
    finish_chunked, read_request_from, write_chunk, write_response, write_response_extra,
    write_stream_head, HttpError, Request, MAX_REQUESTS_PER_CONN,
};
use crate::jobs::{JobManager, JobSpec};
use crate::ledger::RunLedger;
use crate::metrics::{Endpoint, GaugeSample, Metrics};
use crate::pool::WorkerPool;
use crate::registry::{ModelEntry, ModelRegistry};
use crate::trace::TraceStore;
use autobias::example::parse_arg_tuple;
use autobias::query::{clause_covers_args, definition_covers_args, EvalScratch, QueryConfig};
use datasets::io::load_dataset;
use datasets::Dataset;
use relstore::ConstResolver;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8720` (port 0 for an ephemeral port).
    pub addr: String,
    /// Dataset directory in the `datasets::io` layout.
    pub data_dir: PathBuf,
    /// Directory of `*.model` files; also receives models learned by jobs.
    pub models_dir: PathBuf,
    /// Connection-handling worker threads.
    pub threads: usize,
    /// JSONL access log path (`--access-log FILE`); `None` disables.
    pub access_log: Option<PathBuf>,
    /// Per-request tracing (traceparent in, `x-autobias-trace-id` out,
    /// tail-sampled span trees). On by default; `AUTOBIAS_TRACE=0` or the
    /// bench harness turn it off to measure the untraced fast path.
    pub request_trace: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8720".to_string(),
            data_dir: PathBuf::from("data"),
            models_dir: PathBuf::from("models"),
            threads: 4,
            access_log: None,
            request_trace: std::env::var("AUTOBIAS_TRACE").map_or(true, |v| v != "0"),
        }
    }
}

struct AppState {
    ds: Arc<Dataset>,
    registry: Arc<ModelRegistry>,
    jobs: JobManager,
    ledger: Arc<RunLedger>,
    metrics: Metrics,
    slow: crate::slow::SlowRing,
    traces: Arc<TraceStore>,
    access_log: Option<AccessLog>,
    request_trace: bool,
    shutting_down: AtomicBool,
    addr: SocketAddr,
}

/// Whether /predict batches collect per-operator plan statistics
/// (`AUTOBIAS_PLAN_STATS` unset or not `"0"`; default on). Read once per
/// process — the Off path costs this one cached load per batch.
fn plan_stats_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("AUTOBIAS_PLAN_STATS").map_or(true, |v| v != "0"))
}

/// A running server; dropping the handle does not stop it — send
/// `POST /shutdown` and then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    accept_thread: JoinHandle<()>,
    state: Arc<AppState>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of models currently loaded.
    pub fn models_loaded(&self) -> usize {
        self.state.registry.len()
    }

    /// Blocks until the server has fully shut down (accept loop exited,
    /// workers drained, job threads joined).
    pub fn join(self) {
        let _ = self.accept_thread.join();
    }
}

/// Loads the dataset and models, binds, and starts serving. Returns the
/// handle plus the names of models loaded at startup and any per-file parse
/// errors (non-fatal).
pub fn serve(cfg: &ServeConfig) -> Result<(ServerHandle, crate::registry::ReloadReport), String> {
    // Per-phase aggregates power the /metrics phase histograms; the bounded
    // event buffer (Full mode) is a CLI concern, not a server one.
    obs::enable_at_least(obs::Mode::Summary);
    autobias::instrument::register();
    let ds = load_dataset(&cfg.data_dir)
        .map_err(|e| format!("loading {}: {e}", cfg.data_dir.display()))?;
    let (registry, report) = ModelRegistry::open(&ds.db, &cfg.models_dir)
        .map_err(|e| format!("models dir {}: {e}", cfg.models_dir.display()))?;
    let runs_dir = cfg.models_dir.join("runs");
    let ledger = RunLedger::open(&runs_dir, RunLedger::DEFAULT_CAP)
        .map_err(|e| format!("runs dir {}: {e}", runs_dir.display()))?;
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let access_log = match &cfg.access_log {
        Some(path) => Some(
            AccessLog::open(path.clone(), crate::access_log::DEFAULT_MAX_BYTES)
                .map_err(|e| format!("access log {}: {e}", path.display()))?,
        ),
        None => None,
    };

    let state = Arc::new(AppState {
        ds: Arc::new(ds),
        registry: Arc::new(registry),
        jobs: JobManager::new(),
        ledger: Arc::new(ledger),
        metrics: Metrics::new(),
        slow: crate::slow::SlowRing::from_env(),
        traces: Arc::new(TraceStore::open(Some(cfg.models_dir.join("traces")))),
        access_log,
        request_trace: cfg.request_trace,
        shutting_down: AtomicBool::new(false),
        addr,
    });

    let pool_state = state.clone();
    let mut pool = WorkerPool::new(
        cfg.threads,
        cfg.threads * 8,
        Arc::new(move |conn| handle_connection(&pool_state, conn)),
    );

    let accept_state = state.clone();
    let accept_thread = std::thread::Builder::new()
        .name("serve-accept".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_state.shutting_down.load(Ordering::SeqCst) {
                    break; // the waking connection (or any racer) is dropped
                }
                let Ok(conn) = conn else { continue };
                if let Err(mut rejected) = pool.dispatch(conn) {
                    let _ =
                        write_response(&mut rejected, 503, "Service Unavailable", "saturated\n");
                }
            }
            drop(listener);
            pool.shutdown(); // drains queued + in-flight requests
            accept_state.jobs.shutdown(); // cancels and joins learning jobs
        })
        .map_err(|e| e.to_string())?;

    Ok((
        ServerHandle {
            addr,
            accept_thread,
            state,
        },
        report,
    ))
}

/// RAII in-flight marker: the gauge decrements on every exit path out of
/// the request block — including a keep-alive client vanishing mid-write —
/// so `autobias_http_requests_in_flight` can never drift upward.
struct InFlightGuard<'a>(&'a Metrics);

impl<'a> InFlightGuard<'a> {
    fn new(metrics: &'a Metrics) -> Self {
        metrics.in_flight_inc();
        Self(metrics)
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight_dec();
    }
}

fn handle_connection(state: &Arc<AppState>, mut conn: TcpStream) {
    crate::metrics::HTTP_CONNECTIONS.bump();
    // The read timeout doubles as the keep-alive idle timeout: a connection
    // with no next request for 10s times out and is closed.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    // Request/response traffic is latency-bound: never let Nagle hold a
    // response back waiting for a client ACK.
    let _ = conn.set_nodelay(true);
    // Requests are read through one persistent buffered reader (a cloned
    // handle of the same socket) so bytes buffered past a request boundary
    // — the start of a pipelined next request — are not lost between
    // iterations; responses are written to the original handle.
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut served = 0usize;
    loop {
        let t_read = Instant::now();
        let req = match read_request_from(&mut reader) {
            Ok(r) => r,
            Err(HttpError::Bad(m)) => {
                state
                    .metrics
                    .observe(Endpoint::Other, t_read.elapsed(), true);
                let _ = write_response(&mut conn, 400, "Bad Request", &format!("{m}\n"));
                return;
            }
            // Client went away, or an idle keep-alive connection timed out
            // or closed cleanly between requests; nothing to say.
            Err(HttpError::Io(_)) => return,
        };
        // Latency clock starts once the request is fully read: time a
        // keep-alive connection spends idle between requests is the
        // client's, not ours.
        let t0 = Instant::now();
        if served > 0 {
            crate::metrics::KEEPALIVE_REUSES.bump();
        }
        served += 1;
        let _in_flight = InFlightGuard::new(&state.metrics);
        if req.method == "GET" && req.path.starts_with("/jobs/") && req.path.ends_with("/events") {
            // The SSE stream owns the connection until it ends, and always
            // closes (its chunked response advertises `Connection: close`).
            return handle_events_stream(state, &mut conn, &req, t0);
        }
        // Every request gets its own trace tree: continue the client's trace
        // when it sent a `traceparent`, mint a fresh id otherwise. Installing
        // the context makes every `obs::span!` below (routing, plan
        // execution) record into this request's tree.
        let trace = state.request_trace.then(|| {
            obs::trace::TraceCtx::begin(req.traceparent.as_deref().and_then(obs::parse_traceparent))
        });
        let trace_hex = trace.as_ref().map(|c| c.trace_id_hex()).unwrap_or_default();
        let trace_id = (!trace_hex.is_empty()).then_some(trace_hex.as_str());
        let r = {
            let _installed = trace.as_ref().map(|c| c.install());
            let mut root = obs::span!("http.request");
            let r = route(state, &req, trace_id);
            root.note("status", r.status as u64);
            r
        };
        let keep = req.keep_alive
            && served < MAX_REQUESTS_PER_CONN
            && r.endpoint != Endpoint::Shutdown
            && !state.shutting_down.load(Ordering::SeqCst);
        let latency = t0.elapsed();
        let latency_us = latency.as_micros() as u64;
        state
            .metrics
            .observe_traced(r.endpoint, latency, r.status >= 400, trace_id);
        let route_name = crate::metrics::endpoint_name(r.endpoint);
        // Tail sampling: the finished tree is kept only when the request is
        // worth a postmortem (error / interpreter fallback / slow outlier).
        let mut kept_reason = None;
        if let Some(ctx) = trace {
            let fallback = r.predict.as_ref().is_some_and(|p| p.interpreter_fallback);
            if let Some(reason) = state.traces.keep_reason(r.status, fallback, latency_us) {
                state
                    .traces
                    .keep(route_name, r.status, latency_us, reason, ctx.finish());
                kept_reason = Some(reason);
            }
        }
        if let Some(log) = &state.access_log {
            log.log(&AccessRecord {
                trace_id: &trace_hex,
                route: route_name,
                method: &req.method,
                path: &req.path,
                status: r.status,
                latency_us,
                model: r.predict.as_ref().map(|p| p.model.as_str()),
                engine: r.predict.as_ref().map(|p| p.engine),
                tuples: r.predict.as_ref().map(|p| p.tuples),
                plan: r.predict.as_ref().and_then(|p| p.plan),
                kept: kept_reason.map(crate::trace::KeepReason::as_str),
            });
        }
        let trace_header = [("x-autobias-trace-id", trace_hex.as_str())];
        let extra: &[(&str, &str)] = if trace_id.is_some() {
            &trace_header
        } else {
            &[]
        };
        let wrote = write_response_extra(
            &mut conn,
            r.status,
            r.reason,
            r.content_type,
            &r.body,
            keep,
            extra,
        );
        if wrote.is_err() || !keep {
            return;
        }
    }
}

/// Prediction context surfaced out of [`handle_predict`] so the connection
/// loop can correlate the access-log line and the tail sampler's keep
/// decision with what the batch actually did.
struct PredictInfo {
    model: String,
    engine: &'static str,
    tuples: u64,
    /// A compiled model's declined clauses ran through the interpreter for
    /// at least one tuple — one of the tail sampler's keep triggers.
    interpreter_fallback: bool,
    /// Plan-tally totals when stats were collected:
    /// (entries, candidates, rejected, backtracks, node-limit hits).
    plan: Option<(u64, u64, u64, u64, u64)>,
}

/// A routed response. Most routes speak `text/plain`; the model-upload
/// admission path returns its diagnostics as JSON.
struct Routed {
    endpoint: Endpoint,
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
    predict: Option<PredictInfo>,
}

impl Routed {
    fn json(endpoint: Endpoint, status: u16, reason: &'static str, body: String) -> Self {
        Self {
            endpoint,
            status,
            reason,
            content_type: "application/json",
            body,
            predict: None,
        }
    }
}

/// `GET /jobs/{id}/events`: replays the job's event log as an SSE stream
/// over chunked transfer, then follows it live until the job terminates.
/// A client hanging up mid-stream is normal operation — it bumps
/// `client_disconnects_total` and the request still counts as a success.
fn handle_events_stream(state: &Arc<AppState>, conn: &mut TcpStream, req: &Request, t0: Instant) {
    let Some(id) = parse_job_id(&req.path, "/events") else {
        state.metrics.observe(Endpoint::Events, t0.elapsed(), true);
        let _ = write_response(conn, 400, "Bad Request", "expected /jobs/{id}/events\n");
        return;
    };
    let Some(job) = state.jobs.get(id) else {
        state.metrics.observe(Endpoint::Events, t0.elapsed(), true);
        let _ = write_response(conn, 404, "Not Found", &format!("no job {id}\n"));
        return;
    };
    if write_stream_head(conn, 200, "OK", "text/event-stream").is_err() {
        state.metrics.disconnect();
        state.metrics.observe(Endpoint::Events, t0.elapsed(), false);
        return;
    }
    // Lead with the job's trace id so a watcher can correlate the stream
    // with the archived trace (`GET /debug/traces/{trace_id}`) before any
    // progress event arrives.
    let trace_frame = format!(
        "event: trace\ndata: {{\"event\":\"trace\",\"trace_id\":\"{}\"}}\n\n",
        job.trace_id
    );
    if write_chunk(conn, trace_frame.as_bytes()).is_err() {
        state.metrics.disconnect();
        state.metrics.observe(Endpoint::Events, t0.elapsed(), false);
        return;
    }
    let mut disconnected = false;
    let mut next = 0usize;
    'stream: loop {
        let batch = job.events.wait_from(next, Duration::from_millis(500));
        next = batch.next;
        if batch.missed > 0 {
            let frame = format!(
                "event: dropped\ndata: {{\"event\":\"dropped\",\"missed\":{}}}\n\n",
                batch.missed
            );
            if write_chunk(conn, frame.as_bytes()).is_err() {
                disconnected = true;
                break 'stream;
            }
        }
        for frame in &batch.frames {
            if write_chunk(conn, frame.as_bytes()).is_err() {
                disconnected = true;
                break 'stream;
            }
        }
        if batch.closed {
            break;
        }
        // Worker threads must stay joinable during drain: a stream over a
        // job the drain has not yet cancelled would otherwise block
        // `pool.shutdown()` forever.
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        if batch.frames.is_empty() {
            // SSE comment as keep-alive; also how a dead client is noticed
            // between events.
            if write_chunk(conn, b": keep-alive\n\n").is_err() {
                disconnected = true;
                break 'stream;
            }
        }
    }
    if disconnected || finish_chunked(conn).is_err() {
        state.metrics.disconnect();
    }
    state.metrics.observe(Endpoint::Events, t0.elapsed(), false);
}

const API_HELP: &str = "\
endpoints:
  GET  /healthz            liveness
  GET  /metrics            Prometheus text metrics
  GET  /models             list loaded models
  POST /models             reload models from the models directory
  POST /models/{name}      upload a model (verified; 422 + JSON diagnostics on Error findings)
  GET  /models/{name}/plan EXPLAIN the model's compiled plans as JSON (?analyze=1 adds runtime stats)
  POST /predict            body: `model NAME` then one CSV tuple per line
  GET  /debug/slow         worst-latency /predict batches (bounded ring, JSON)
  GET  /debug/traces       tail-sampled request traces (newest first, JSON)
  GET  /debug/traces/{id}  one kept span tree (?format=chrome for a chrome-trace export)
  POST /jobs/learn         start a background learning job (key value lines)
  GET  /jobs               list jobs
  GET  /jobs/{id}          poll one job (includes live progress)
  GET  /jobs/{id}/events   live progress events (SSE over chunked transfer)
  POST /jobs/{id}/cancel   cancel one job
  GET  /runs               list archived run reports
  GET  /runs/{id}          fetch one archived run report (JSON)
  POST /shutdown           drain and stop
";

fn route(state: &Arc<AppState>, req: &Request, trace_id: Option<&str>) -> Routed {
    // JSON-speaking routes are intercepted before the plain-text router:
    // model upload, plan EXPLAIN, and the debug recorders (slow ring, trace
    // store). The predict path is intercepted too so its batch context
    // (model, engine, fallback, plan totals) reaches the connection loop.
    if matches!(req.method.as_str(), "POST" | "PUT") {
        if let Some(name) = req.path.strip_prefix("/models/") {
            return handle_model_upload(state, name, &req.body);
        }
    }
    if req.method == "POST" && req.path == "/predict" {
        return match handle_predict(state, &req.body, trace_id) {
            Ok((body, info)) => Routed {
                endpoint: Endpoint::Predict,
                status: 200,
                reason: "OK",
                content_type: "text/plain; charset=utf-8",
                body,
                predict: Some(info),
            },
            Err((status, reason, body)) => Routed {
                endpoint: Endpoint::Predict,
                status,
                reason,
                content_type: "text/plain; charset=utf-8",
                body,
                predict: None,
            },
        };
    }
    if req.method == "GET" {
        if let Some(name) = req
            .path
            .strip_prefix("/models/")
            .and_then(|rest| rest.strip_suffix("/plan"))
        {
            return handle_plan(state, name, &req.query);
        }
        if req.path == "/debug/slow" {
            return Routed::json(
                Endpoint::Debug,
                200,
                "OK",
                format!("{}\n", state.slow.to_json()),
            );
        }
        if req.path == "/debug/traces" {
            return Routed::json(
                Endpoint::Debug,
                200,
                "OK",
                format!("{}\n", state.traces.list_json()),
            );
        }
        if let Some(id) = req.path.strip_prefix("/debug/traces/") {
            let chrome = req.query.split('&').any(|kv| kv == "format=chrome");
            let doc = if chrome {
                state.traces.get_chrome(id)
            } else {
                state.traces.get_json(id)
            };
            return match doc {
                Some(doc) => Routed::json(Endpoint::Debug, 200, "OK", format!("{doc}\n")),
                None => Routed::json(
                    Endpoint::Debug,
                    404,
                    "Not Found",
                    format!(
                        "{}\n",
                        obs::json::Json::Obj(vec![(
                            "error".to_string(),
                            obs::json::Json::Str(format!("no kept trace {id}")),
                        )])
                    ),
                ),
            };
        }
    }
    let (endpoint, status, reason, body) = route_text(state, req);
    Routed {
        endpoint,
        status,
        reason,
        content_type: "text/plain; charset=utf-8",
        body,
        predict: None,
    }
}

/// `POST /models/{name}`: admission-checked model upload. The body is model
/// text; it must parse, pass the static verifier with zero Error findings,
/// and its compiled plans must pass soundness verification (AB2xx) —
/// otherwise the upload is rejected with 422 and the JSON diagnostics
/// payload (and `autobias_model_rejections_total` bumps). Accepted models
/// are persisted to the models directory and inserted into the registry
/// copy-on-write, so in-flight predictions are unaffected.
fn handle_model_upload(state: &Arc<AppState>, name: &str, body: &str) -> Routed {
    if name.is_empty()
        || name.len() > 64
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Routed::json(
            Endpoint::Models,
            400,
            "Bad Request",
            format!(
                "{{\"error\": \"model name must be 1-64 chars of [A-Za-z0-9_-], got {:?}\"}}\n",
                name
            ),
        );
    }
    let (report, parsed) = analyze::check_model_source(&state.ds.db, body, None);
    let rejected = if analyze::enabled() {
        report.has_errors()
    } else {
        parsed.is_none() // parse failures reject even with the verifier off
    };
    if rejected {
        crate::metrics::MODEL_REJECTIONS.bump();
        return Routed::json(
            Endpoint::Models,
            422,
            "Unprocessable Entity",
            format!("{}\n", report.to_json()),
        );
    }
    let Some((definition, unknown_constants)) = parsed else {
        // Verifier off and unparsable was handled above; this is the
        // verifier-on, parse-ok path only.
        unreachable!("parse success required for admission");
    };
    if definition.clauses.is_empty() {
        return Routed::json(
            Endpoint::Models,
            400,
            "Bad Request",
            "{\"error\": \"model has no clauses\"}\n".to_string(),
        );
    }
    let path = state.registry.dir().join(format!("{name}.model"));
    // Compile (and verify) before persisting anything: an AB2xx verifier
    // error is rejected with the same 422 shape as the AB1xx lints above,
    // and leaves no file behind for the next reload to trip over.
    let clauses = definition.clauses.len();
    let entry = ModelEntry::new(
        &state.ds.db,
        name.to_string(),
        definition,
        unknown_constants,
        Some(path.clone()),
    );
    if let Some(verify) = entry
        .plan
        .as_ref()
        .and_then(plan::CompiledDefinition::verify_report)
    {
        if verify.has_errors() {
            crate::metrics::MODEL_REJECTIONS.bump();
            return Routed::json(
                Endpoint::Models,
                422,
                "Unprocessable Entity",
                format!("{}\n", verify.to_json()),
            );
        }
    }
    let text = if body.ends_with('\n') {
        body.to_string()
    } else {
        format!("{body}\n")
    };
    if let Err(e) = std::fs::write(&path, &text) {
        return Routed::json(
            Endpoint::Models,
            500,
            "Internal Server Error",
            format!("{{\"error\": \"persisting model: {e}\"}}\n"),
        );
    }
    state.registry.insert(entry);
    obs::info!("model {name} uploaded ({clauses} clause(s))");
    Routed::json(
        Endpoint::Models,
        201,
        "Created",
        format!(
            "{{\"name\": \"{name}\", \"clauses\": {clauses}, \"diagnostics\": {}}}\n",
            report.to_json()
        ),
    )
}

/// `GET /models/{name}/plan`: the EXPLAIN document for a loaded model —
/// per-clause access paths, probe keys, residual ops, kept variants, and
/// compile-time estimates, with declined clauses carrying their reason.
/// `?analyze=1` upgrades to EXPLAIN ANALYZE: the model's aggregated
/// per-operator runtime counters and estimate-vs-actual q-errors are folded
/// into the same document.
fn handle_plan(state: &Arc<AppState>, name: &str, query: &str) -> Routed {
    let Some(entry) = state.registry.get(name) else {
        return Routed::json(
            Endpoint::Plan,
            404,
            "Not Found",
            format!("{{\"error\": \"no model {name} (see GET /models)\"}}\n"),
        );
    };
    let want_analyze = query
        .split('&')
        .any(|kv| kv == "analyze=1" || kv == "analyze=true");
    // `plan.enabled()` is consulted here like on the predict path, so a
    // server running with AUTOBIAS_COMPILE=0 explains every clause as
    // interpreted even if the entry was compiled at load.
    let compiled = entry.plan.as_ref().filter(|_| plan::enabled());
    let snapshot = match (want_analyze, compiled, entry.stats.as_ref()) {
        (true, Some(_), Some(stats)) => Some((stats.snapshot(), stats.batches())),
        _ => None,
    };
    let analyzed = snapshot.as_ref().map(|(tally, batches)| plan::Analyzed {
        tally,
        batches: *batches,
    });
    let json = plan::explain_json(
        &state.ds.db,
        Some(name),
        &entry.definition,
        compiled,
        analyzed,
    );
    Routed::json(Endpoint::Plan, 200, "OK", format!("{json}\n"))
}

fn route_text(state: &Arc<AppState>, req: &Request) -> (Endpoint, u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (Endpoint::Healthz, 200, "OK", "ok\n".to_string()),
        ("GET", "/metrics") => {
            let draws = autobias::instrument::BC_WALK_DRAWS.get();
            let accepted = autobias::instrument::BC_WALK_ACCEPTED.get();
            let acceptance = if draws > 0 {
                accepted as f64 / draws as f64
            } else {
                0.0
            };
            let gauges = [
                GaugeSample {
                    name: "autobias_models_loaded",
                    help: "Models currently in the registry.",
                    value: state.registry.len() as f64,
                },
                GaugeSample {
                    name: "autobias_jobs_running",
                    help: "Learning jobs currently running.",
                    value: state.jobs.running_count() as f64,
                },
                GaugeSample {
                    name: "autobias_jobs_total",
                    help: "Learning jobs submitted since startup.",
                    value: state.jobs.list().len() as f64,
                },
                GaugeSample {
                    name: "autobias_dataset_tuples",
                    help: "Tuples in the resident dataset.",
                    value: state.ds.db.total_tuples() as f64,
                },
                GaugeSample {
                    name: "autobias_sampler_acceptance_ratio",
                    help: "Accepted fraction of accept-reject semijoin walk draws (0 before any Random-sampling BC build).",
                    value: acceptance,
                },
            ];
            // Per-model plan samples come from the live registry snapshot,
            // so rotated models drop out of the label set at the next
            // scrape instead of leaving stale series behind.
            let models: Vec<crate::metrics::ModelPlanSample> = state
                .registry
                .list()
                .iter()
                .filter_map(|m| {
                    m.plan.as_ref().map(|p| crate::metrics::ModelPlanSample {
                        name: m.name.clone(),
                        compiled: p.num_compiled() as u64,
                        fallback: p.num_declined() as u64,
                    })
                })
                .collect();
            (
                Endpoint::Metrics,
                200,
                "OK",
                state.metrics.render(&gauges, &models),
            )
        }
        ("GET", "/models") => {
            let mut out = String::new();
            for m in state.registry.list() {
                out.push_str(&format!(
                    "{}\tclauses={}\tunknown_constants={}\n",
                    m.name,
                    m.definition.len(),
                    m.unknown_constants.len()
                ));
            }
            (Endpoint::Models, 200, "OK", out)
        }
        ("POST", "/models") => {
            let report = state.registry.reload(&state.ds.db);
            let mut out = format!("loaded {}\n", report.loaded.join(" "));
            for (file, err) in &report.errors {
                out.push_str(&format!("error {file}: {err}\n"));
            }
            (Endpoint::Models, 200, "OK", out)
        }
        ("POST", "/jobs/learn") => {
            if state.shutting_down.load(Ordering::SeqCst) {
                return (
                    Endpoint::Jobs,
                    503,
                    "Service Unavailable",
                    "shutting down\n".to_string(),
                );
            }
            match JobSpec::parse(&req.body) {
                Ok(spec) => {
                    let job = state.jobs.spawn_learn(
                        spec,
                        state.ds.clone(),
                        state.registry.clone(),
                        Some(state.ledger.clone()),
                        Some(state.traces.clone()),
                    );
                    (
                        Endpoint::Jobs,
                        202,
                        "Accepted",
                        format!(
                            "id {}\nmodel {}\ntrace {}\n",
                            job.id, job.model_name, job.trace_id
                        ),
                    )
                }
                Err(e) => (Endpoint::Jobs, 400, "Bad Request", format!("{e}\n")),
            }
        }
        ("GET", "/jobs") => {
            let mut out = String::new();
            for job in state.jobs.list() {
                let s = job.status();
                out.push_str(&format!(
                    "{}\t{}\t{}\tclauses={}\n",
                    job.id,
                    job.model_name,
                    s.state.as_str(),
                    s.clauses
                ));
            }
            (Endpoint::Jobs, 200, "OK", out)
        }
        ("GET", path) if path.starts_with("/jobs/") => match parse_job_id(path, "") {
            Some(id) => match state.jobs.get(id) {
                Some(job) => (Endpoint::Jobs, 200, "OK", render_job(&job)),
                None => (Endpoint::Jobs, 404, "Not Found", format!("no job {id}\n")),
            },
            None => (
                Endpoint::Jobs,
                400,
                "Bad Request",
                "expected /jobs/{id}\n".to_string(),
            ),
        },
        ("POST", path) if path.starts_with("/jobs/") && path.ends_with("/cancel") => {
            match parse_job_id(path, "/cancel") {
                Some(id) => match state.jobs.get(id) {
                    Some(job) => {
                        job.cancel();
                        (Endpoint::Jobs, 200, "OK", render_job(&job))
                    }
                    None => (Endpoint::Jobs, 404, "Not Found", format!("no job {id}\n")),
                },
                None => (
                    Endpoint::Jobs,
                    400,
                    "Bad Request",
                    "expected /jobs/{id}/cancel\n".to_string(),
                ),
            }
        }
        ("GET", "/runs") => {
            let mut out = String::new();
            for id in state.ledger.list() {
                out.push_str(&format!("{id}\n"));
            }
            (Endpoint::Runs, 200, "OK", out)
        }
        ("GET", path) if path.starts_with("/runs/") => {
            match path
                .strip_prefix("/runs/")
                .and_then(|s| s.parse::<u64>().ok())
            {
                Some(id) => match state.ledger.get(id) {
                    Some(json) => (Endpoint::Runs, 200, "OK", json),
                    None => (Endpoint::Runs, 404, "Not Found", format!("no run {id}\n")),
                },
                None => (
                    Endpoint::Runs,
                    400,
                    "Bad Request",
                    "expected /runs/{id}\n".to_string(),
                ),
            }
        }
        ("POST", "/shutdown") => {
            state.shutting_down.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag; it drops this
            // throwaway connection and begins the drain.
            let _ = TcpStream::connect(state.addr);
            (Endpoint::Shutdown, 200, "OK", "shutting down\n".to_string())
        }
        _ => (
            Endpoint::Other,
            404,
            "Not Found",
            format!("no route {} {}\n{API_HELP}", req.method, req.path),
        ),
    }
}

fn parse_job_id(path: &str, suffix: &str) -> Option<u64> {
    path.strip_prefix("/jobs/")?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn render_job(job: &crate::jobs::Job) -> String {
    let s = job.status();
    let mut out = format!(
        "id {}\nmodel {}\ntrace {}\nstate {}\nclauses {}\nuncovered {}\niteration {}\nprogress {}/{}\n",
        job.id,
        job.model_name,
        job.trace_id,
        s.state.as_str(),
        s.clauses,
        s.uncovered_pos,
        s.iteration,
        s.pos_covered,
        s.pos_total
    );
    if let Some(secs) = s.elapsed_secs {
        out.push_str(&format!("elapsed {secs:.3}\n"));
    }
    if let Some(secs) = s.bc_secs {
        out.push_str(&format!("phase bc_build {secs:.3}\n"));
    }
    if let Some(secs) = s.search_secs {
        out.push_str(&format!("phase clause_search {secs:.3}\n"));
    }
    if let (Some(compiled), Some(fallback)) = (s.plan_compiled, s.plan_fallback) {
        out.push_str(&format!("plan compiled={compiled} fallback={fallback}\n"));
    }
    if !s.detail.is_empty() {
        out.push_str(&format!("detail {}\n", s.detail));
    }
    out
}

/// `POST /predict` body: a `model NAME` line, then one comma-separated tuple
/// per line. The response has one `TUPLE\tpositive|negative` line per input
/// tuple, in order.
///
/// The whole batch is parsed up front into one flat constants buffer, then
/// evaluated in one pass: through the model's compiled plans when it has
/// them (declined clauses fall back to the interpreter per tuple), else
/// entirely through the interpreter with scratch buffers reused across
/// tuples. Both paths produce byte-identical responses — the differential
/// suite holds them to that.
fn handle_predict(
    state: &Arc<AppState>,
    body: &str,
    trace_id: Option<&str>,
) -> Result<(String, PredictInfo), (u16, &'static str, String)> {
    let mut lines = body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or((
        400,
        "Bad Request",
        "empty body: expected `model NAME`\n".to_string(),
    ))?;
    let name = header
        .strip_prefix("model ")
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .ok_or((
            400,
            "Bad Request",
            format!("first line must be `model NAME`, got {header:?}\n"),
        ))?;
    let entry = state.registry.get(name).ok_or((
        404,
        "Not Found",
        format!("no model {name:?} (see GET /models)\n"),
    ))?;

    let db = &state.ds.db;
    // Re-derive the model's ephemeral constant ids: resolving its unknown
    // strings first, in first-seen order, reproduces the ids assigned when
    // the model was parsed, so a request mentioning the same out-of-data
    // string compares equal to the model's constant.
    let mut resolver = ConstResolver::new(db.dict());
    for s in &entry.unknown_constants {
        resolver.resolve(s);
    }

    let rel = entry
        .definition
        .clauses
        .first()
        .map(|c| c.head.rel)
        .unwrap_or(state.ds.target);
    let arity = db.catalog().schema(rel).arity();

    // Parse the batch: echo strings per tuple plus one flat `Const` buffer
    // with stride `arity` (no per-tuple allocation on the eval path).
    let mut echo: Vec<String> = Vec::new();
    let mut consts: Vec<relstore::Const> = Vec::new();
    for (i, line) in lines.enumerate() {
        let fields = parse_arg_tuple(line)
            .map_err(|e| (400, "Bad Request", format!("tuple {}: {e}\n", i + 1)))?;
        if fields.len() != arity {
            return Err((
                400,
                "Bad Request",
                format!(
                    "tuple {}: target takes {arity} arguments, got {}\n",
                    i + 1,
                    fields.len()
                ),
            ));
        }
        consts.extend(fields.iter().map(|f| resolver.resolve(f)));
        echo.push(fields.join(","));
    }
    if echo.is_empty() {
        return Err((
            400,
            "Bad Request",
            "no tuples: expected one CSV tuple per line after `model NAME`\n".to_string(),
        ));
    }

    let qcfg = QueryConfig::default();
    let mut verdicts = vec![false; echo.len()];
    // `plan.enabled()` is consulted at request time too, so flipping
    // `AUTOBIAS_COMPILE=0` exercises the interpreted path even against a
    // registry entry that was compiled at load.
    let compiled = entry.plan.as_ref().filter(|_| plan::enabled());
    crate::metrics::PREDICT_TUPLES.add(echo.len() as u64);
    let t_batch = Instant::now();
    let engine;
    let mut ops = crate::slow::SlowOpSummary::default();
    let mut plan_totals = None;
    let mut interpreter_fallback = false;
    if let Some(plans) = compiled {
        engine = "compiled";
        let mut sp = obs::span!("predict.compiled_batch");
        let mut scratch = EvalScratch::default();
        let mut exec = plan::ExecScratch::default();
        let mut interpreted = 0u64;
        // One plain-counter tally for the whole batch, flushed into the
        // model's atomics once at the end; with stats off the tally is
        // never built and the hot loop is the exact pre-stats code path.
        let stats = entry.stats.as_ref().filter(|_| plan_stats_enabled());
        let mut tally = stats.map(|_| plan::BatchTally::for_definition(plans));
        for (t, verdict) in verdicts.iter_mut().enumerate() {
            let args = &consts[t * arity..(t + 1) * arity];
            let mut covered = match tally.as_mut() {
                Some(tally) => plans.covers_compiled_tallied(db, args, &mut exec, tally),
                None => plans.covers_compiled_with(db, args, &mut exec),
            };
            // Clauses the compiler declined still participate in the
            // definition's disjunction — interpret them for tuples no
            // compiled clause covered.
            if !covered && !plans.is_fully_compiled() {
                interpreted += 1;
                covered = plans.declined().iter().any(|&(i, _)| {
                    clause_covers_args(
                        db,
                        &entry.definition.clauses[i],
                        rel,
                        args,
                        &qcfg,
                        &mut scratch,
                    )
                });
            }
            *verdict = covered;
        }
        sp.note("tuples", echo.len() as u64);
        crate::metrics::PREDICT_INTERPRETED_TUPLES.add(interpreted);
        interpreter_fallback = interpreted > 0;
        if let (Some(stats), Some(tally)) = (stats, tally.as_ref()) {
            stats.absorb(tally);
            let q_errors = plan::step_q_errors(plans, tally);
            for &q in &q_errors {
                crate::metrics::observe_qerror_traced(q, trace_id);
            }
            crate::metrics::PLAN_VARIANT_SELECTIONS.add(tally.multi_variant_selections());
            let totals = tally.totals();
            ops.entries = totals.entries;
            ops.candidates = totals.candidates;
            ops.rejected = totals.rejected;
            ops.backtracks = totals.backtracks;
            ops.node_limit_hits = totals.node_limit_hits;
            plan_totals = Some((
                totals.entries,
                totals.candidates,
                totals.rejected,
                totals.backtracks,
                totals.node_limit_hits,
            ));
            ops.max_qerror = q_errors
                .iter()
                .copied()
                .fold(None, |m, q| Some(m.map_or(q, |m: f64| m.max(q))));
        }
    } else {
        engine = "interpreted";
        let mut sp = obs::span!("predict.interpreted_batch");
        let mut scratch = EvalScratch::default();
        for (t, verdict) in verdicts.iter_mut().enumerate() {
            let args = &consts[t * arity..(t + 1) * arity];
            *verdict =
                definition_covers_args(db, &entry.definition, rel, args, &qcfg, &mut scratch);
        }
        sp.note("tuples", echo.len() as u64);
        crate::metrics::PREDICT_INTERPRETED_TUPLES.add(echo.len() as u64);
    }
    // Offer the batch to the slow-request flight recorder; on the common
    // path (ring full of slower batches) this is one relaxed load.
    state.slow.record(
        t_batch.elapsed().as_micros() as u64,
        name,
        engine,
        trace_id.unwrap_or(""),
        echo.len(),
        &echo[0],
        ops,
    );

    let mut out = String::with_capacity(echo.len() * 24);
    for (fields, covered) in echo.iter().zip(&verdicts) {
        out.push_str(&format!(
            "{fields}\t{}\n",
            if *covered { "positive" } else { "negative" }
        ));
    }
    let info = PredictInfo {
        model: name.to_string(),
        engine,
        tuples: echo.len() as u64,
        interpreter_fallback,
        plan: plan_totals,
    };
    Ok((out, info))
}
