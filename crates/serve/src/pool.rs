//! A bounded worker thread pool for connection handling.
//!
//! The accept loop hands each connection to the pool over a
//! [`std::sync::mpsc::sync_channel`]; when all workers are busy and the
//! queue is full, [`WorkerPool::dispatch`] returns the connection instead of
//! blocking, so the accept loop can shed load with a `503` rather than let
//! the backlog grow unboundedly. Dropping the sender during shutdown lets
//! every worker drain its queue and exit — in-flight requests complete.

use std::net::TcpStream;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Fixed-size pool of connection-handling threads.
pub struct WorkerPool {
    sender: Option<SyncSender<TcpStream>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers sharing one queue of `queue_capacity`
    /// pending connections; each connection is passed to `handler`.
    pub fn new(
        threads: usize,
        queue_capacity: usize,
        handler: Arc<dyn Fn(TcpStream) + Send + Sync>,
    ) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = sync_channel::<TcpStream>(queue_capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<TcpStream>>> = receiver.clone();
                let handler = handler.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only to dequeue; recv errors mean the
                        // sender is gone and the queue is drained — exit.
                        let conn = match receiver.lock().expect("pool lock poisoned").recv() {
                            Ok(c) => c,
                            Err(_) => break,
                        };
                        handler(conn);
                    })
                    .expect("spawning a pool worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Queues a connection. Returns the connection back when the pool is
    /// saturated (queue full) or shutting down.
    pub fn dispatch(&self, conn: TcpStream) -> Result<(), TcpStream> {
        match &self.sender {
            Some(s) => match s.try_send(conn) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(c)) | Err(TrySendError::Disconnected(c)) => Err(c),
            },
            None => Err(conn),
        }
    }

    /// Stops accepting new work and joins every worker after it drains the
    /// queue. In-flight requests finish.
    pub fn shutdown(&mut self) {
        self.sender.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_handles_connections_and_drains_on_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handled = Arc::new(AtomicUsize::new(0));
        let handled2 = handled.clone();
        let mut pool = WorkerPool::new(
            2,
            16,
            Arc::new(move |mut conn: TcpStream| {
                let mut buf = [0u8; 4];
                let _ = conn.read_exact(&mut buf);
                let _ = conn.write_all(b"pong");
                handled2.fetch_add(1, Ordering::SeqCst);
            }),
        );

        let n = 6;
        let clients: Vec<_> = (0..n)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut s = TcpStream::connect(addr).unwrap();
                    s.write_all(b"ping").unwrap();
                    let mut buf = Vec::new();
                    s.read_to_end(&mut buf).unwrap();
                    assert_eq!(buf, b"pong");
                })
            })
            .collect();
        for _ in 0..n {
            let (conn, _) = listener.accept().unwrap();
            pool.dispatch(conn).map_err(|_| "saturated").unwrap();
        }
        pool.shutdown();
        assert_eq!(handled.load(Ordering::SeqCst), n);
        for c in clients {
            c.join().unwrap();
        }
    }
}
