//! Slow-request flight recorder: a bounded, latency-ordered ring of the
//! worst `/predict` batches observed since startup, served by
//! `GET /debug/slow`.
//!
//! The recorder keeps the top [`SlowRing::cap`] batches by wall-clock
//! latency, each with enough context to reconstruct *why* it was slow:
//! which model and engine served it, how many tuples it carried, a
//! truncated sample of the first tuple's arguments, and a per-operator
//! summary of the plan tallies for that batch (entries, candidates,
//! rejections, backtracks, node-limit hits, and the worst per-step
//! q-error).
//!
//! The hot path is guarded by a lock-free floor: once the ring is full,
//! `record` first compares the batch latency against a relaxed-loaded
//! threshold (the current minimum in the ring) and returns without taking
//! the mutex for the overwhelming majority of requests that are faster
//! than everything already recorded. Only genuine top-N candidates pay the
//! short critical section.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default number of slow batches retained (override with
/// `AUTOBIAS_SLOW_CAP`).
pub const SLOW_RING_CAP: usize = 16;

/// Largest capacity `AUTOBIAS_SLOW_CAP` may request — each retained entry
/// holds strings, so the ring stays small enough to clone per scrape.
pub const SLOW_RING_CAP_MAX: usize = 1024;

/// Arguments sample is cut to this many bytes.
const ARGS_SAMPLE_MAX: usize = 120;

/// Ring capacity from the `AUTOBIAS_SLOW_CAP` environment variable, clamped
/// to `1..=`[`SLOW_RING_CAP_MAX`]; [`SLOW_RING_CAP`] when unset or
/// unparsable.
pub fn cap_from_env() -> usize {
    std::env::var("AUTOBIAS_SLOW_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, SLOW_RING_CAP_MAX))
        .unwrap_or(SLOW_RING_CAP)
}

/// One recorded slow batch.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Monotone sequence number (admission order, process-wide).
    pub seq: u64,
    /// Batch wall-clock latency in microseconds.
    pub latency_us: u64,
    /// Model that served the batch.
    pub model: String,
    /// `"compiled"` or `"interpreted"`.
    pub engine: &'static str,
    /// Trace id of the request that carried the batch (empty when the
    /// request was not traced), correlating the entry with the access log
    /// and `/debug/traces`.
    pub trace_id: String,
    /// Tuples in the batch.
    pub tuples: usize,
    /// Truncated rendering of the first tuple's arguments.
    pub args_sample: String,
    /// Plan-step entries during the batch (0 on the interpreted engine).
    pub entries: u64,
    /// Candidates scanned across all plan steps.
    pub candidates: u64,
    /// Candidates rejected by residual checks.
    pub rejected: u64,
    /// Backtracks across all clauses.
    pub backtracks: u64,
    /// Node-limit refutations.
    pub node_limit_hits: u64,
    /// Worst per-step q-error observed in the batch, if any step ran.
    pub max_qerror: Option<f64>,
}

/// Per-operator context of a batch, in the shape `record` wants — built by
/// the predict handler from its [`plan::BatchTally`] (zeroes for the
/// interpreted engine).
#[derive(Debug, Clone, Copy, Default)]
pub struct SlowOpSummary {
    /// Plan-step entries during the batch.
    pub entries: u64,
    /// Candidates scanned.
    pub candidates: u64,
    /// Candidates rejected by residual checks.
    pub rejected: u64,
    /// Backtracks.
    pub backtracks: u64,
    /// Node-limit refutations.
    pub node_limit_hits: u64,
    /// Worst per-step q-error, if any step ran.
    pub max_qerror: Option<f64>,
}

/// The bounded worst-latency ring. One per server.
#[derive(Debug)]
pub struct SlowRing {
    cap: usize,
    /// Latency of the fastest retained entry once the ring is full, for the
    /// lock-free fast reject. 0 while the ring has room.
    floor_us: AtomicU64,
    seq: AtomicU64,
    entries: Mutex<Vec<SlowEntry>>,
}

impl Default for SlowRing {
    fn default() -> Self {
        Self::with_capacity(SLOW_RING_CAP)
    }
}

impl SlowRing {
    /// An empty ring retaining the `cap` worst batches.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            cap,
            floor_us: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            entries: Mutex::new(Vec::with_capacity(cap)),
        }
    }

    /// An empty ring sized from `AUTOBIAS_SLOW_CAP` (see [`cap_from_env`]).
    pub fn from_env() -> Self {
        Self::with_capacity(cap_from_env())
    }

    /// Retention capacity of this ring.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Offers one finished batch. Cheap when the batch is faster than
    /// everything retained: one relaxed load, no lock. `trace_id` is the
    /// owning request's trace id (empty when untraced).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        latency_us: u64,
        model: &str,
        engine: &'static str,
        trace_id: &str,
        tuples: usize,
        args_sample: &str,
        ops: SlowOpSummary,
    ) {
        if latency_us <= self.floor_us.load(Ordering::Relaxed) {
            return; // ring is full and this batch is faster than all of it
        }
        let mut entries = self.entries.lock().expect("slow ring poisoned");
        // Re-check under the lock: the floor may have moved.
        if entries.len() == self.cap {
            let (min_idx, min_latency) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.latency_us)
                .map(|(i, e)| (i, e.latency_us))
                .unwrap_or((0, 0));
            if latency_us <= min_latency {
                return;
            }
            entries.swap_remove(min_idx);
        }
        let mut sample = String::with_capacity(args_sample.len().min(ARGS_SAMPLE_MAX + 1));
        for ch in args_sample.chars() {
            if sample.len() + ch.len_utf8() > ARGS_SAMPLE_MAX {
                sample.push('…');
                break;
            }
            sample.push(ch);
        }
        entries.push(SlowEntry {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            latency_us,
            model: model.to_string(),
            engine,
            trace_id: trace_id.to_string(),
            tuples,
            args_sample: sample,
            entries: ops.entries,
            candidates: ops.candidates,
            rejected: ops.rejected,
            backtracks: ops.backtracks,
            node_limit_hits: ops.node_limit_hits,
            max_qerror: ops.max_qerror,
        });
        if entries.len() == self.cap {
            let floor = entries.iter().map(|e| e.latency_us).min().unwrap_or(0);
            self.floor_us.store(floor, Ordering::Relaxed);
        }
    }

    /// Retained entries, worst latency first.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        let mut out = self.entries.lock().expect("slow ring poisoned").clone();
        out.sort_by(|a, b| b.latency_us.cmp(&a.latency_us).then(a.seq.cmp(&b.seq)));
        out
    }

    /// The `GET /debug/slow` body: a JSON array, worst first, rendered
    /// through [`obs::json::Json`] (canonical, machine-parsable).
    pub fn to_json(&self) -> String {
        use obs::json::Json;
        let arr = self
            .snapshot()
            .into_iter()
            .map(|e| {
                Json::Obj(vec![
                    ("seq".into(), Json::Num(e.seq as f64)),
                    ("latency_us".into(), Json::Num(e.latency_us as f64)),
                    ("model".into(), Json::Str(e.model)),
                    ("engine".into(), Json::Str(e.engine.to_string())),
                    ("trace_id".into(), Json::Str(e.trace_id)),
                    ("tuples".into(), Json::Num(e.tuples as f64)),
                    ("args_sample".into(), Json::Str(e.args_sample)),
                    ("entries".into(), Json::Num(e.entries as f64)),
                    ("candidates".into(), Json::Num(e.candidates as f64)),
                    ("rejected".into(), Json::Num(e.rejected as f64)),
                    ("backtracks".into(), Json::Num(e.backtracks as f64)),
                    (
                        "node_limit_hits".into(),
                        Json::Num(e.node_limit_hits as f64),
                    ),
                    (
                        "max_qerror".into(),
                        e.max_qerror.map_or(Json::Null, Json::Num),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("cap".into(), Json::Num(self.cap as f64)),
            ("slow".into(), Json::Arr(arr)),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ring: &SlowRing, latency_us: u64) {
        ring.record(
            latency_us,
            "m",
            "compiled",
            "",
            1,
            "a,b",
            SlowOpSummary::default(),
        );
    }

    #[test]
    fn keeps_worst_n_and_orders_snapshot() {
        let ring = SlowRing::with_capacity(3);
        for l in [10, 50, 20, 40, 30, 5] {
            rec(&ring, l);
        }
        let snap = ring.snapshot();
        let latencies: Vec<u64> = snap.iter().map(|e| e.latency_us).collect();
        assert_eq!(latencies, vec![50, 40, 30]);
    }

    #[test]
    fn fast_reject_floor_engages_when_full() {
        let ring = SlowRing::with_capacity(2);
        rec(&ring, 100);
        rec(&ring, 200);
        assert_eq!(ring.floor_us.load(Ordering::Relaxed), 100);
        rec(&ring, 50); // below the floor: rejected without changing the ring
        assert_eq!(ring.snapshot().len(), 2);
        rec(&ring, 150);
        assert_eq!(ring.floor_us.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn truncates_args_sample_and_renders_json() {
        let ring = SlowRing::with_capacity(2);
        let long = "x".repeat(500);
        ring.record(
            9,
            "uw",
            "compiled",
            "cafe0000000000000000000000000002",
            3,
            &long,
            SlowOpSummary {
                entries: 4,
                candidates: 12,
                rejected: 2,
                backtracks: 1,
                node_limit_hits: 0,
                max_qerror: Some(2.5),
            },
        );
        let snap = ring.snapshot();
        assert!(snap[0].args_sample.chars().count() <= ARGS_SAMPLE_MAX + 1);
        assert!(snap[0].args_sample.ends_with('…'));

        let json = ring.to_json();
        let parsed = obs::json::Json::parse(&json).unwrap();
        assert_eq!(parsed.to_string(), json, "canonical rendering");
        let slow = parsed.get("slow").unwrap().as_arr().unwrap();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].get("model").unwrap().as_str(), Some("uw"));
        assert_eq!(
            slow[0].get("trace_id").unwrap().as_str(),
            Some("cafe0000000000000000000000000002")
        );
        assert_eq!(slow[0].get("max_qerror").unwrap().as_f64(), Some(2.5));
        assert_eq!(slow[0].get("candidates").unwrap().as_f64(), Some(12.0));
    }

    /// `AUTOBIAS_SLOW_CAP` sizes the ring, clamped to a sane range; unset
    /// or garbage falls back to the default. (Env mutation is process-wide,
    /// so every case runs inside this one test.)
    #[test]
    fn cap_comes_from_env_clamped() {
        let key = "AUTOBIAS_SLOW_CAP";
        let prev = std::env::var(key).ok();
        std::env::remove_var(key);
        assert_eq!(cap_from_env(), SLOW_RING_CAP);
        std::env::set_var(key, "64");
        assert_eq!(cap_from_env(), 64);
        assert_eq!(SlowRing::from_env().cap(), 64);
        std::env::set_var(key, "0");
        assert_eq!(cap_from_env(), 1, "clamped up");
        std::env::set_var(key, "9999999");
        assert_eq!(cap_from_env(), SLOW_RING_CAP_MAX, "clamped down");
        std::env::set_var(key, "not-a-number");
        assert_eq!(cap_from_env(), SLOW_RING_CAP);
        match prev {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
    }
}
