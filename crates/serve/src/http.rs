//! A deliberately small HTTP/1.1 layer: enough to parse one request from a
//! `TcpStream` and write one response, nothing more. The server speaks
//! `Connection: close` (one request per connection); responses are either a
//! fixed `Content-Length` body or — for the live event stream — a
//! `Transfer-Encoding: chunked` sequence written incrementally
//! ([`write_stream_head`] / [`write_chunk`] / [`finish_chunked`], with the
//! client-side [`ChunkedReader`] used by `autobias jobs watch`). This keeps
//! the whole protocol auditable and dependency-free — the same idiom as the
//! rest of the workspace.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted header block.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path component only (query strings are not used by this API).
    pub path: String,
    /// Decoded body (empty when absent).
    pub body: String,
}

/// Protocol-level failures while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// Socket error or premature close.
    Io(io::Error),
    /// Malformed request line / headers / body.
    Bad(String),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Bad(m) => write!(f, "bad request: {m}"),
        }
    }
}

/// Reads one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    let mut line = String::new();

    // Request line + headers, terminated by an empty line.
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(HttpError::Bad("connection closed mid-headers".into()));
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::Bad("header block too large".into()));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }

    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Bad("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Bad("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Bad("missing request target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    for h in lines {
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Bad("unparsable Content-Length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::Bad(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    let mut body_bytes = vec![0u8; content_length];
    reader.read_exact(&mut body_bytes)?;
    let body = String::from_utf8(body_bytes)
        .map_err(|_| HttpError::Bad("body is not valid UTF-8".into()))?;

    Ok(Request { method, path, body })
}

/// Writes one `text/plain` response and flushes.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> io::Result<()> {
    write_response_typed(stream, status, reason, "text/plain; charset=utf-8", body)
}

/// Writes one response with an explicit content type and flushes — the
/// JSON-producing routes (model upload diagnostics) use this.
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Starts a streaming response: status line and headers with
/// `Transfer-Encoding: chunked` (no `Content-Length`). Follow with
/// [`write_chunk`] calls and one [`finish_chunked`].
pub fn write_stream_head(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\n\
         Cache-Control: no-cache\r\n\
         Connection: close\r\n\
         \r\n"
    );
    w.write_all(head.as_bytes())?;
    w.flush()
}

/// Writes one non-empty chunk (hex size, CRLF, data, CRLF) and flushes so
/// stream consumers see events as they happen. Empty data is skipped — a
/// zero-length chunk would terminate the stream.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked stream (the zero chunk).
pub fn finish_chunked(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Client-side status line + headers of one response; leaves the reader
/// positioned at the body. Returns the status code and lowercased
/// `name: value` header pairs.
pub fn read_response_head(r: &mut impl BufRead) -> io::Result<(u16, Vec<(String, String)>)> {
    let mut line = String::new();
    r.read_line(&mut line)?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok((status, headers))
}

/// Client-side reader of a `Transfer-Encoding: chunked` body, yielding one
/// decoded chunk at a time so a watcher can render events as they arrive.
pub struct ChunkedReader<R> {
    inner: R,
    done: bool,
}

impl<R: BufRead> ChunkedReader<R> {
    /// Wraps a reader positioned at the start of the chunked body.
    pub fn new(inner: R) -> Self {
        Self { inner, done: false }
    }

    /// Reads the next chunk; `Ok(None)` after the terminating zero chunk.
    pub fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.done {
            return Ok(None);
        }
        let mut size_line = String::new();
        if self.inner.read_line(&mut size_line)? == 0 {
            // Peer closed without the zero chunk (e.g. server shutdown
            // mid-stream); treat as end of stream.
            self.done = true;
            return Ok(None);
        }
        let size_str = size_line.trim().split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad chunk size {size_line:?}"),
            )
        })?;
        if size > MAX_BODY_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("chunk of {size} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
            ));
        }
        let mut data = vec![0u8; size];
        self.inner.read_exact(&mut data)?;
        let mut crlf = [0u8; 2];
        self.inner.read_exact(&mut crlf)?;
        if size == 0 {
            self.done = true;
            return Ok(None);
        }
        Ok(Some(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn roundtrip(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.flush().unwrap();
            // Keep the stream open until the server has parsed it.
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        drop(conn);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req =
            roundtrip("POST /predict HTTP/1.1\r\nContent-Length: 11\r\n\r\nmodel m\na,b").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, "model m\na,b");
    }

    #[test]
    fn strips_query_string_from_path() {
        let req = roundtrip("GET /models?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/models");
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let err =
            roundtrip("POST /predict HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Bad(_)));
    }

    #[test]
    fn chunked_writer_and_reader_roundtrip() {
        let mut wire = Vec::new();
        write_stream_head(&mut wire, 200, "OK", "text/event-stream").unwrap();
        write_chunk(&mut wire, b"event: a\ndata: {}\n\n").unwrap();
        write_chunk(&mut wire, b"").unwrap(); // skipped, must not terminate
        write_chunk(&mut wire, "event: b\ndata: {\"n\":1}\n\n".as_bytes()).unwrap();
        finish_chunked(&mut wire).unwrap();

        let mut r = std::io::BufReader::new(&wire[..]);
        let (status, headers) = read_response_head(&mut r).unwrap();
        assert_eq!(status, 200);
        assert!(headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && v == "chunked"));
        assert!(headers
            .iter()
            .any(|(n, v)| n == "content-type" && v == "text/event-stream"));

        let mut chunks = ChunkedReader::new(r);
        assert_eq!(
            chunks.next_chunk().unwrap().as_deref(),
            Some(b"event: a\ndata: {}\n\n".as_slice())
        );
        assert_eq!(
            chunks.next_chunk().unwrap().as_deref(),
            Some("event: b\ndata: {\"n\":1}\n\n".as_bytes())
        );
        assert_eq!(chunks.next_chunk().unwrap(), None);
        assert_eq!(chunks.next_chunk().unwrap(), None, "stays done");
    }

    #[test]
    fn chunked_reader_handles_abrupt_close_and_garbage() {
        // Abrupt close (no zero chunk) ends the stream cleanly.
        let wire = b"5\r\nhello\r\n";
        let mut chunks = ChunkedReader::new(std::io::BufReader::new(&wire[..]));
        assert_eq!(
            chunks.next_chunk().unwrap().as_deref(),
            Some(b"hello".as_slice())
        );
        assert_eq!(chunks.next_chunk().unwrap(), None);

        // A non-hex size line is an error, not a hang.
        let wire = b"zzz\r\n";
        let mut chunks = ChunkedReader::new(std::io::BufReader::new(&wire[..]));
        assert!(chunks.next_chunk().is_err());
    }
}
