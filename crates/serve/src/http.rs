//! A deliberately small HTTP/1.1 layer: enough to parse requests from a
//! `TcpStream` and write responses, nothing more. Connections are
//! persistent by default (HTTP/1.1 keep-alive semantics, honoring the
//! `Connection` header, with at most [`MAX_REQUESTS_PER_CONN`] requests per
//! connection); the server reads successive requests through one
//! per-connection `BufReader` via [`read_request_from`] so bytes buffered
//! past a request boundary are not lost. Responses are either a fixed
//! `Content-Length` body or — for the live event stream — a
//! `Transfer-Encoding: chunked` sequence written incrementally
//! ([`write_stream_head`] / [`write_chunk`] / [`finish_chunked`], with the
//! client-side [`ChunkedReader`] used by `autobias jobs watch`; streams
//! always end with connection close). This keeps the whole protocol
//! auditable and dependency-free — the same idiom as the rest of the
//! workspace.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Largest accepted header block.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Requests served on one keep-alive connection before the server closes it
/// anyway — bounds how long a single client can pin a worker thread.
pub const MAX_REQUESTS_PER_CONN: usize = 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path component only, query string stripped.
    pub path: String,
    /// Raw query string without the leading `?` (empty when absent).
    pub query: String,
    /// Decoded body (empty when absent).
    pub body: String,
    /// Whether the client allows reusing the connection: HTTP/1.1 default
    /// unless `Connection: close`; HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
    /// Raw `traceparent` header value, if the client sent one (W3C Trace
    /// Context). Parsed later by `obs::trace::parse_traceparent`.
    pub traceparent: Option<String>,
}

/// Protocol-level failures while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// Socket error or premature close.
    Io(io::Error),
    /// Malformed request line / headers / body.
    Bad(String),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Bad(m) => write!(f, "bad request: {m}"),
        }
    }
}

/// Reads one request from `stream`. One-shot convenience (tests, simple
/// clients): the internal buffer dies with the call, so use
/// [`read_request_from`] with a persistent `BufReader` when more requests
/// may follow on the same connection.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    read_request_from(&mut reader)
}

/// Reads one request from a persistent buffered reader — the keep-alive
/// form. `Err(Io(UnexpectedEof))` on a cleanly closed idle connection.
pub fn read_request_from(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut head = String::new();
    let mut line = String::new();

    // Request line + headers, terminated by an empty line.
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            if head.is_empty() {
                // Clean close between keep-alive requests: an i/o-level end
                // of stream, not a malformed request.
                return Err(HttpError::Io(io::Error::from(io::ErrorKind::UnexpectedEof)));
            }
            return Err(HttpError::Bad("connection closed mid-headers".into()));
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::Bad("header block too large".into()));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }

    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Bad("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Bad("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Bad("missing request target".into()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    // HTTP/1.1 (and anything newer/absent) defaults to persistent
    // connections; HTTP/1.0 defaults to close.
    let mut keep_alive = !parts
        .next()
        .is_some_and(|v| v.eq_ignore_ascii_case("HTTP/1.0"));

    let mut content_length = 0usize;
    let mut traceparent = None;
    for h in lines {
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Bad("unparsable Content-Length".into()))?;
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("traceparent") {
                traceparent = Some(value.trim().to_string());
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::Bad(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    let mut body_bytes = vec![0u8; content_length];
    reader.read_exact(&mut body_bytes)?;
    let body = String::from_utf8(body_bytes)
        .map_err(|_| HttpError::Bad("body is not valid UTF-8".into()))?;

    Ok(Request {
        method,
        path,
        query,
        body,
        keep_alive,
        traceparent,
    })
}

/// Writes one `text/plain` response and flushes.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> io::Result<()> {
    write_response_typed(stream, status, reason, "text/plain; charset=utf-8", body)
}

/// Writes one response with an explicit content type and flushes — the
/// JSON-producing routes (model upload diagnostics) use this. Always closes
/// the connection; the server's request loop uses [`write_response_conn`].
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write_response_conn(stream, status, reason, content_type, body, false)
}

/// Writes one response, advertising whether the server will keep the
/// connection open for another request (`Connection: keep-alive`) or close
/// it after this response (`Connection: close`).
pub fn write_response_conn(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_extra(stream, status, reason, content_type, body, keep_alive, &[])
}

/// [`write_response_conn`] with additional response headers — the server
/// uses this to stamp `x-autobias-trace-id` on every routed response.
/// Header names and values must be pre-sanitized (no CR/LF).
#[allow(clippy::too_many_arguments)]
pub fn write_response_extra(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // Head and body go out in one write: a split write puts the tiny head
    // packet on the wire alone, and Nagle then holds the body back until the
    // client ACKs it — up to 40 ms per response under delayed ACK.
    let mut response = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra {
        response.push_str(name);
        response.push_str(": ");
        response.push_str(value);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Starts a streaming response: status line and headers with
/// `Transfer-Encoding: chunked` (no `Content-Length`). Follow with
/// [`write_chunk`] calls and one [`finish_chunked`].
pub fn write_stream_head(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\n\
         Cache-Control: no-cache\r\n\
         Connection: close\r\n\
         \r\n"
    );
    w.write_all(head.as_bytes())?;
    w.flush()
}

/// Writes one non-empty chunk (hex size, CRLF, data, CRLF) and flushes so
/// stream consumers see events as they happen. Empty data is skipped — a
/// zero-length chunk would terminate the stream.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked stream (the zero chunk).
pub fn finish_chunked(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Client-side status line + headers of one response; leaves the reader
/// positioned at the body. Returns the status code and lowercased
/// `name: value` header pairs.
pub fn read_response_head(r: &mut impl BufRead) -> io::Result<(u16, Vec<(String, String)>)> {
    let mut line = String::new();
    r.read_line(&mut line)?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok((status, headers))
}

/// Client-side reader of a `Transfer-Encoding: chunked` body, yielding one
/// decoded chunk at a time so a watcher can render events as they arrive.
pub struct ChunkedReader<R> {
    inner: R,
    done: bool,
}

impl<R: BufRead> ChunkedReader<R> {
    /// Wraps a reader positioned at the start of the chunked body.
    pub fn new(inner: R) -> Self {
        Self { inner, done: false }
    }

    /// Reads the next chunk; `Ok(None)` after the terminating zero chunk.
    pub fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.done {
            return Ok(None);
        }
        let mut size_line = String::new();
        if self.inner.read_line(&mut size_line)? == 0 {
            // Peer closed without the zero chunk (e.g. server shutdown
            // mid-stream); treat as end of stream.
            self.done = true;
            return Ok(None);
        }
        let size_str = size_line.trim().split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad chunk size {size_line:?}"),
            )
        })?;
        if size > MAX_BODY_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("chunk of {size} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
            ));
        }
        let mut data = vec![0u8; size];
        self.inner.read_exact(&mut data)?;
        let mut crlf = [0u8; 2];
        self.inner.read_exact(&mut crlf)?;
        if size == 0 {
            self.done = true;
            return Ok(None);
        }
        Ok(Some(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;
    use std::thread;

    fn roundtrip(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.flush().unwrap();
            // Keep the stream open until the server has parsed it.
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        drop(conn);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req =
            roundtrip("POST /predict HTTP/1.1\r\nContent-Length: 11\r\n\r\nmodel m\na,b").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, "model m\na,b");
    }

    #[test]
    fn strips_query_string_from_path() {
        let req = roundtrip("GET /models?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/models");
        assert_eq!(req.query, "verbose=1");

        let req = roundtrip("GET /models HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query, "");
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        // HTTP/1.1 defaults to persistent.
        let req = roundtrip("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.keep_alive);
        // ... unless the client asks to close.
        let req = roundtrip("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        // HTTP/1.0 defaults to close ...
        let req = roundtrip("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        // ... unless the client opts in.
        let req = roundtrip("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn persistent_reader_parses_back_to_back_requests() {
        let wire = b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /b HTTP/1.1\r\n\r\n";
        let mut reader = std::io::BufReader::new(&wire[..]);
        let first = read_request_from(&mut reader).unwrap();
        assert_eq!((first.path.as_str(), first.body.as_str()), ("/a", "hi"));
        let second = read_request_from(&mut reader).unwrap();
        assert_eq!(second.path, "/b");
        assert!(second.body.is_empty());
        // Clean close between requests surfaces as an i/o EOF, not Bad.
        match read_request_from(&mut reader).unwrap_err() {
            HttpError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            HttpError::Bad(m) => panic!("expected Io(UnexpectedEof), got Bad({m})"),
        }
    }

    #[test]
    fn response_writer_advertises_connection_disposition() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            write_response_conn(&mut conn, 200, "OK", "text/plain", "ok", true).unwrap();
        });
        let s = TcpStream::connect(addr).unwrap();
        let mut r = std::io::BufReader::new(s);
        let (status, headers) = read_response_head(&mut r).unwrap();
        assert_eq!(status, 200);
        assert!(headers
            .iter()
            .any(|(n, v)| n == "connection" && v == "keep-alive"));
        server.join().unwrap();
    }

    #[test]
    fn captures_traceparent_header() {
        let req = roundtrip(
            "GET /healthz HTTP/1.1\r\n\
             Traceparent: 00-0123456789abcdef0123456789abcdef-00000000deadbeef-01\r\n\r\n",
        )
        .unwrap();
        assert_eq!(
            req.traceparent.as_deref(),
            Some("00-0123456789abcdef0123456789abcdef-00000000deadbeef-01")
        );
        let req = roundtrip("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.traceparent, None);
    }

    #[test]
    fn extra_headers_reach_the_client() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            write_response_extra(
                &mut conn,
                200,
                "OK",
                "text/plain",
                "ok",
                true,
                &[("x-autobias-trace-id", "abc123")],
            )
            .unwrap();
        });
        let s = TcpStream::connect(addr).unwrap();
        let mut r = std::io::BufReader::new(s);
        let (status, headers) = read_response_head(&mut r).unwrap();
        assert_eq!(status, 200);
        assert!(headers
            .iter()
            .any(|(n, v)| n == "x-autobias-trace-id" && v == "abc123"));
        let mut body = String::new();
        r.read_to_string(&mut body).unwrap();
        assert_eq!(body, "ok");
        server.join().unwrap();
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let err =
            roundtrip("POST /predict HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Bad(_)));
    }

    #[test]
    fn chunked_writer_and_reader_roundtrip() {
        let mut wire = Vec::new();
        write_stream_head(&mut wire, 200, "OK", "text/event-stream").unwrap();
        write_chunk(&mut wire, b"event: a\ndata: {}\n\n").unwrap();
        write_chunk(&mut wire, b"").unwrap(); // skipped, must not terminate
        write_chunk(&mut wire, "event: b\ndata: {\"n\":1}\n\n".as_bytes()).unwrap();
        finish_chunked(&mut wire).unwrap();

        let mut r = std::io::BufReader::new(&wire[..]);
        let (status, headers) = read_response_head(&mut r).unwrap();
        assert_eq!(status, 200);
        assert!(headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && v == "chunked"));
        assert!(headers
            .iter()
            .any(|(n, v)| n == "content-type" && v == "text/event-stream"));

        let mut chunks = ChunkedReader::new(r);
        assert_eq!(
            chunks.next_chunk().unwrap().as_deref(),
            Some(b"event: a\ndata: {}\n\n".as_slice())
        );
        assert_eq!(
            chunks.next_chunk().unwrap().as_deref(),
            Some("event: b\ndata: {\"n\":1}\n\n".as_bytes())
        );
        assert_eq!(chunks.next_chunk().unwrap(), None);
        assert_eq!(chunks.next_chunk().unwrap(), None, "stays done");
    }

    #[test]
    fn chunked_reader_handles_abrupt_close_and_garbage() {
        // Abrupt close (no zero chunk) ends the stream cleanly.
        let wire = b"5\r\nhello\r\n";
        let mut chunks = ChunkedReader::new(std::io::BufReader::new(&wire[..]));
        assert_eq!(
            chunks.next_chunk().unwrap().as_deref(),
            Some(b"hello".as_slice())
        );
        assert_eq!(chunks.next_chunk().unwrap(), None);

        // A non-hex size line is an error, not a hang.
        let wire = b"zzz\r\n";
        let mut chunks = ChunkedReader::new(std::io::BufReader::new(&wire[..]));
        assert!(chunks.next_chunk().is_err());
    }
}
