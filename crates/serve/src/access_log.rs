//! Structured JSONL access log with size-capped rotation.
//!
//! `autobias serve --access-log FILE` appends one JSON object per finished
//! request — trace id, route, method, path, status, latency, and (for
//! predictions) the model, engine, and plan-tally totals — so a slow or
//! failing request found in the log correlates directly with its stored
//! trace (`GET /debug/traces/{trace_id}`) and the `/metrics` exemplars by
//! trace id.
//!
//! Rotation is deliberately simple: when the current file would exceed the
//! size cap, it is renamed to `FILE.1` (replacing any previous `.1`) and a
//! fresh file is started — at most two generations on disk, bounded space,
//! no background thread. Lines render through [`obs::json::Json`], so
//! escaping is exactly the workspace's canonical JSON escaping and every
//! line parses back with the same module.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

use obs::json::Json;

/// Default rotation threshold.
pub const DEFAULT_MAX_BYTES: u64 = 16 * 1024 * 1024;

/// One request's worth of access-log context.
#[derive(Debug, Clone, Default)]
pub struct AccessRecord<'a> {
    /// Trace id (32 hex digits; empty when tracing is off).
    pub trace_id: &'a str,
    /// Route label (the metrics endpoint name).
    pub route: &'a str,
    /// HTTP method.
    pub method: &'a str,
    /// Request path.
    pub path: &'a str,
    /// Response status.
    pub status: u16,
    /// Wall-clock latency in microseconds.
    pub latency_us: u64,
    /// Model that served a prediction, if this was one.
    pub model: Option<&'a str>,
    /// `"compiled"` or `"interpreted"`, for predictions.
    pub engine: Option<&'static str>,
    /// Tuples in a prediction batch.
    pub tuples: Option<u64>,
    /// Plan-tally totals for a compiled prediction:
    /// (entries, candidates, rejected, backtracks, node-limit hits).
    pub plan: Option<(u64, u64, u64, u64, u64)>,
    /// Tail-sampler verdict (`"error"`, `"slow"`, …) when the trace was
    /// kept.
    pub kept: Option<&'static str>,
}

impl AccessRecord<'_> {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut m = vec![
            ("trace_id".to_string(), Json::Str(self.trace_id.to_string())),
            ("route".to_string(), Json::Str(self.route.to_string())),
            ("method".to_string(), Json::Str(self.method.to_string())),
            ("path".to_string(), Json::Str(self.path.to_string())),
            ("status".to_string(), Json::Num(self.status as f64)),
            ("latency_us".to_string(), Json::Num(self.latency_us as f64)),
        ];
        if let Some(model) = self.model {
            m.push(("model".to_string(), Json::Str(model.to_string())));
        }
        if let Some(engine) = self.engine {
            m.push(("engine".to_string(), Json::Str(engine.to_string())));
        }
        if let Some(tuples) = self.tuples {
            m.push(("tuples".to_string(), Json::Num(tuples as f64)));
        }
        if let Some((entries, candidates, rejected, backtracks, node_limit_hits)) = self.plan {
            m.push((
                "plan".to_string(),
                Json::Obj(vec![
                    ("entries".to_string(), Json::Num(entries as f64)),
                    ("candidates".to_string(), Json::Num(candidates as f64)),
                    ("rejected".to_string(), Json::Num(rejected as f64)),
                    ("backtracks".to_string(), Json::Num(backtracks as f64)),
                    (
                        "node_limit_hits".to_string(),
                        Json::Num(node_limit_hits as f64),
                    ),
                ]),
            ));
        }
        if let Some(kept) = self.kept {
            m.push(("kept".to_string(), Json::Str(kept.to_string())));
        }
        Json::Obj(m).to_string()
    }
}

struct LogFile {
    file: File,
    written: u64,
}

/// Append-only JSONL writer with two-generation size-capped rotation.
pub struct AccessLog {
    path: PathBuf,
    max_bytes: u64,
    inner: Mutex<Option<LogFile>>,
}

impl AccessLog {
    /// Opens (appending) the log at `path`, rotating when a write would
    /// push it past `max_bytes`.
    pub fn open(path: PathBuf, max_bytes: u64) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(Self {
            path,
            max_bytes: max_bytes.max(1024),
            inner: Mutex::new(Some(LogFile { file, written })),
        })
    }

    /// Path of the rotated generation (`FILE.1`).
    fn rotated_path(&self) -> PathBuf {
        let mut name = self
            .path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".1");
        self.path.with_file_name(name)
    }

    /// Appends one record as a JSON line. Errors are swallowed after
    /// disabling the writer — logging must never take the serving path
    /// down.
    pub fn log(&self, record: &AccessRecord<'_>) {
        let mut line = record.to_json();
        line.push('\n');
        let mut guard = self.inner.lock().expect("access log poisoned");
        let Some(lf) = guard.as_mut() else {
            return;
        };
        if lf.written + line.len() as u64 > self.max_bytes {
            // Rotate: current → .1 (clobbering), fresh current.
            let rotated = self.rotated_path();
            let _ = std::fs::rename(&self.path, &rotated);
            match OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
            {
                Ok(file) => *lf = LogFile { file, written: 0 },
                Err(_) => {
                    *guard = None;
                    return;
                }
            }
        }
        if lf.file.write_all(line.as_bytes()).is_err() {
            *guard = None;
            return;
        }
        lf.written += line.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "autobias-access-{tag}-{}-{}.jsonl",
            std::process::id(),
            obs::trace::new_trace_id() as u64
        ))
    }

    #[test]
    fn lines_carry_context_and_parse_back() {
        let path = temp_path("basic");
        let log = AccessLog::open(path.clone(), DEFAULT_MAX_BYTES).unwrap();
        log.log(&AccessRecord {
            trace_id: "cafe0000000000000000000000000003",
            route: "predict",
            method: "POST",
            path: "/predict",
            status: 200,
            latency_us: 742,
            model: Some("uw_coauthor"),
            engine: Some("compiled"),
            tuples: Some(3),
            plan: Some((4, 12, 2, 1, 0)),
            kept: Some("slow"),
        });
        log.log(&AccessRecord {
            trace_id: "",
            route: "healthz",
            method: "GET",
            path: "/healthz",
            status: 200,
            latency_us: 12,
            ..Default::default()
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("trace_id").unwrap().as_str(),
            Some("cafe0000000000000000000000000003")
        );
        assert_eq!(first.get("model").unwrap().as_str(), Some("uw_coauthor"));
        assert_eq!(
            first.path(&["plan", "candidates"]).unwrap().as_f64(),
            Some(12.0)
        );
        assert_eq!(first.get("kept").unwrap().as_str(), Some("slow"));
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("route").unwrap().as_str(), Some("healthz"));
        assert!(second.get("model").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rotation_caps_disk_at_two_generations() {
        let path = temp_path("rotate");
        // max_bytes floors at 1024; each line below is ~120 bytes, so
        // rotation triggers every ~8 lines.
        let log = AccessLog::open(path.clone(), 1024).unwrap();
        for i in 0..100 {
            log.log(&AccessRecord {
                trace_id: "ffff0000000000000000000000000000",
                route: "predict",
                method: "POST",
                path: "/predict",
                status: 200,
                latency_us: i,
                ..Default::default()
            });
        }
        let rotated = {
            let mut name = path.file_name().unwrap().to_os_string();
            name.push(".1");
            path.with_file_name(name)
        };
        let current_len = std::fs::metadata(&path).unwrap().len();
        let rotated_len = std::fs::metadata(&rotated).unwrap().len();
        assert!(current_len <= 1024);
        assert!(rotated_len <= 1024);
        // Every surviving line still parses.
        for file in [&path, &rotated] {
            for line in std::fs::read_to_string(file).unwrap().lines() {
                Json::parse(line).unwrap();
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&rotated).ok();
    }

    /// Control characters in logged strings (satellite: obs::json escaping
    /// round-trip) survive the line format: the rendered line stays one
    /// physical line and parses back to the original string.
    #[test]
    fn control_characters_in_paths_round_trip() {
        let hostile = "/predict\u{0}\u{1}\t\r\nx\u{1f}";
        let rec = AccessRecord {
            trace_id: "cafe0000000000000000000000000004",
            route: "other",
            method: "GET",
            path: hostile,
            status: 404,
            latency_us: 5,
            ..Default::default()
        };
        let line = rec.to_json();
        assert!(
            !line.contains('\n'),
            "escaped line must be one physical line"
        );
        assert!(!line.contains('\u{0}'), "raw control chars must not leak");
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("path").unwrap().as_str(), Some(hostile));
    }
}
