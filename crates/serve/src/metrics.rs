//! Request metrics in the Prometheus text exposition format.
//!
//! Everything is lock-free: per-endpoint request counters and fixed-bucket
//! latency histograms are relaxed atomics, bumped on the request path and
//! read (without a consistent snapshot — Prometheus semantics) by
//! `GET /metrics`. One scrape shows four families:
//!
//! - HTTP traffic: `autobias_requests_total`, `autobias_request_errors_total`,
//!   the per-route `autobias_http_request_duration_seconds` histogram, and
//!   the `autobias_http_requests_in_flight` gauge (owned by [`Metrics`]);
//! - pipeline phases: `autobias_phase_duration_seconds{phase="..."}`
//!   histograms from the [`obs`] span recorder (the server runs it in
//!   `Summary` mode);
//! - every counter in the [`obs::metrics`] registry (`autobias_core_*` from
//!   the learner plus anything future crates register);
//! - point-in-time gauges supplied by the caller ([`GaugeSample`]).
//!
//! Conformance: every series gets `# HELP` and `# TYPE` lines, label values
//! are escaped per the text-format spec, and histogram `_bucket`/`_sum`/
//! `_count` invariants hold (cumulative buckets ending in `+Inf` == count).
//! The unit tests parse the rendered output and check those invariants.
//!
//! Exemplars: traced requests leave the last-seen trace id per histogram
//! bucket, rendered as OpenMetrics-style `# EXEMPLAR <series> trace_id="…"
//! value=<v>` comment lines after the bucket they annotate — comments, so
//! plain Prometheus text parsers skip them, while a scraped p999 bucket
//! still links straight to a stored trace at `/debug/traces/{trace_id}`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The last traced observation that landed in one histogram bucket.
#[derive(Debug, Clone)]
struct Exemplar {
    trace_id: String,
    value: f64,
}

/// Writes one `# EXEMPLAR` annotation line for a bucket series.
fn push_exemplar(out: &mut String, series: &str, ex: &Exemplar) {
    out.push_str(&format!(
        "# EXEMPLAR {series} trace_id=\"{}\" value={}\n",
        escape_label_value(&ex.trace_id),
        ex.value
    ));
}

/// Model artifacts rejected by the static verifier — uploads answered 422
/// and registry loads skipped for Error-severity findings.
pub static MODEL_REJECTIONS: obs::metrics::Counter = obs::metrics::Counter::new(
    "autobias_model_rejections_total",
    "Models rejected by the static verifier at upload or load time.",
);

/// TCP connections accepted by the server.
pub static HTTP_CONNECTIONS: obs::metrics::Counter = obs::metrics::Counter::new(
    "autobias_http_connections_total",
    "TCP connections accepted by the HTTP server.",
);

/// Requests served on an already-open keep-alive connection — each bump is
/// one request that skipped a TCP handshake.
pub static KEEPALIVE_REUSES: obs::metrics::Counter = obs::metrics::Counter::new(
    "autobias_http_keepalive_reuses_total",
    "Requests served on a reused keep-alive connection (after the first on each connection).",
);

/// Tuples classified by `POST /predict`, over both evaluation paths.
pub static PREDICT_TUPLES: obs::metrics::Counter = obs::metrics::Counter::new(
    "autobias_predict_tuples_total",
    "Tuples classified by POST /predict (compiled and interpreted paths).",
);

/// Tuples that went through the clause interpreter instead of a compiled
/// plan — because compilation is disabled, or a clause was declined.
pub static PREDICT_INTERPRETED_TUPLES: obs::metrics::Counter = obs::metrics::Counter::new(
    "autobias_predict_interpreted_tuples_total",
    "Predict tuple evaluations that used the interpreter (compilation off or clause declined).",
);

/// Predict batches where runtime variant selection chose between multiple
/// kept orderings (single-variant clauses never bump this).
pub static PLAN_VARIANT_SELECTIONS: obs::metrics::Counter = obs::metrics::Counter::new(
    "autobias_plan_variant_selections_total",
    "Clause evaluations where runtime variant selection chose between multiple kept orderings.",
);

/// Bucket upper bounds of the q-error histogram. q-error is ≥ 1 by
/// definition, so the first bucket catches near-perfect estimates.
const QERROR_BUCKETS: [f64; 8] = [1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, f64::INFINITY];

/// Process-global q-error histogram (`autobias_plan_estimate_qerror`):
/// per-step estimated-vs-actual cardinality ratios observed by /predict
/// batches with plan stats enabled. Global like the [`obs::metrics`]
/// counters so every server and test in the process shares one series.
static QERROR_BUCKET_COUNTS: [AtomicU64; QERROR_BUCKETS.len()] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static QERROR_SUM_MILLIS: AtomicU64 = AtomicU64::new(0);
static QERROR_COUNT: AtomicU64 = AtomicU64::new(0);

/// Last traced observation per q-error bucket. Only traced requests pay the
/// (short, uncontended) lock; untraced observations stay lock-free.
static QERROR_EXEMPLARS: Mutex<[Option<Exemplar>; QERROR_BUCKETS.len()]> =
    Mutex::new([None, None, None, None, None, None, None, None]);

/// Records one per-step q-error observation.
pub fn observe_qerror(q: f64) {
    observe_qerror_traced(q, None);
}

/// [`observe_qerror`] with the observing request's trace id, kept as the
/// bucket's exemplar so a scraped outlier links to its stored trace.
pub fn observe_qerror_traced(q: f64, trace_id: Option<&str>) {
    for (i, &le) in QERROR_BUCKETS.iter().enumerate() {
        if q <= le {
            QERROR_BUCKET_COUNTS[i].fetch_add(1, Ordering::Relaxed);
            if let Some(id) = trace_id {
                if let Ok(mut ex) = QERROR_EXEMPLARS.lock() {
                    ex[i] = Some(Exemplar {
                        trace_id: id.to_string(),
                        value: q,
                    });
                }
            }
            break;
        }
    }
    // Milli-units keep the sum integral without losing meaningful precision
    // (q-errors worth histogramming are ≥ 1).
    QERROR_SUM_MILLIS.fetch_add((q * 1e3) as u64, Ordering::Relaxed);
    QERROR_COUNT.fetch_add(1, Ordering::Relaxed);
}

/// q-error observations so far (the histogram's `_count`).
pub fn qerror_count() -> u64 {
    QERROR_COUNT.load(Ordering::Relaxed)
}

/// Per-model compile outcome for labeled `autobias_plan_*_total` samples,
/// built from the live registry at scrape time — rotated models simply stop
/// appearing, so the label set is always the current registry names.
#[derive(Debug, Clone)]
pub struct ModelPlanSample {
    /// Registry name (the `model` label value).
    pub name: String,
    /// Clauses compiled for this model.
    pub compiled: u64,
    /// Clauses declined to the interpreter for this model.
    pub fallback: u64,
}

/// The endpoints we track. `Other` buckets everything unrecognized so the
/// label set stays bounded no matter what clients send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET`/`POST /models`
    Models,
    /// `POST /predict`
    Predict,
    /// `POST /jobs/learn`, `GET /jobs/*`, `POST /jobs/*/cancel`
    Jobs,
    /// `GET /jobs/{id}/events` (the SSE stream)
    Events,
    /// `GET /runs`, `GET /runs/{id}` (archived run reports)
    Runs,
    /// `GET /models/{name}/plan` (EXPLAIN / EXPLAIN ANALYZE)
    Plan,
    /// `GET /debug/slow` (the slow-request flight recorder)
    Debug,
    /// `POST /shutdown`
    Shutdown,
    /// Anything else (404s, parse failures).
    Other,
}

/// Stable label value for an endpoint — the `route=` label on the request
/// histogram, and the route field in access-log lines and stored traces.
pub fn endpoint_name(endpoint: Endpoint) -> &'static str {
    ENDPOINTS
        .iter()
        .find(|&&(e, _)| e == endpoint)
        .map(|&(_, name)| name)
        .unwrap_or("other")
}

const ENDPOINTS: [(Endpoint, &str); 11] = [
    (Endpoint::Healthz, "healthz"),
    (Endpoint::Metrics, "metrics"),
    (Endpoint::Models, "models"),
    (Endpoint::Predict, "predict"),
    (Endpoint::Plan, "plan"),
    (Endpoint::Debug, "debug"),
    (Endpoint::Jobs, "jobs"),
    (Endpoint::Events, "events"),
    (Endpoint::Runs, "runs"),
    (Endpoint::Shutdown, "shutdown"),
    (Endpoint::Other, "other"),
];

/// Histogram bucket upper bounds, in seconds. Chosen to straddle the two
/// regimes this server sees: sub-millisecond index probes and multi-second
/// learning-job submissions.
const BUCKETS: [f64; 8] = [0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, f64::INFINITY];

/// A point-in-time gauge owned by another subsystem (loaded models, running
/// jobs, sampler acceptance rate), rendered with its own HELP/TYPE lines.
#[derive(Debug, Clone, Copy)]
pub struct GaugeSample {
    /// Metric name (no labels).
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// Current value.
    pub value: f64,
}

/// Escapes a label value per the Prometheus text format: backslash, double
/// quote, and newline.
pub(crate) fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text per the Prometheus text format: backslash and
/// newline (quotes are fine in help text).
fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_le(le: f64) -> String {
    if le.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{le}")
    }
}

#[derive(Default)]
struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    bucket_counts: [AtomicU64; BUCKETS.len()],
    sum_micros: AtomicU64,
}

/// Process-lifetime request metrics; one instance per server.
pub struct Metrics {
    stats: [EndpointStats; ENDPOINTS.len()],
    /// Streaming responses cut short because the client went away. A
    /// watcher hanging up mid-SSE is normal operation, not a server error,
    /// so these are counted here instead of `request_errors_total`.
    client_disconnects: AtomicU64,
    /// Requests currently being handled (read → routed → response written).
    /// Signed so a missed increment can never wrap to 2^64 on the gauge.
    in_flight: AtomicI64,
    /// Last traced observation per (endpoint, latency bucket); locked only
    /// by traced requests and the scrape.
    exemplars: Mutex<[[Option<Exemplar>; BUCKETS.len()]; ENDPOINTS.len()]>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            stats: Default::default(),
            client_disconnects: AtomicU64::new(0),
            in_flight: AtomicI64::new(0),
            exemplars: Mutex::new(Default::default()),
        }
    }
}

impl Metrics {
    /// Creates a zeroed metrics table.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(endpoint: Endpoint) -> usize {
        ENDPOINTS
            .iter()
            .position(|&(e, _)| e == endpoint)
            .expect("every endpoint is in the table")
    }

    /// Records one finished request.
    pub fn observe(&self, endpoint: Endpoint, latency: Duration, is_error: bool) {
        self.observe_traced(endpoint, latency, is_error, None);
    }

    /// [`observe`](Metrics::observe) with the request's trace id, kept as
    /// the latency bucket's exemplar.
    pub fn observe_traced(
        &self,
        endpoint: Endpoint,
        latency: Duration,
        is_error: bool,
        trace_id: Option<&str>,
    ) {
        let ei = Self::idx(endpoint);
        let s = &self.stats[ei];
        s.requests.fetch_add(1, Ordering::Relaxed);
        if is_error {
            s.errors.fetch_add(1, Ordering::Relaxed);
        }
        let secs = latency.as_secs_f64();
        for (i, &le) in BUCKETS.iter().enumerate() {
            if secs <= le {
                s.bucket_counts[i].fetch_add(1, Ordering::Relaxed);
                if let Some(id) = trace_id {
                    if let Ok(mut ex) = self.exemplars.lock() {
                        ex[ei][i] = Some(Exemplar {
                            trace_id: id.to_string(),
                            value: secs,
                        });
                    }
                }
                break;
            }
        }
        s.sum_micros
            .fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
    }

    /// Marks one request as started; pair with
    /// [`in_flight_dec`](Metrics::in_flight_dec) on every exit path
    /// (including connection write errors).
    pub fn in_flight_inc(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one request as finished.
    pub fn in_flight_dec(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Total requests seen on one endpoint.
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        self.stats[Self::idx(endpoint)]
            .requests
            .load(Ordering::Relaxed)
    }

    /// Records a client hanging up mid-stream (not an error).
    pub fn disconnect(&self) {
        self.client_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Streaming responses cut short by the client so far.
    pub fn client_disconnects(&self) -> u64 {
        self.client_disconnects.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text format. `gauges` supplies point-in-time
    /// values owned by other subsystems; `models` supplies the live
    /// registry's per-model compile outcomes for labeled plan counters.
    pub fn render(&self, gauges: &[GaugeSample], models: &[ModelPlanSample]) -> String {
        let mut out = String::with_capacity(8192);

        out.push_str("# HELP autobias_requests_total Requests handled, by endpoint.\n");
        out.push_str("# TYPE autobias_requests_total counter\n");
        for (i, &(_, name)) in ENDPOINTS.iter().enumerate() {
            let n = self.stats[i].requests.load(Ordering::Relaxed);
            out.push_str(&format!(
                "autobias_requests_total{{endpoint=\"{}\"}} {n}\n",
                escape_label_value(name)
            ));
        }

        out.push_str("# HELP autobias_request_errors_total Non-2xx responses, by endpoint.\n");
        out.push_str("# TYPE autobias_request_errors_total counter\n");
        for (i, &(_, name)) in ENDPOINTS.iter().enumerate() {
            let n = self.stats[i].errors.load(Ordering::Relaxed);
            out.push_str(&format!(
                "autobias_request_errors_total{{endpoint=\"{}\"}} {n}\n",
                escape_label_value(name)
            ));
        }

        out.push_str(
            "# HELP autobias_http_request_duration_seconds Request latency, by route.\n\
             # TYPE autobias_http_request_duration_seconds histogram\n",
        );
        let exemplars = self.exemplars.lock().map(|g| g.clone()).unwrap_or_default();
        for (i, &(_, name)) in ENDPOINTS.iter().enumerate() {
            let s = &self.stats[i];
            let name = escape_label_value(name);
            let mut cumulative = 0u64;
            for (bi, &le) in BUCKETS.iter().enumerate() {
                cumulative += s.bucket_counts[bi].load(Ordering::Relaxed);
                let series = format!(
                    "autobias_http_request_duration_seconds_bucket{{route=\"{name}\",le=\"{}\"}}",
                    fmt_le(le)
                );
                out.push_str(&format!("{series} {cumulative}\n"));
                if let Some(ex) = &exemplars[i][bi] {
                    push_exemplar(&mut out, &series, ex);
                }
            }
            let sum = s.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
            let count = s.requests.load(Ordering::Relaxed);
            out.push_str(&format!(
                "autobias_http_request_duration_seconds_sum{{route=\"{name}\"}} {sum}\n\
                 autobias_http_request_duration_seconds_count{{route=\"{name}\"}} {count}\n"
            ));
        }

        out.push_str(
            "# HELP autobias_http_requests_in_flight Requests currently being handled.\n\
             # TYPE autobias_http_requests_in_flight gauge\n",
        );
        out.push_str(&format!(
            "autobias_http_requests_in_flight {}\n",
            self.in_flight.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP autobias_client_disconnects_total Streaming responses cut short because the client hung up (not errors).\n\
             # TYPE autobias_client_disconnects_total counter\n",
        );
        out.push_str(&format!(
            "autobias_client_disconnects_total {}\n",
            self.client_disconnects.load(Ordering::Relaxed)
        ));

        render_phase_histograms(&mut out);
        render_qerror_histogram(&mut out);
        render_registered_counters(&mut out, models);

        out.push_str(
            "# HELP autobias_trace_dropped_events_total Span events dropped by the bounded trace buffer.\n\
             # TYPE autobias_trace_dropped_events_total counter\n",
        );
        out.push_str(&format!(
            "autobias_trace_dropped_events_total {}\n",
            obs::span::dropped_events()
        ));

        for g in gauges {
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} gauge\n{} {}\n",
                g.name,
                escape_help(g.help),
                g.name,
                g.name,
                g.value
            ));
        }
        out
    }
}

/// Renders `autobias_phase_duration_seconds{phase="..."}` histograms from
/// the span recorder's per-phase aggregates. The recorder's buckets are
/// per-bucket counts; Prometheus `_bucket` series are cumulative.
fn render_phase_histograms(out: &mut String) {
    out.push_str(
        "# HELP autobias_phase_duration_seconds Pipeline phase wall-clock, by span name.\n\
         # TYPE autobias_phase_duration_seconds histogram\n",
    );
    for p in obs::phase_snapshot() {
        let phase = escape_label_value(p.name);
        let mut cumulative = 0u64;
        for (bi, &le) in obs::PHASE_BUCKETS.iter().enumerate() {
            cumulative += p.bucket_counts[bi];
            out.push_str(&format!(
                "autobias_phase_duration_seconds_bucket{{phase=\"{phase}\",le=\"{}\"}} {cumulative}\n",
                fmt_le(le)
            ));
        }
        out.push_str(&format!(
            "autobias_phase_duration_seconds_sum{{phase=\"{phase}\"}} {}\n\
             autobias_phase_duration_seconds_count{{phase=\"{phase}\"}} {}\n",
            p.total_secs(),
            p.count
        ));
    }
}

/// Renders the `autobias_plan_estimate_qerror` histogram: per-step
/// estimated-vs-actual cardinality ratios across all models.
fn render_qerror_histogram(out: &mut String) {
    out.push_str(
        "# HELP autobias_plan_estimate_qerror Per-step q-error (max(est/actual, actual/est)) of compile-time cardinality estimates.\n\
         # TYPE autobias_plan_estimate_qerror histogram\n",
    );
    let exemplars = QERROR_EXEMPLARS
        .lock()
        .map(|g| g.clone())
        .unwrap_or_default();
    let mut cumulative = 0u64;
    for (i, &le) in QERROR_BUCKETS.iter().enumerate() {
        cumulative += QERROR_BUCKET_COUNTS[i].load(Ordering::Relaxed);
        let series = format!(
            "autobias_plan_estimate_qerror_bucket{{le=\"{}\"}}",
            fmt_le(le)
        );
        out.push_str(&format!("{series} {cumulative}\n"));
        if let Some(ex) = &exemplars[i] {
            push_exemplar(out, &series, ex);
        }
    }
    out.push_str(&format!(
        "autobias_plan_estimate_qerror_sum {}\n\
         autobias_plan_estimate_qerror_count {}\n",
        QERROR_SUM_MILLIS.load(Ordering::Relaxed) as f64 / 1e3,
        QERROR_COUNT.load(Ordering::Relaxed)
    ));
}

/// Renders every counter in the [`obs::metrics`] registry. The core
/// learner's counters are registered via `autobias::instrument::register`
/// and the verifier's via `analyze::register`, so a scrape sees them even
/// before the first learning job or upload. The plan compile counters
/// additionally get per-model labeled samples within the same family block
/// (one HELP/TYPE), derived from the live registry so rotated models drop
/// out of the label set immediately.
fn render_registered_counters(out: &mut String, models: &[ModelPlanSample]) {
    autobias::instrument::register();
    analyze::register();
    plan::register();
    obs::metrics::register(&MODEL_REJECTIONS);
    obs::metrics::register(&HTTP_CONNECTIONS);
    obs::metrics::register(&KEEPALIVE_REUSES);
    obs::metrics::register(&PREDICT_TUPLES);
    obs::metrics::register(&PREDICT_INTERPRETED_TUPLES);
    obs::metrics::register(&PLAN_VARIANT_SELECTIONS);
    for c in obs::metrics::registered() {
        out.push_str(&format!(
            "# HELP {} {}\n# TYPE {} counter\n{} {}\n",
            c.name(),
            escape_help(c.help()),
            c.name(),
            c.name(),
            c.get()
        ));
        let per_model: Option<fn(&ModelPlanSample) -> u64> = match c.name() {
            "autobias_plan_compiled_total" => Some(|m| m.compiled),
            "autobias_plan_fallback_total" => Some(|m| m.fallback),
            _ => None,
        };
        if let Some(value_of) = per_model {
            for m in models {
                out.push_str(&format!(
                    "{}{{model=\"{}\"}} {}\n",
                    c.name(),
                    escape_label_value(&m.name),
                    value_of(m)
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn observe_counts_and_buckets() {
        let m = Metrics::new();
        m.observe(Endpoint::Predict, Duration::from_micros(500), false);
        m.observe(Endpoint::Predict, Duration::from_millis(50), true);
        assert_eq!(m.requests(Endpoint::Predict), 2);
        let text = m.render(
            &[GaugeSample {
                name: "autobias_models_loaded",
                help: "Models in the registry.",
                value: 3.0,
            }],
            &[],
        );
        assert!(text.contains("autobias_requests_total{endpoint=\"predict\"} 2"));
        assert!(text.contains("autobias_request_errors_total{endpoint=\"predict\"} 1"));
        // 500µs lands in the 0.001 bucket; cumulative counts reach 2 at +Inf.
        assert!(text.contains(
            "autobias_http_request_duration_seconds_bucket{route=\"predict\",le=\"0.001\"} 1"
        ));
        assert!(text.contains(
            "autobias_http_request_duration_seconds_bucket{route=\"predict\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains("autobias_http_requests_in_flight 0"));
        assert!(text.contains("autobias_models_loaded 3"));
        assert!(text.contains("autobias_core_subsumption_tests_total"));
        // The coverage-cache counters ride the same registry: a scrape shows
        // hit rate and cutoff savings without any serve-side wiring.
        assert!(text.contains("autobias_core_coverage_cache_hits_total"));
        assert!(text.contains("autobias_core_coverage_cache_misses_total"));
        assert!(text.contains("autobias_core_neg_tests_skipped_total"));
        assert!(text.contains("autobias_core_candidates_deduped_total"));
        assert!(text.contains("autobias_phase_duration_seconds"));
        assert!(text.contains("autobias_trace_dropped_events_total"));
        // Serving-path counters: keep-alive reuse and the compiled-plan
        // split of predict traffic are visible from the very first scrape.
        assert!(text.contains("autobias_http_connections_total"));
        assert!(text.contains("autobias_http_keepalive_reuses_total"));
        assert!(text.contains("autobias_predict_tuples_total"));
        assert!(text.contains("autobias_predict_interpreted_tuples_total"));
        assert!(text.contains("autobias_plan_compiled_total"));
        assert!(text.contains("autobias_plan_fallback_total"));
        assert!(text.contains("autobias_plan_variant_selections_total"));
        assert!(text.contains("autobias_plan_estimate_qerror_bucket"));
        assert!(text.contains("autobias_plan_estimate_qerror_count"));
    }

    #[test]
    fn per_model_plan_labels_follow_the_live_registry() {
        let m = Metrics::new();
        let text = m.render(
            &[],
            &[ModelPlanSample {
                name: "uw_coauthor".into(),
                compiled: 2,
                fallback: 1,
            }],
        );
        assert!(text.contains("autobias_plan_compiled_total{model=\"uw_coauthor\"} 2"));
        assert!(text.contains("autobias_plan_fallback_total{model=\"uw_coauthor\"} 1"));

        // Rotation: the samples come from the registry snapshot passed per
        // scrape, so a replaced model's series vanishes instead of going
        // stale.
        let text = m.render(
            &[],
            &[ModelPlanSample {
                name: "uw_v2".into(),
                compiled: 3,
                fallback: 0,
            }],
        );
        assert!(!text.contains("model=\"uw_coauthor\""));
        assert!(text.contains("autobias_plan_compiled_total{model=\"uw_v2\"} 3"));
    }

    #[test]
    fn qerror_histogram_buckets_and_count_agree() {
        let before = qerror_count();
        observe_qerror(1.0);
        observe_qerror(3.0);
        observe_qerror(1000.0);
        assert_eq!(qerror_count(), before + 3);
        let text = Metrics::new().render(&[], &[]);
        let count_line = text
            .lines()
            .find(|l| l.starts_with("autobias_plan_estimate_qerror_count"))
            .expect("qerror count rendered");
        let inf_line = text
            .lines()
            .find(|l| l.starts_with("autobias_plan_estimate_qerror_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket rendered");
        let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        let inf: u64 = inf_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(count, inf, "+Inf bucket must equal _count");
        assert!(count >= 3);
    }

    #[test]
    fn client_disconnects_are_counted_separately_from_errors() {
        let m = Metrics::new();
        m.observe(Endpoint::Events, Duration::from_secs(3), false);
        m.disconnect();
        m.disconnect();
        assert_eq!(m.client_disconnects(), 2);
        let text = m.render(&[], &[]);
        assert!(text.contains("autobias_client_disconnects_total 2"));
        assert!(text.contains("autobias_requests_total{endpoint=\"events\"} 1"));
        assert!(text.contains("autobias_request_errors_total{endpoint=\"events\"} 0"));
        assert!(text.contains("autobias_requests_total{endpoint=\"runs\"} 0"));
    }

    #[test]
    fn escaping_label_values_and_help() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_help("line1\nline2 \\x"), "line1\\nline2 \\\\x");
    }

    /// Inverse of [`escape_label_value`] per the text-format spec, used to
    /// prove the escaping below round-trips.
    fn unescape_label_value(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }

    /// Conformance check for dynamic label values: model names carrying
    /// every character the text format requires escaping (`"`, `\`, `\n`)
    /// must render as single physical lines whose label values round-trip.
    #[test]
    fn dynamic_label_values_survive_hostile_model_names() {
        let hostile = "we\"ird\\mo\ndel";
        let m = Metrics::new();
        let text = m.render(
            &[],
            &[ModelPlanSample {
                name: hostile.into(),
                compiled: 4,
                fallback: 2,
            }],
        );
        // One physical line per sample — the newline must have been escaped.
        let line = text
            .lines()
            .find(|l| l.starts_with("autobias_plan_compiled_total{model="))
            .expect("labeled sample rendered");
        assert_eq!(
            line,
            "autobias_plan_compiled_total{model=\"we\\\"ird\\\\mo\\ndel\"} 4"
        );
        // The escaped value parses back to the original name.
        let escaped = line
            .strip_prefix("autobias_plan_compiled_total{model=\"")
            .unwrap()
            .strip_suffix("\"} 4")
            .unwrap();
        assert_eq!(unescape_label_value(escaped), hostile);
        // Every rendered line is intact: no stray unescaped newline left a
        // dangling fragment that fails to parse as comment or sample.
        for l in text.lines() {
            if l.is_empty() || l.starts_with('#') {
                continue;
            }
            assert!(
                l.rsplit_once(' ')
                    .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "unparsable sample line: {l:?}"
            );
        }
    }

    #[test]
    fn traced_observations_render_exemplar_annotations() {
        let m = Metrics::new();
        m.observe_traced(
            Endpoint::Predict,
            Duration::from_micros(400),
            false,
            Some("cafe0000000000000000000000000001"),
        );
        observe_qerror_traced(2.5, Some("cafe0000000000000000000000000001"));
        let text = m.render(&[], &[]);
        let latency_ex = text.lines().find(|l| {
            l.starts_with(
                "# EXEMPLAR autobias_http_request_duration_seconds_bucket{route=\"predict\"",
            )
        });
        let ex = latency_ex.expect("latency exemplar rendered");
        assert!(ex.contains("le=\"0.001\""));
        assert!(ex.contains("trace_id=\"cafe0000000000000000000000000001\""));
        assert!(ex.contains("value=0.0004"));
        let qerror_ex = text
            .lines()
            .find(|l| l.starts_with("# EXEMPLAR autobias_plan_estimate_qerror_bucket{le=\"4\"}"))
            .expect("q-error exemplar rendered");
        assert!(qerror_ex.contains("trace_id=\"cafe0000000000000000000000000001\""));
        // Each exemplar line follows the bucket it annotates.
        let lines: Vec<&str> = text.lines().collect();
        let pos = lines.iter().position(|l| *l == ex).unwrap();
        assert!(lines[pos - 1].starts_with(
            "autobias_http_request_duration_seconds_bucket{route=\"predict\",le=\"0.001\"}"
        ));
        // Untraced observations never overwrite an exemplar with nothing.
        m.observe(Endpoint::Predict, Duration::from_micros(300), false);
        let text = m.render(&[], &[]);
        assert!(text.contains("trace_id=\"cafe0000000000000000000000000001\""));
    }

    #[test]
    fn in_flight_gauge_tracks_inc_dec() {
        let m = Metrics::new();
        m.in_flight_inc();
        m.in_flight_inc();
        m.in_flight_dec();
        assert_eq!(m.in_flight(), 1);
        let text = m.render(&[], &[]);
        assert!(text.contains("autobias_http_requests_in_flight 1"));
        m.in_flight_dec();
        assert_eq!(m.in_flight(), 0);
    }

    /// Family name of a sample line: the metric name with any histogram
    /// suffix stripped when that family is declared as a histogram.
    fn family_of<'a>(name: &'a str, histograms: &HashSet<&str>) -> &'a str {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if histograms.contains(base) {
                    return base;
                }
            }
        }
        name
    }

    /// Parses the rendered exposition text and checks the conformance
    /// invariants promised by the module docs: HELP+TYPE for every series,
    /// histogram buckets cumulative and ending in `+Inf` == `_count`.
    #[test]
    fn rendered_output_is_conformant() {
        let m = Metrics::new();
        m.observe(Endpoint::Predict, Duration::from_micros(500), false);
        m.observe(Endpoint::Jobs, Duration::from_secs(100), false); // +Inf-only bucket
        {
            // Make sure at least one phase aggregate exists.
            obs::enable_at_least(obs::Mode::Summary);
            let _sp = obs::span!("test.metrics_conformance");
        }
        let text = m.render(
            &[GaugeSample {
                name: "autobias_jobs_running",
                help: "Jobs currently running.",
                value: 0.0,
            }],
            &[ModelPlanSample {
                name: "uw".into(),
                compiled: 1,
                fallback: 0,
            }],
        );

        let mut helps: HashSet<String> = HashSet::new();
        let mut types: HashMap<String, String> = HashMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                helps.insert(rest.split(' ').next().unwrap().to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let name = it.next().unwrap().to_string();
                let ty = it.next().expect("TYPE line has a type").to_string();
                types.insert(name, ty);
            }
        }
        let histograms: HashSet<&str> = types
            .iter()
            .filter(|(_, t)| t.as_str() == "histogram")
            .map(|(n, _)| n.as_str())
            .collect();

        // Histogram series keyed by (family, non-le labels).
        let mut buckets: HashMap<(String, String), Vec<(String, u64)>> = HashMap::new();
        let mut counts: HashMap<(String, String), u64> = HashMap::new();

        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            let (name, labels) = match series.split_once('{') {
                Some((n, l)) => (n, l.trim_end_matches('}')),
                None => (series, ""),
            };
            let family = family_of(name, &histograms);
            assert!(helps.contains(family), "no # HELP for {name}: {line}");
            assert!(types.contains_key(family), "no # TYPE for {name}: {line}");

            if histograms.contains(family) {
                let non_le: Vec<&str> = labels
                    .split(',')
                    .filter(|kv| !kv.is_empty() && !kv.starts_with("le="))
                    .collect();
                let key = (family.to_string(), non_le.join(","));
                if name.ends_with("_bucket") {
                    let le = labels
                        .split(',')
                        .find_map(|kv| kv.strip_prefix("le=\""))
                        .expect("bucket has le label")
                        .trim_end_matches('"');
                    buckets
                        .entry(key)
                        .or_default()
                        .push((le.to_string(), value.parse().unwrap()));
                } else if name.ends_with("_count") {
                    counts.insert(key, value.parse().unwrap());
                }
            }
        }

        assert!(!buckets.is_empty(), "no histogram series rendered");
        for (key, series) in &buckets {
            // Buckets appear in declaration order; counts must be
            // nondecreasing and the last bucket must be +Inf == _count.
            for w in series.windows(2) {
                assert!(w[0].1 <= w[1].1, "{key:?}: non-cumulative buckets");
            }
            let (last_le, last_n) = series.last().unwrap();
            assert_eq!(last_le, "+Inf", "{key:?}: last bucket must be +Inf");
            let count = counts
                .get(key)
                .unwrap_or_else(|| panic!("{key:?}: no _count"));
            assert_eq!(last_n, count, "{key:?}: +Inf bucket != _count");
        }

        // The gauge got HELP and TYPE too.
        assert!(helps.contains("autobias_jobs_running"));
        assert_eq!(types["autobias_jobs_running"], "gauge");
    }
}
