//! Request metrics in the Prometheus text exposition format.
//!
//! Everything is lock-free: per-endpoint request counters and fixed-bucket
//! latency histograms are relaxed atomics, bumped on the request path and
//! read (without a consistent snapshot — Prometheus semantics) by
//! `GET /metrics`. Core-engine counters from [`autobias::instrument`] are
//! re-exported under `autobias_core_*` so one scrape shows both the HTTP
//! traffic and the learning/inference work it caused.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The endpoints we track. `Other` buckets everything unrecognized so the
/// label set stays bounded no matter what clients send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET`/`POST /models`
    Models,
    /// `POST /predict`
    Predict,
    /// `POST /jobs/learn`, `GET /jobs/*`, `POST /jobs/*/cancel`
    Jobs,
    /// `POST /shutdown`
    Shutdown,
    /// Anything else (404s, parse failures).
    Other,
}

const ENDPOINTS: [(Endpoint, &str); 7] = [
    (Endpoint::Healthz, "healthz"),
    (Endpoint::Metrics, "metrics"),
    (Endpoint::Models, "models"),
    (Endpoint::Predict, "predict"),
    (Endpoint::Jobs, "jobs"),
    (Endpoint::Shutdown, "shutdown"),
    (Endpoint::Other, "other"),
];

/// Histogram bucket upper bounds, in seconds. Chosen to straddle the two
/// regimes this server sees: sub-millisecond index probes and multi-second
/// learning-job submissions.
const BUCKETS: [f64; 8] = [0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, f64::INFINITY];

#[derive(Default)]
struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    bucket_counts: [AtomicU64; BUCKETS.len()],
    sum_micros: AtomicU64,
}

/// Process-lifetime request metrics; one instance per server.
#[derive(Default)]
pub struct Metrics {
    stats: [EndpointStats; ENDPOINTS.len()],
}

impl Metrics {
    /// Creates a zeroed metrics table.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(endpoint: Endpoint) -> usize {
        ENDPOINTS
            .iter()
            .position(|&(e, _)| e == endpoint)
            .expect("every endpoint is in the table")
    }

    /// Records one finished request.
    pub fn observe(&self, endpoint: Endpoint, latency: Duration, is_error: bool) {
        let s = &self.stats[Self::idx(endpoint)];
        s.requests.fetch_add(1, Ordering::Relaxed);
        if is_error {
            s.errors.fetch_add(1, Ordering::Relaxed);
        }
        let secs = latency.as_secs_f64();
        for (i, &le) in BUCKETS.iter().enumerate() {
            if secs <= le {
                s.bucket_counts[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        s.sum_micros
            .fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
    }

    /// Total requests seen on one endpoint.
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        self.stats[Self::idx(endpoint)]
            .requests
            .load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text format. `gauges` supplies point-in-time
    /// values owned by other subsystems (loaded models, running jobs).
    pub fn render(&self, gauges: &[(&str, u64)]) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str("# HELP autobias_requests_total Requests handled, by endpoint.\n");
        out.push_str("# TYPE autobias_requests_total counter\n");
        for (i, &(_, name)) in ENDPOINTS.iter().enumerate() {
            let n = self.stats[i].requests.load(Ordering::Relaxed);
            out.push_str(&format!(
                "autobias_requests_total{{endpoint=\"{name}\"}} {n}\n"
            ));
        }

        out.push_str("# HELP autobias_request_errors_total Non-2xx responses, by endpoint.\n");
        out.push_str("# TYPE autobias_request_errors_total counter\n");
        for (i, &(_, name)) in ENDPOINTS.iter().enumerate() {
            let n = self.stats[i].errors.load(Ordering::Relaxed);
            out.push_str(&format!(
                "autobias_request_errors_total{{endpoint=\"{name}\"}} {n}\n"
            ));
        }

        out.push_str(
            "# HELP autobias_request_duration_seconds Request latency, by endpoint.\n\
             # TYPE autobias_request_duration_seconds histogram\n",
        );
        for (i, &(_, name)) in ENDPOINTS.iter().enumerate() {
            let s = &self.stats[i];
            let mut cumulative = 0u64;
            for (bi, &le) in BUCKETS.iter().enumerate() {
                cumulative += s.bucket_counts[bi].load(Ordering::Relaxed);
                let le = if le.is_infinite() {
                    "+Inf".to_string()
                } else {
                    format!("{le}")
                };
                out.push_str(&format!(
                    "autobias_request_duration_seconds_bucket{{endpoint=\"{name}\",le=\"{le}\"}} {cumulative}\n"
                ));
            }
            let sum = s.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
            let count = s.requests.load(Ordering::Relaxed);
            out.push_str(&format!(
                "autobias_request_duration_seconds_sum{{endpoint=\"{name}\"}} {sum}\n\
                 autobias_request_duration_seconds_count{{endpoint=\"{name}\"}} {count}\n"
            ));
        }

        let core = autobias::instrument::snapshot();
        out.push_str(&format!(
            "# HELP autobias_core_subsumption_tests_total Theta-subsumption tests started.\n\
             # TYPE autobias_core_subsumption_tests_total counter\n\
             autobias_core_subsumption_tests_total {}\n\
             # HELP autobias_core_coverage_queries_total Direct SPJ coverage queries started.\n\
             # TYPE autobias_core_coverage_queries_total counter\n\
             autobias_core_coverage_queries_total {}\n\
             # HELP autobias_core_bottom_clauses_total Bottom clauses constructed.\n\
             # TYPE autobias_core_bottom_clauses_total counter\n\
             autobias_core_bottom_clauses_total {}\n",
            core.subsumption_tests, core.coverage_queries, core.bottom_clauses_built
        ));

        for &(name, value) in gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_counts_and_buckets() {
        let m = Metrics::new();
        m.observe(Endpoint::Predict, Duration::from_micros(500), false);
        m.observe(Endpoint::Predict, Duration::from_millis(50), true);
        assert_eq!(m.requests(Endpoint::Predict), 2);
        let text = m.render(&[("autobias_models_loaded", 3)]);
        assert!(text.contains("autobias_requests_total{endpoint=\"predict\"} 2"));
        assert!(text.contains("autobias_request_errors_total{endpoint=\"predict\"} 1"));
        // 500µs lands in the 0.001 bucket; cumulative counts reach 2 at +Inf.
        assert!(text.contains(
            "autobias_request_duration_seconds_bucket{endpoint=\"predict\",le=\"0.001\"} 1"
        ));
        assert!(text.contains(
            "autobias_request_duration_seconds_bucket{endpoint=\"predict\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains("autobias_models_loaded 3"));
        assert!(text.contains("autobias_core_subsumption_tests_total"));
    }
}
