//! Background learning jobs: a `POST /jobs/learn` request returns
//! immediately with a job id; the learning run happens on its own thread
//! against the shared read-only [`relstore::Database`], and clients poll
//! `GET /jobs/{id}` for status. Cancellation is cooperative — the flag is
//! polled by [`autobias::learn::Learner::learn_cancellable`] once per
//! covering-loop iteration, so a cancelled job still returns the clauses
//! accepted so far.

use crate::events::EventLog;
use crate::ledger::RunLedger;
use crate::registry::{ModelEntry, ModelRegistry};
use autobias::bias::auto::{induce_bias, AutoBiasConfig};
use autobias::bottom::{BcConfig, SamplingStrategy};
use autobias::example::TrainingSet;
use autobias::learn::{Learner, LearnerConfig};
use datasets::Dataset;
use obs::progress::{ProgressEvent, ProgressSink};
use obs::report::ReportBuilder;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// What to learn and how; parsed from the request body (`key value` lines).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Registry name for the learned model (default `job-<id>`).
    pub model_name: Option<String>,
    /// `auto` (induced from constraints) or `manual` (the dataset's expert
    /// bias file).
    pub bias: BiasChoice,
    /// Bottom-clause sampling strategy.
    pub sampling: SamplingStrategy,
    /// Bottom-clause depth.
    pub depth: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cap on learned clauses.
    pub max_clauses: usize,
    /// Post-reduce learned clauses for readability.
    pub reduce: bool,
}

/// Which language bias the job uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiasChoice {
    /// Induce the bias from database constraints (the paper's AutoBias).
    Auto,
    /// Use the dataset's expert-written bias.
    Manual,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            model_name: None,
            bias: BiasChoice::Auto,
            sampling: SamplingStrategy::Naive { per_selection: 20 },
            depth: 2,
            seed: 7,
            max_clauses: LearnerConfig::default().max_clauses,
            reduce: true,
        }
    }
}

impl JobSpec {
    /// Parses `key value` lines (blank lines and `#` comments ignored).
    /// An empty body yields the default spec.
    pub fn parse(body: &str) -> Result<Self, String> {
        let mut spec = Self::default();
        let mut sample_size = 20usize;
        let mut sampling_word = "naive".to_string();
        for line in body.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(char::is_whitespace)
                .map(|(k, v)| (k, v.trim()))
                .ok_or_else(|| format!("expected `key value`, got {line:?}"))?;
            match key {
                "name" => spec.model_name = Some(value.to_string()),
                "bias" => {
                    spec.bias = match value {
                        "auto" => BiasChoice::Auto,
                        "manual" => BiasChoice::Manual,
                        other => return Err(format!("unknown bias {other:?} (auto|manual)")),
                    }
                }
                "sampling" => sampling_word = value.to_string(),
                "sample-size" => {
                    sample_size = value
                        .parse()
                        .map_err(|_| format!("bad sample-size {value:?}"))?;
                }
                "depth" => {
                    spec.depth = value.parse().map_err(|_| format!("bad depth {value:?}"))?;
                }
                "seed" => {
                    spec.seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "max-clauses" => {
                    spec.max_clauses = value
                        .parse()
                        .map_err(|_| format!("bad max-clauses {value:?}"))?;
                }
                "reduce" => {
                    spec.reduce = value
                        .parse()
                        .map_err(|_| format!("bad reduce {value:?} (true|false)"))?;
                }
                other => return Err(format!("unknown job option {other:?}")),
            }
        }
        spec.sampling = match sampling_word.as_str() {
            "naive" => SamplingStrategy::Naive {
                per_selection: sample_size,
            },
            "random" => SamplingStrategy::Random {
                per_selection: sample_size,
                oversample: 10,
            },
            "stratified" => SamplingStrategy::Stratified { per_stratum: 2 },
            "full" => SamplingStrategy::Full,
            other => {
                return Err(format!(
                    "unknown sampling {other:?} (naive|random|stratified|full)"
                ))
            }
        };
        Ok(spec)
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, thread not yet running.
    Queued,
    /// Learning in progress.
    Running,
    /// Finished; the model is in the registry.
    Done,
    /// Stopped by `POST /jobs/{id}/cancel`; partial clauses (if any) are
    /// still registered.
    Cancelled,
    /// Bias construction or learning failed.
    Failed,
}

impl JobState {
    /// Lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job can make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

/// Mutable job status, read by pollers.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Current lifecycle state.
    pub state: JobState,
    /// Human-readable detail (error message, completion summary).
    pub detail: String,
    /// Clauses in the learned definition so far (live while running).
    pub clauses: usize,
    /// Positives left uncovered (live while running).
    pub uncovered_pos: usize,
    /// Covering-loop iteration currently in progress (0 before the first).
    pub iteration: usize,
    /// Positive training examples in total (0 until the BC build finishes).
    pub pos_total: usize,
    /// Positives covered so far (`pos_total - uncovered_pos` once known).
    pub pos_covered: usize,
    /// Wall-clock seconds once terminal.
    pub elapsed_secs: Option<f64>,
    /// Seconds spent building ground bottom clauses, once terminal.
    pub bc_secs: Option<f64>,
    /// Seconds spent in clause search (the covering loop), once terminal.
    pub search_secs: Option<f64>,
    /// Clauses of the learned model compiled into evaluation plans, once
    /// the job completed and the model was registered.
    pub plan_compiled: Option<usize>,
    /// Clauses declined by the plan compiler (interpreter fallback), once
    /// the job completed.
    pub plan_fallback: Option<usize>,
}

/// One background learning job.
pub struct Job {
    /// Job id, unique per server.
    pub id: u64,
    /// Name the learned model is registered under.
    pub model_name: String,
    /// Trace id (32 hex digits) of the job's span tree; the tree is kept in
    /// the server's trace store once the job terminates, so a run found in
    /// `GET /jobs/{id}` resolves at `GET /debug/traces/{trace_id}`.
    pub trace_id: String,
    /// Live SSE frames of this job's [`ProgressEvent`]s; closed once the
    /// job is terminal, ending any `GET /jobs/{id}/events` streams.
    pub events: Arc<EventLog>,
    status: Mutex<JobStatus>,
    cancel: AtomicBool,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Job {
    /// Snapshot of the current status.
    pub fn status(&self) -> JobStatus {
        self.status.lock().expect("job lock poisoned").clone()
    }

    /// Requests cooperative cancellation.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Blocks until the job's thread finishes, without requesting
    /// cancellation. Idempotent; later joins (including [`JobManager::shutdown`])
    /// see the handle already taken and return immediately.
    pub fn wait(&self) {
        let handle = self.handle.lock().expect("job lock poisoned").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    fn set_status(&self, f: impl FnOnce(&mut JobStatus)) {
        f(&mut self.status.lock().expect("job lock poisoned"));
    }
}

/// Owns all jobs of one server.
#[derive(Default)]
pub struct JobManager {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
}

impl JobManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawns a learning job over the shared dataset; the learned model is
    /// written to the registry's directory and inserted into the registry,
    /// and the run report is archived in `ledger` (when given) once the job
    /// completes. When a trace store is given, the job runs under its own
    /// [`obs::trace::TraceCtx`] and the finished span tree — bias induction,
    /// BC build, clause search, plan compile — is kept there unconditionally.
    pub fn spawn_learn(
        &self,
        spec: JobSpec,
        ds: Arc<Dataset>,
        registry: Arc<ModelRegistry>,
        ledger: Option<Arc<RunLedger>>,
        traces: Option<Arc<crate::trace::TraceStore>>,
    ) -> Arc<Job> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let model_name = spec
            .model_name
            .clone()
            .unwrap_or_else(|| format!("job-{id}"));
        let ctx = obs::trace::TraceCtx::begin(None);
        let job = Arc::new(Job {
            id,
            model_name: model_name.clone(),
            trace_id: ctx.trace_id_hex(),
            events: Arc::new(EventLog::default()),
            status: Mutex::new(JobStatus {
                state: JobState::Queued,
                detail: String::new(),
                clauses: 0,
                uncovered_pos: 0,
                iteration: 0,
                pos_total: ds.pos.len(),
                pos_covered: 0,
                elapsed_secs: None,
                bc_secs: None,
                search_secs: None,
                plan_compiled: None,
                plan_fallback: None,
            }),
            cancel: AtomicBool::new(false),
            handle: Mutex::new(None),
        });
        self.jobs
            .lock()
            .expect("jobs lock poisoned")
            .insert(id, job.clone());

        let worker_job = job.clone();
        let handle = std::thread::Builder::new()
            .name(format!("learn-job-{id}"))
            .spawn(move || {
                let t0 = Instant::now();
                worker_job.set_status(|s| s.state = JobState::Running);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    // Installed inside the closure so the guard unwinds with
                    // a panic instead of leaking the thread-local context.
                    let _traced = ctx.install();
                    run_learn(&worker_job, &spec, &ds, &registry, ledger.as_deref())
                }));
                let elapsed = t0.elapsed().as_secs_f64();
                if let Some(traces) = &traces {
                    traces.keep(
                        "job",
                        0,
                        t0.elapsed().as_micros() as u64,
                        crate::trace::KeepReason::Job,
                        ctx.finish(),
                    );
                }
                match result {
                    Ok(Ok(outcome)) => worker_job.set_status(|s| {
                        s.state = outcome.state;
                        s.detail = outcome.detail;
                        s.clauses = outcome.clauses;
                        s.uncovered_pos = outcome.uncovered_pos;
                        s.pos_covered = s.pos_total.saturating_sub(outcome.uncovered_pos);
                        s.elapsed_secs = Some(elapsed);
                        s.bc_secs = Some(outcome.bc_secs);
                        s.search_secs = Some(outcome.search_secs);
                        s.plan_compiled = outcome.plan_compiled;
                        s.plan_fallback = outcome.plan_fallback;
                    }),
                    Ok(Err(msg)) => worker_job.set_status(|s| {
                        s.state = JobState::Failed;
                        s.detail = msg;
                        s.elapsed_secs = Some(elapsed);
                    }),
                    Err(_) => worker_job.set_status(|s| {
                        s.state = JobState::Failed;
                        s.detail = "learning thread panicked".to_string();
                        s.elapsed_secs = Some(elapsed);
                    }),
                }
                // Close after the terminal status is visible, so a watcher
                // whose stream just ended polls a final, settled state.
                worker_job.events.close();
            })
            .expect("spawning a job thread");
        *job.handle.lock().expect("job lock poisoned") = Some(handle);
        job
    }

    /// Looks up a job.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .expect("jobs lock poisoned")
            .get(&id)
            .cloned()
    }

    /// All jobs, sorted by id.
    pub fn list(&self) -> Vec<Arc<Job>> {
        let mut all: Vec<Arc<Job>> = self
            .jobs
            .lock()
            .expect("jobs lock poisoned")
            .values()
            .cloned()
            .collect();
        all.sort_by_key(|j| j.id);
        all
    }

    /// Number of jobs not yet terminal.
    pub fn running_count(&self) -> u64 {
        self.list()
            .iter()
            .filter(|j| !j.status().state.is_terminal())
            .count() as u64
    }

    /// Cancels every job and joins all worker threads. Called once during
    /// graceful shutdown; jobs finish as `Cancelled` (or `Done` if they
    /// complete before noticing the flag).
    pub fn shutdown(&self) {
        let jobs = self.list();
        for job in &jobs {
            job.cancel();
        }
        for job in jobs {
            let handle = job.handle.lock().expect("job lock poisoned").take();
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }
}

struct LearnOutcome {
    state: JobState,
    detail: String,
    clauses: usize,
    uncovered_pos: usize,
    bc_secs: f64,
    search_secs: f64,
    plan_compiled: Option<usize>,
    plan_fallback: Option<usize>,
}

/// Fans the learner's progress stream out to the job's live status fields,
/// its SSE event log, and the run-report builder.
struct JobSink<'a> {
    job: &'a Job,
    report: &'a ReportBuilder,
}

impl ProgressSink for JobSink<'_> {
    fn on_event(&self, ev: &ProgressEvent) {
        self.report.on_event(ev);
        match ev {
            ProgressEvent::BcBuildFinished { pos_examples, .. } => {
                let pos_examples = *pos_examples;
                self.job.set_status(|s| {
                    s.pos_total = pos_examples;
                    s.uncovered_pos = pos_examples;
                });
            }
            ProgressEvent::IterationStarted {
                iteration,
                uncovered_pos,
                clauses_so_far,
                ..
            } => {
                let (iteration, uncovered_pos, clauses) =
                    (*iteration, *uncovered_pos, *clauses_so_far);
                self.job.set_status(|s| {
                    s.iteration = iteration;
                    s.uncovered_pos = uncovered_pos;
                    s.pos_covered = s.pos_total.saturating_sub(uncovered_pos);
                    s.clauses = clauses;
                });
            }
            ProgressEvent::ClauseAccepted {
                uncovered_after, ..
            } => {
                let uncovered_after = *uncovered_after;
                self.job.set_status(|s| {
                    s.clauses += 1;
                    s.uncovered_pos = uncovered_after;
                    s.pos_covered = s.pos_total.saturating_sub(uncovered_after);
                });
            }
            _ => {}
        }
        self.job.events.push(ev.to_sse_frame());
    }
}

fn run_learn(
    job: &Job,
    spec: &JobSpec,
    ds: &Dataset,
    registry: &ModelRegistry,
    ledger: Option<&RunLedger>,
) -> Result<LearnOutcome, String> {
    let bias = match spec.bias {
        BiasChoice::Auto => {
            let (bias, _, _) = induce_bias(&ds.db, ds.target, &AutoBiasConfig::default())
                .map_err(|e| format!("bias induction: {e}"))?;
            bias
        }
        BiasChoice::Manual => ds.manual_bias().map_err(|e| format!("manual bias: {e}"))?,
    };
    let cfg = LearnerConfig {
        bc: BcConfig {
            depth: spec.depth,
            strategy: spec.sampling,
            ..BcConfig::default()
        },
        seed: spec.seed,
        max_clauses: spec.max_clauses,
        reduce_clauses: spec.reduce,
        ..LearnerConfig::default()
    };
    let train = TrainingSet::new(ds.pos.clone(), ds.neg.clone());
    let sampling = match spec.sampling {
        SamplingStrategy::Naive { per_selection } => format!("naive:{per_selection}"),
        SamplingStrategy::Random { per_selection, .. } => format!("random:{per_selection}"),
        SamplingStrategy::Stratified { per_stratum } => format!("stratified:{per_stratum}"),
        SamplingStrategy::Full => "full".to_string(),
    };
    // Counter/phase deltas in the report are process-global; with several
    // jobs running concurrently they describe the overlap, not one job.
    let report = ReportBuilder::new(
        ds.name,
        vec![
            ("model".to_string(), job.model_name.clone()),
            (
                "bias".to_string(),
                match spec.bias {
                    BiasChoice::Auto => "auto".to_string(),
                    BiasChoice::Manual => "manual".to_string(),
                },
            ),
            ("sampling".to_string(), sampling),
            ("depth".to_string(), spec.depth.to_string()),
            ("seed".to_string(), spec.seed.to_string()),
            ("max_clauses".to_string(), spec.max_clauses.to_string()),
            ("reduce".to_string(), spec.reduce.to_string()),
        ],
    );
    report.set_trace_id(job.trace_id.clone());
    let sink = JobSink {
        job,
        report: &report,
    };
    let (def, stats) =
        Learner::new(cfg).learn_with_progress(&ds.db, &bias, &train, &job.cancel, &sink);

    // Learned models are verified observationally (warnings logged, never
    // rejected): the learner's own invariants make Error findings a bug, and
    // a partial model from a cancelled job is still worth serving.
    if analyze::enabled() {
        let verdict = analyze::check_definition(&ds.db, &def, Some(&bias));
        if !verdict.is_clean() {
            obs::warn!(
                "job {} model {}: verifier found {}",
                job.id,
                job.model_name,
                verdict.summary()
            );
        }
    }

    let clauses = def.len();
    let uncovered_pos = stats.uncovered_pos;
    let text = def.render(&ds.db);
    let path = registry.dir().join(format!("{}.model", job.model_name));
    // Persist before registering so a restart reloads the same model; a
    // cancelled job's partial definition is still a valid (weaker) model.
    std::fs::write(&path, format!("{text}\n")).map_err(|e| format!("{}: {e}", path.display()))?;
    // Compile-at-insert happens before the report is finished, so the
    // `plan.compile` span shows up in the archived run's phase table.
    let entry = ModelEntry::new(&ds.db, job.model_name.clone(), def, vec![], Some(path));
    let (plan_compiled, plan_fallback) = match entry.plan.as_ref() {
        Some(p) => (Some(p.num_compiled()), Some(p.num_declined())),
        None => (None, None),
    };
    if let Some(p) = entry.plan.as_ref() {
        report.set_plan(obs::PlanReport {
            compiled_clauses: p.num_compiled(),
            fallback_clauses: p.num_declined(),
            declined: p
                .declined()
                .iter()
                .map(|(i, why)| format!("clause {i}: {why}"))
                .collect(),
        });
    }
    registry.insert(entry);
    if let Some(ledger) = ledger {
        let json = report.finish().to_json();
        if let Err(e) = ledger.archive(job.id, &json) {
            obs::warn!("archiving run report for job {}: {e}", job.id);
        }
    }

    let state = if stats.cancelled {
        JobState::Cancelled
    } else {
        JobState::Done
    };
    Ok(LearnOutcome {
        state,
        detail: format!(
            "{clauses} clause(s), {uncovered_pos} uncovered positive(s), bc {:?}, search {:?}",
            stats.bc_time, stats.search_time
        ),
        clauses,
        uncovered_pos,
        bc_secs: stats.bc_time.as_secs_f64(),
        search_secs: stats.search_time.as_secs_f64(),
        plan_compiled,
        plan_fallback,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_options_and_rejects_garbage() {
        let spec = JobSpec::parse("").unwrap();
        assert!(spec.model_name.is_none());
        assert_eq!(spec.bias, BiasChoice::Auto);

        let spec = JobSpec::parse(
            "name mymodel\nbias manual\nsampling full\ndepth 3\nseed 42\nmax-clauses 5\nreduce false\n",
        )
        .unwrap();
        assert_eq!(spec.model_name.as_deref(), Some("mymodel"));
        assert_eq!(spec.bias, BiasChoice::Manual);
        assert!(matches!(spec.sampling, SamplingStrategy::Full));
        assert_eq!(spec.depth, 3);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.max_clauses, 5);
        assert!(!spec.reduce);

        assert!(JobSpec::parse("bias nonsense").is_err());
        assert!(JobSpec::parse("sampling nonsense").is_err());
        assert!(JobSpec::parse("frobnicate 9").is_err());
        assert!(JobSpec::parse("justakey").is_err());
    }

    #[test]
    fn job_runs_to_done_and_registers_model() {
        let ds = Arc::new(datasets::uw::generate(
            &datasets::uw::UwConfig {
                students: 20,
                professors: 8,
                courses: 10,
                advised_pairs: 10,
                negatives: 20,
                evidence_prob: 1.0,
                ..datasets::uw::UwConfig::default()
            },
            3,
        ));
        let dir = std::env::temp_dir().join(format!("autobias_jobs_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (registry, _) = ModelRegistry::open(&ds.db, &dir).unwrap();
        let registry = Arc::new(registry);

        let ledger = Arc::new(RunLedger::open(dir.join("runs"), RunLedger::DEFAULT_CAP).unwrap());
        let mgr = JobManager::new();
        let spec = JobSpec::parse("name learned\nbias manual\n").unwrap();
        let job = mgr.spawn_learn(
            spec,
            ds.clone(),
            registry.clone(),
            Some(ledger.clone()),
            None,
        );
        job.wait();
        let status = job.status();
        assert_eq!(status.state, JobState::Done, "{}", status.detail);
        assert!(status.clauses > 0);
        assert!(registry.get("learned").is_some());
        assert!(dir.join("learned.model").exists());

        // The final compile outcome is part of the terminal status: every
        // learned clause either compiled or was declined to the interpreter.
        let compiled = status.plan_compiled.expect("compile outcome recorded");
        let fallback = status.plan_fallback.expect("compile outcome recorded");
        assert_eq!(compiled + fallback, status.clauses);

        // Live progress fields settled to the final values.
        assert_eq!(status.pos_total, ds.pos.len());
        assert_eq!(status.pos_covered, status.pos_total - status.uncovered_pos);
        assert!(status.iteration >= 1, "at least one iteration recorded");

        // The event log replayed the whole run and is closed.
        assert!(job.events.is_closed());
        let batch = job
            .events
            .wait_from(0, std::time::Duration::from_millis(10));
        assert!(batch.closed);
        assert!(
            batch.frames.len() >= 3,
            "bc build + iterations + finished, got {}",
            batch.frames.len()
        );
        assert!(batch.frames[0].starts_with("event: bc_build_finished\n"));
        assert!(batch
            .frames
            .last()
            .unwrap()
            .starts_with("event: finished\n"));

        // The run report landed in the ledger and matches the outcome.
        let json = ledger.get(job.id).expect("archived report");
        let report = obs::json::Json::parse(&json).expect("report is valid JSON");
        assert_eq!(
            report.path(&["outcome", "clauses"]).unwrap().as_f64(),
            Some(status.clauses as f64)
        );
        assert_eq!(report.get("dataset").unwrap().as_str(), Some("UW"));
        // Every job is traced; the archived report correlates back to the
        // job's span tree via its trace id.
        assert_eq!(job.trace_id.len(), 32);
        assert!(job.trace_id.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(
            report.get("trace_id").unwrap().as_str(),
            Some(job.trace_id.as_str())
        );
        assert_eq!(
            report.path(&["plan", "compiled_clauses"]).unwrap().as_f64(),
            Some(compiled as f64),
            "archived report carries the compile outcome (schema v2)"
        );

        // A pre-cancelled job terminates as cancelled with an empty model.
        let spec = JobSpec::parse("name cancelled-model\nbias manual\n").unwrap();
        let job2 = mgr.spawn_learn(spec, ds, registry.clone(), None, None);
        job2.cancel();
        mgr.shutdown();
        let status = job2.status();
        assert!(
            status.state.is_terminal(),
            "cancelled job must terminate, got {:?}",
            status.state
        );
        assert!(job2.events.is_closed(), "terminal job closes its event log");
        std::fs::remove_dir_all(&dir).ok();
    }
}
