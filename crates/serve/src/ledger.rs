//! The bounded on-disk run ledger: one `run-{id}.json` file per finished
//! learning job, pruned oldest-first past a cap so a long-lived server's
//! report archive cannot grow without bound. Served by `GET /runs` and
//! `GET /runs/{id}`.

use std::io;
use std::path::{Path, PathBuf};

/// A directory of archived [`obs::RunReport`] JSON files, bounded to
/// [`RunLedger::DEFAULT_CAP`] entries.
pub struct RunLedger {
    dir: PathBuf,
    cap: usize,
}

impl RunLedger {
    /// Default retention: job ids are monotonic per server process, so 64
    /// reports comfortably outlive any polling client while keeping the
    /// archive to a few MB.
    pub const DEFAULT_CAP: usize = 64;

    /// Opens (creating if needed) the ledger directory.
    pub fn open(dir: impl Into<PathBuf>, cap: usize) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            cap: cap.max(1),
        })
    }

    /// The ledger directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Archives one report under `run-{id}.json`, then prunes the oldest
    /// entries (by id) past the cap.
    pub fn archive(&self, id: u64, json: &str) -> io::Result<PathBuf> {
        let path = self.dir.join(format!("run-{id}.json"));
        std::fs::write(&path, json)?;
        let mut ids = self.list();
        if ids.len() > self.cap {
            ids.sort_unstable();
            for old in &ids[..ids.len() - self.cap] {
                let _ = std::fs::remove_file(self.dir.join(format!("run-{old}.json")));
            }
        }
        Ok(path)
    }

    /// Archived run ids, ascending.
    pub fn list(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| {
                        e.file_name()
                            .to_str()?
                            .strip_prefix("run-")?
                            .strip_suffix(".json")?
                            .parse()
                            .ok()
                    })
                    .collect()
            })
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    /// The archived report JSON for `id`, if still retained.
    pub fn get(&self, id: u64) -> Option<String> {
        std::fs::read_to_string(self.dir.join(format!("run-{id}.json"))).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_list_get_and_prune() {
        let dir = std::env::temp_dir().join(format!(
            "autobias_ledger_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let ledger = RunLedger::open(&dir, 3).unwrap();
        assert!(ledger.list().is_empty());
        assert!(ledger.get(1).is_none());

        for id in 1..=5u64 {
            ledger.archive(id, &format!("{{\"id\": {id}}}")).unwrap();
        }
        assert_eq!(ledger.list(), vec![3, 4, 5], "oldest pruned past cap");
        assert!(ledger.get(1).is_none());
        assert_eq!(ledger.get(5).as_deref(), Some("{\"id\": 5}"));

        // Reopening sees the surviving entries.
        let reopened = RunLedger::open(&dir, 3).unwrap();
        assert_eq!(reopened.list(), vec![3, 4, 5]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
