//! The per-job live event log behind `GET /jobs/{id}/events`.
//!
//! The learning thread pushes pre-rendered SSE frames; any number of stream
//! handlers replay the log from the beginning and then block on a condvar
//! for more, so a watcher attaching mid-run still sees the whole story. The
//! log is bounded: past [`EventLog::DEFAULT_CAP`] frames the oldest are
//! dropped (tracked by a rising `start` offset, so late readers know how
//! many they missed rather than silently skipping).

use std::sync::{Condvar, Mutex};
use std::time::Duration;

#[derive(Default)]
struct Inner {
    frames: Vec<String>,
    /// Log index of `frames[0]`; rises when old frames are dropped.
    start: usize,
    closed: bool,
}

/// A bounded, closable, multi-reader log of pre-rendered SSE frames.
pub struct EventLog {
    inner: Mutex<Inner>,
    cond: Condvar,
    cap: usize,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::with_cap(Self::DEFAULT_CAP)
    }
}

/// What one blocking read returned.
#[derive(Debug)]
pub struct Batch {
    /// Frames from the requested index on (empty on a pure timeout).
    pub frames: Vec<String>,
    /// Index to pass to the next [`EventLog::wait_from`] call.
    pub next: usize,
    /// Frames the reader missed because the bounded log dropped them.
    pub missed: usize,
    /// Whether the log is closed (no more frames will ever arrive).
    pub closed: bool,
}

impl EventLog {
    /// Default frame cap. A learning run emits a handful of events per
    /// covering-loop iteration, so thousands of frames means hundreds of
    /// iterations — far past what a progress view needs verbatim.
    pub const DEFAULT_CAP: usize = 4096;

    /// Creates a log bounded to `cap` frames.
    pub fn with_cap(cap: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Appends a frame and wakes blocked readers. No-op after [`close`].
    ///
    /// [`close`]: EventLog::close
    pub fn push(&self, frame: String) {
        let mut g = self.inner.lock().expect("event log poisoned");
        if g.closed {
            return;
        }
        if g.frames.len() >= self.cap {
            let drop_n = g.frames.len() + 1 - self.cap;
            g.frames.drain(..drop_n);
            g.start += drop_n;
        }
        g.frames.push(frame);
        drop(g);
        self.cond.notify_all();
    }

    /// Marks the log complete and wakes all readers. Idempotent.
    pub fn close(&self) {
        self.inner.lock().expect("event log poisoned").closed = true;
        self.cond.notify_all();
    }

    /// Whether [`close`](EventLog::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("event log poisoned").closed
    }

    /// Total frames ever pushed.
    pub fn len(&self) -> usize {
        let g = self.inner.lock().expect("event log poisoned");
        g.start + g.frames.len()
    }

    /// Whether no frame has ever been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns frames from log index `from` on, blocking up to `timeout`
    /// when none are available yet. A timeout returns an empty batch with
    /// `closed: false`, letting the caller write a keep-alive or re-check
    /// its socket.
    pub fn wait_from(&self, from: usize, timeout: Duration) -> Batch {
        let mut g = self.inner.lock().expect("event log poisoned");
        if g.start + g.frames.len() <= from && !g.closed {
            let (guard, _) = self
                .cond
                .wait_timeout_while(g, timeout, |i| {
                    i.start + i.frames.len() <= from && !i.closed
                })
                .expect("event log poisoned");
            g = guard;
        }
        let effective = from.max(g.start);
        Batch {
            frames: g.frames[effective - g.start..].to_vec(),
            next: g.start + g.frames.len(),
            missed: effective - from,
            closed: g.closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn replay_then_live_then_close() {
        let log = Arc::new(EventLog::default());
        log.push("a".into());
        log.push("b".into());

        // Replay from the start.
        let b = log.wait_from(0, Duration::from_millis(10));
        assert_eq!(b.frames, vec!["a", "b"]);
        assert_eq!(b.next, 2);
        assert_eq!(b.missed, 0);
        assert!(!b.closed);

        // A blocked reader is woken by a concurrent push.
        let writer = {
            let log = log.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                log.push("c".into());
                log.close();
            })
        };
        let b = log.wait_from(2, Duration::from_secs(5));
        assert_eq!(b.frames, vec!["c"]);
        writer.join().unwrap();

        // After close, a drained reader sees closed immediately.
        let t0 = Instant::now();
        let b = log.wait_from(3, Duration::from_secs(5));
        assert!(b.frames.is_empty());
        assert!(b.closed);
        assert!(t0.elapsed() < Duration::from_secs(1), "no pointless wait");
        assert!(log.is_closed());

        // Pushes after close are ignored.
        log.push("zombie".into());
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn timeout_returns_empty_open_batch() {
        let log = EventLog::default();
        let b = log.wait_from(0, Duration::from_millis(5));
        assert!(b.frames.is_empty());
        assert!(!b.closed);
        assert_eq!(b.next, 0);
    }

    #[test]
    fn bounded_log_reports_missed_frames() {
        let log = EventLog::with_cap(3);
        for i in 0..10 {
            log.push(format!("f{i}"));
        }
        assert_eq!(log.len(), 10);
        let b = log.wait_from(0, Duration::from_millis(5));
        assert_eq!(b.frames, vec!["f7", "f8", "f9"]);
        assert_eq!(b.missed, 7);
        assert_eq!(b.next, 10);
    }
}
