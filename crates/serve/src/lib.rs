//! # autobias-serve — a resident prediction and learning server
//!
//! The batch CLI pays the dominant cost — loading the dataset and building
//! indexes — on every invocation. This crate keeps one immutable
//! [`relstore::Database`] resident and serves predictions, model management,
//! and background learning jobs over a small plain-text HTTP/1.1 API
//! (`autobias serve --data DIR --models DIR`).
//!
//! Design constraints, in keeping with the rest of the workspace:
//!
//! - **No async runtime, no HTTP framework.** A `TcpListener` accept loop
//!   feeds a bounded thread pool ([`pool`]); the protocol layer ([`http`])
//!   parses exactly the subset of HTTP/1.1 the API needs.
//! - **The database is never written after load.** Model files may mention
//!   constants absent from the data; they resolve to ephemeral ids via
//!   [`relstore::ConstResolver`] instead of interning ([`registry`]).
//! - **Models swap atomically.** The registry replaces an `Arc`'d map on
//!   reload; in-flight requests keep the snapshot they started with.
//! - **Jobs are cancellable.** Learning runs on dedicated threads polling a
//!   cancellation flag through
//!   [`autobias::learn::Learner::learn_cancellable`] ([`jobs`]).
//! - **Observable.** `GET /metrics` exports request counters, latency
//!   histograms, and the core engine's subsumption/coverage/bottom-clause
//!   counters in the Prometheus text format ([`metrics`]). Every learning
//!   job additionally feeds a flight recorder: live progress in
//!   `GET /jobs/{id}` and as an SSE stream on `GET /jobs/{id}/events`
//!   ([`events`]), plus an archived JSON run report in a bounded on-disk
//!   ledger served by `GET /runs/{id}` ([`ledger`]).
//! - **Traceable.** Every request runs under an [`obs::trace::TraceCtx`]
//!   (W3C `traceparent` in, `x-autobias-trace-id` out); requests that
//!   error, fall back to the interpreter, or land above a rolling latency
//!   threshold keep their full span tree in a bounded store behind
//!   `GET /debug/traces` ([`trace`]), and an optional JSONL access log
//!   ([`access_log`]) carries one correlated line per request.
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod access_log;
pub mod events;
pub mod http;
pub mod jobs;
pub mod ledger;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod server;
pub mod slow;
pub mod trace;

pub use server::{serve, ServeConfig, ServerHandle};
