//! The coverage cache and the worker-thread count are *transparent*: with
//! the same seed and data, learning with `AUTOBIAS_COVERAGE_CACHE=0` (memo
//! disabled) or with any `AUTOBIAS_THREADS` value must produce a definition
//! identical to the default run. The memo only changes *when* subsumption
//! tests run, never their answers; the monotone negative cutoff only skips
//! candidates that could never enter the beam (see DESIGN.md §10).
//!
//! These tests mutate process environment variables, so they live in their
//! own integration-test binary (own process) and serialize on [`ENV_LOCK`]
//! against the test harness's thread pool.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point
#![cfg(not(miri))] // proptest-heavy: hundreds of cases, far too slow under miri

use autobias::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::Database;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

const BIAS_TEXT: &str = "
pred r(T1, T1)
pred s(T1, T1)
pred u(T1)
pred t(T1, T1)
mode r(+, -)
mode s(+, -)
mode s(-, +)
mode u(+)
";

/// A learnable world: positives follow the chain `r(a, m), s(m, b), u(m)`,
/// negatives break it, plus seed-dependent noise tuples so different cases
/// stress different memo/beam shapes.
fn build_world(seed: u64, n_chains: usize, n_noise: usize) -> (Database, TrainingSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let r = db.add_relation("r", &["a", "b"]);
    let s = db.add_relation("s", &["a", "b"]);
    let u = db.add_relation("u", &["a"]);
    let t = db.add_relation("t", &["a", "b"]);
    for i in 0..n_chains {
        db.insert(r, &[&format!("a{i}"), &format!("m{i}")]);
        db.insert(s, &[&format!("m{i}"), &format!("b{i}")]);
        db.insert(u, &[&format!("m{i}")]);
        db.insert(t, &[&format!("a{i}"), &format!("b{i}")]);
    }
    for _ in 0..n_noise {
        let (i, j) = (rng.random_range(0..n_chains), rng.random_range(0..n_chains));
        match rng.random_range(0..3u32) {
            0 => db.insert(r, &[&format!("a{i}"), &format!("m{j}")]),
            1 => db.insert(s, &[&format!("m{i}"), &format!("b{j}")]),
            _ => db.insert(u, &[&format!("b{i}")]),
        };
    }
    db.build_indexes();

    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for i in 0..n_chains {
        let a = db.lookup(&format!("a{i}")).unwrap();
        let b = db.lookup(&format!("b{i}")).unwrap();
        let b_other = db.lookup(&format!("b{}", (i + 1) % n_chains)).unwrap();
        pos.push(Example::new(t, vec![a, b]));
        neg.push(Example::new(t, vec![a, b_other]));
    }
    (db, TrainingSet::new(pos, neg))
}

/// Runs one full learning pass with `var` set to `value` (or unset), under
/// the env lock, restoring the previous value afterwards.
fn learn_with_env(
    var: &str,
    value: Option<&str>,
    seed: u64,
    db: &Database,
    train: &TrainingSet,
) -> Definition {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved = std::env::var(var).ok();
    match value {
        Some(v) => std::env::set_var(var, v),
        None => std::env::remove_var(var),
    }
    let t = db.rel_id("t").unwrap();
    let bias = parse_bias(db, t, BIAS_TEXT).unwrap();
    let learner = Learner::new(LearnerConfig {
        seed,
        ..LearnerConfig::default()
    });
    let (definition, _) = learner.learn(db, &bias, train);
    match saved {
        Some(v) => std::env::set_var(var, &v),
        None => std::env::remove_var(var),
    }
    definition
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cache on vs off: byte-identical definitions from the same seed.
    #[test]
    fn cache_off_learns_identical_definition(
        seed in 0u64..u64::MAX / 2,
        n_chains in 3usize..6,
        n_noise in 0usize..8,
    ) {
        let (db, train) = build_world(seed, n_chains, n_noise);
        let cached = learn_with_env("AUTOBIAS_COVERAGE_CACHE", None, seed, &db, &train);
        let uncached = learn_with_env("AUTOBIAS_COVERAGE_CACHE", Some("0"), seed, &db, &train);
        prop_assert_eq!(
            &cached,
            &uncached,
            "seed {}: cache on learned {:?}, cache off learned {:?}",
            seed,
            cached.render(&db),
            uncached.render(&db)
        );
        // The planted chain is learnable — guard against the comparison
        // passing vacuously on two empty definitions.
        prop_assert!(!cached.is_empty(), "seed {}: nothing learned", seed);
    }

    /// One worker thread vs eight: byte-identical definitions. Coverage RNG
    /// streams are per-example and negative counting advances in fixed
    /// chunks, so the thread count must never leak into results.
    #[test]
    fn thread_count_learns_identical_definition(
        seed in 0u64..u64::MAX / 2,
        n_chains in 3usize..6,
        n_noise in 0usize..8,
    ) {
        let (db, train) = build_world(seed, n_chains, n_noise);
        let one = learn_with_env("AUTOBIAS_THREADS", Some("1"), seed, &db, &train);
        let eight = learn_with_env("AUTOBIAS_THREADS", Some("8"), seed, &db, &train);
        prop_assert_eq!(
            &one,
            &eight,
            "seed {}: 1 thread learned {:?}, 8 threads learned {:?}",
            seed,
            one.render(&db),
            eight.render(&db)
        );
        prop_assert!(!one.is_empty(), "seed {}: nothing learned", seed);
    }
}

/// The escape hatch really disables the memo (and the default enables it):
/// checked through the engine directly so a wiring regression can't hide
/// behind identical learning output.
#[test]
fn escape_hatch_controls_engine_cache() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (db, train) = build_world(11, 3, 0);
    let t = db.rel_id("t").unwrap();
    let bias = parse_bias(&db, t, BIAS_TEXT).unwrap();
    let build = || {
        CoverageEngine::build(
            &db,
            &bias,
            &train,
            &BcConfig::default(),
            SubsumeConfig::default(),
            7,
        )
    };
    let saved = std::env::var("AUTOBIAS_COVERAGE_CACHE").ok();
    std::env::remove_var("AUTOBIAS_COVERAGE_CACHE");
    assert!(build().cache_enabled());
    std::env::set_var("AUTOBIAS_COVERAGE_CACHE", "0");
    assert!(!build().cache_enabled());
    match saved {
        Some(v) => std::env::set_var("AUTOBIAS_COVERAGE_CACHE", &v),
        None => std::env::remove_var("AUTOBIAS_COVERAGE_CACHE"),
    }
}
