//! Differential test oracle for the θ-subsumption *engines*: on randomly
//! generated databases, the bitset forward-checking CSP and the legacy
//! randomized backtracker must return identical answers with an unbounded
//! budget, and both must agree with exact SPJ evaluation against full
//! depth-2 ground bottom clauses — three independent implementations of
//! coverage pinned against each other (paper §5).
//!
//! The clause generator chains literals mode-by-mode (as in
//! `differential_coverage.rs`), which also produces bodies that split into
//! several connected components over unbound variables — literals touching
//! only head variables detach from each other once the head binds — so the
//! component-decomposition path is exercised by the property itself and by
//! a directed multi-component test below.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point
#![cfg(not(miri))] // proptest-heavy: hundreds of cases, far too slow under miri

use autobias::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::{Database, RelId};

/// Schema: `r(a, b)` joined forward, `s(a, b)` joined either way, unary
/// `u(a)`, and the target `t(a, b)`. Single type so everything can join.
const BIAS_TEXT: &str = "
pred r(T1, T1)
pred s(T1, T1)
pred u(T1)
pred t(T1, T1)
mode r(+, -)
mode s(+, -)
mode s(-, +)
mode u(+)
";

struct World {
    db: Database,
    bias: LanguageBias,
    examples: Vec<Example>,
    clauses: Vec<Clause>,
    seed: u64,
}

#[derive(Clone, Copy)]
struct Rels {
    r: RelId,
    s: RelId,
    u: RelId,
    t: RelId,
}

fn build_world(seed: u64, n_consts: usize, n_r: usize, n_s: usize) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let r = db.add_relation("r", &["a", "b"]);
    let s = db.add_relation("s", &["a", "b"]);
    let u = db.add_relation("u", &["a"]);
    let t = db.add_relation("t", &["a", "b"]);
    let rels = Rels { r, s, u, t };

    let names: Vec<String> = (0..n_consts).map(|i| format!("c{i}")).collect();
    // Intern every constant so examples can name it; the target relation's
    // contents are never probed (no mode on `t`), so this is inert.
    for name in &names {
        db.insert(t, &[name, name]);
    }
    let pick = |rng: &mut StdRng| rng.random_range(0..n_consts);
    for _ in 0..n_r {
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        db.insert(r, &[&names[a], &names[b]]);
    }
    for _ in 0..n_s {
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        db.insert(s, &[&names[a], &names[b]]);
    }
    for name in &names {
        if rng.random_range(0..2u32) == 0 {
            db.insert(u, &[name]);
        }
    }
    db.build_indexes();

    let consts: Vec<_> = names.iter().map(|n| db.lookup(n).unwrap()).collect();
    let examples: Vec<Example> = (0..5)
        .map(|_| {
            let (a, b) = (rng.random_range(0..n_consts), rng.random_range(0..n_consts));
            Example::new(t, vec![consts[a], consts[b]])
        })
        .collect();
    let clauses: Vec<Clause> = (0..6).map(|_| random_clause(&mut rng, rels)).collect();
    let bias = parse_bias(&db, t, BIAS_TEXT).unwrap();
    World {
        db,
        bias,
        examples,
        clauses,
        seed,
    }
}

/// A random clause inside the depth-2 mode language (see
/// `differential_coverage.rs` for the depth-tracking rationale).
fn random_clause(rng: &mut StdRng, rels: Rels) -> Clause {
    let mut depth: Vec<usize> = vec![0, 0];
    let mut body = Vec::new();
    for _ in 0..rng.random_range(0..=4usize) {
        let eligible: Vec<u32> = (0..depth.len() as u32)
            .filter(|&v| depth[v as usize] <= 1)
            .collect();
        let input = VarId(eligible[rng.random_range(0..eligible.len())]);
        let out_depth = depth[input.0 as usize] + 1;
        match rng.random_range(0..4u32) {
            0 => {
                let out = out_term(rng, &mut depth, out_depth);
                body.push(Literal::new(rels.r, vec![Term::Var(input), out]));
            }
            1 => {
                let out = out_term(rng, &mut depth, out_depth);
                body.push(Literal::new(rels.s, vec![Term::Var(input), out]));
            }
            2 => {
                let out = out_term(rng, &mut depth, out_depth);
                body.push(Literal::new(rels.s, vec![out, Term::Var(input)]));
            }
            _ => body.push(Literal::new(rels.u, vec![Term::Var(input)])),
        }
    }
    Clause::new(
        Literal::new(rels.t, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]),
        body,
    )
}

fn out_term(rng: &mut StdRng, depth: &mut Vec<usize>, out_depth: usize) -> Term {
    if depth.len() > 2 && rng.random_range(0..2u32) == 0 {
        Term::Var(VarId(rng.random_range(0..depth.len() as u32)))
    } else {
        let v = VarId(depth.len() as u32);
        depth.push(out_depth);
        Term::Var(v)
    }
}

fn full_bc(world: &World, example: &Example, rng: &mut StdRng) -> GroundClause {
    build_bottom_clause(
        &world.db,
        &world.bias,
        example,
        &BcConfig {
            depth: 2,
            strategy: SamplingStrategy::Full,
            max_tuples: 1_000_000,
            max_body_literals: 1_000_000,
        },
        rng,
    )
    .ground
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The three-way differential property: for every (clause, example)
    /// pair, the bitset CSP, the legacy backtracker (both unbounded), and
    /// exact SPJ evaluation return the same answer.
    #[test]
    fn engines_agree_with_each_other_and_spj(
        seed in 0u64..u64::MAX / 2,
        n_consts in 4usize..9,
        n_r in 0usize..14,
        n_s in 0usize..14,
    ) {
        let world = build_world(seed, n_consts, n_r, n_s);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x005b_5e17);
        let qcfg = QueryConfig::default();
        let scfg = SubsumeConfig::unbounded();
        for example in &world.examples {
            let bc = full_bc(&world, example, &mut rng);
            for clause in &world.clauses {
                let bitset = theta_subsumes_with(SubsumeEngine::Bitset, clause, &bc, &scfg);
                let legacy = theta_subsumes_with(SubsumeEngine::Legacy, clause, &bc, &scfg);
                let spj = clause_covers(&world.db, clause, example, &qcfg);
                prop_assert_eq!(
                    bitset,
                    legacy,
                    "seed {}: engines disagree on {} for {}",
                    world.seed,
                    example.render(&world.db),
                    clause.render(&world.db)
                );
                prop_assert_eq!(
                    bitset,
                    spj,
                    "seed {}: subsumption vs SPJ on {} for {}",
                    world.seed,
                    example.render(&world.db),
                    clause.render(&world.db)
                );
            }
        }
    }

    /// Budgeted searches stay one-sided in both engines: any "covered" from
    /// a tightly budgeted run is confirmed by the unbounded legacy search,
    /// and a clause the unbounded search accepts is never reported covered
    /// differently by the two budgeted engines' *positive* answers.
    #[test]
    fn budgets_are_one_sided_in_both_engines(
        seed in 0u64..u64::MAX / 2,
        n_consts in 4usize..9,
        n_r in 0usize..14,
        n_s in 0usize..14,
        node_limit in 1usize..40,
    ) {
        let world = build_world(seed, n_consts, n_r, n_s);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0b1d);
        let tight = SubsumeConfig { node_limit, max_restarts: 1 };
        let full = SubsumeConfig::unbounded();
        for example in &world.examples {
            let bc = full_bc(&world, example, &mut rng);
            for clause in &world.clauses {
                let truth = theta_subsumes_with(SubsumeEngine::Legacy, clause, &bc, &full);
                for engine in [SubsumeEngine::Bitset, SubsumeEngine::Legacy] {
                    if theta_subsumes_with(engine, clause, &bc, &tight) {
                        prop_assert!(
                            truth,
                            "seed {}: {:?} returned a false \"covered\" under budget {}",
                            world.seed,
                            engine,
                            node_limit
                        );
                    }
                }
            }
        }
    }
}

/// Directed decomposition test: a body that splits into three independent
/// components once the head binds — two satisfiable, one not — must be
/// rejected by both engines, and becomes accepted in both when the failing
/// component is dropped. Guards the per-component conjunction: solving
/// components independently must still require *every* component.
#[test]
fn decomposition_preserves_the_conjunction_in_both_engines() {
    let mut db = Database::new();
    let r = db.add_relation("r", &["a", "b"]);
    let s = db.add_relation("s", &["a", "b"]);
    let u = db.add_relation("u", &["a"]);
    let t = db.add_relation("t", &["a", "b"]);
    db.insert(r, &["x", "m"]); // component 1: r(V0, F1) — satisfiable
    db.insert(s, &["y", "k"]); // component 2: s(V1, F2) — satisfiable
    db.insert(u, &["z"]); // component 3: u(V0) — x is NOT in u
    db.build_indexes();
    let x = db.lookup("x").unwrap();
    let y = db.lookup("y").unwrap();

    let ground = GroundClause::new(
        Example::new(t, vec![x, y]),
        vec![
            GroundLiteral {
                rel: r,
                vals: vec![x, db.lookup("m").unwrap()].into(),
            },
            GroundLiteral {
                rel: s,
                vals: vec![y, db.lookup("k").unwrap()].into(),
            },
            GroundLiteral {
                rel: u,
                vals: vec![db.lookup("z").unwrap()].into(),
            },
        ],
    );

    let v = |n| Term::Var(VarId(n));
    // Three components over unbound vars: {F2}, {F3}, and the var-free u(V0).
    let failing = Clause::new(
        Literal::new(t, vec![v(0), v(1)]),
        vec![
            Literal::new(r, vec![v(0), v(2)]),
            Literal::new(s, vec![v(1), v(3)]),
            Literal::new(u, vec![v(0)]), // u(x) does not hold
        ],
    );
    let passing = Clause::new(
        Literal::new(t, vec![v(0), v(1)]),
        vec![
            Literal::new(r, vec![v(0), v(2)]),
            Literal::new(s, vec![v(1), v(3)]),
        ],
    );
    let cfg = SubsumeConfig::unbounded();
    for engine in [SubsumeEngine::Bitset, SubsumeEngine::Legacy] {
        assert!(
            !theta_subsumes_with(engine, &failing, &ground, &cfg),
            "{engine:?} accepted a clause whose third component fails"
        );
        assert!(
            theta_subsumes_with(engine, &passing, &ground, &cfg),
            "{engine:?} rejected a clause with two satisfiable components"
        );
    }
}

/// Integration-level seed stability: the answer for a (clause, ground BC)
/// pair does not depend on how many other subsumption tests ran before it.
/// Runs the whole differential workload twice — once fresh, once after a
/// burn-in pass over shuffled pairs — and demands identical answer vectors.
#[test]
fn answers_do_not_depend_on_test_history() {
    let world = build_world(0xfeed_5eed, 7, 12, 12);
    let mut rng = StdRng::seed_from_u64(1);
    let bcs: Vec<GroundClause> = world
        .examples
        .iter()
        .map(|e| full_bc(&world, e, &mut rng))
        .collect();
    let cfg = SubsumeConfig {
        node_limit: 50,
        max_restarts: 2,
    };
    let run = |engine: SubsumeEngine| -> Vec<bool> {
        let mut out = Vec::new();
        for bc in &bcs {
            for clause in &world.clauses {
                out.push(theta_subsumes_with(engine, clause, bc, &cfg));
            }
        }
        out
    };
    for engine in [SubsumeEngine::Bitset, SubsumeEngine::Legacy] {
        let fresh = run(engine);
        // Burn-in: interleave unrelated tests, then re-ask in reverse order.
        for clause in world.clauses.iter().rev() {
            for bc in bcs.iter().rev() {
                theta_subsumes_with(engine, clause, bc, &cfg);
            }
        }
        let again = run(engine);
        assert_eq!(
            fresh, again,
            "{engine:?} gave history-dependent answers under a budget"
        );
    }
}
