//! Differential test oracle for coverage testing: on randomly generated
//! databases, θ-subsumption against a *full* (unsampled) depth-2 ground
//! bottom clause with an unbounded search budget must agree with exact
//! SPJ evaluation (`autobias::query::clause_covers`) on every example —
//! the paper's §5 equivalence, checked as a property instead of on one
//! hand-picked instance.
//!
//! The equivalence only holds for clauses *within the language bias*: every
//! body literal must conform to a mode and introduce variables within the
//! BC depth. The clause generator therefore chains literals mode-by-mode,
//! tracking each variable's introduction depth, exactly the shape armg
//! candidates have during learning.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point
#![cfg(not(miri))] // proptest-heavy: hundreds of cases, far too slow under miri

use autobias::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::{Database, RelId};

/// Schema: `r(a, b)` joined forward, `s(a, b)` joined either way, unary
/// `u(a)`, and the target `t(a, b)`. Single type so everything can join.
const BIAS_TEXT: &str = "
pred r(T1, T1)
pred s(T1, T1)
pred u(T1)
pred t(T1, T1)
mode r(+, -)
mode s(+, -)
mode s(-, +)
mode u(+)
";

struct World {
    db: Database,
    bias: LanguageBias,
    examples: Vec<Example>,
    clauses: Vec<Clause>,
    seed: u64,
}

#[derive(Clone, Copy)]
struct Rels {
    r: RelId,
    s: RelId,
    u: RelId,
    t: RelId,
}

fn build_world(seed: u64, n_consts: usize, n_r: usize, n_s: usize) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let r = db.add_relation("r", &["a", "b"]);
    let s = db.add_relation("s", &["a", "b"]);
    let u = db.add_relation("u", &["a"]);
    let t = db.add_relation("t", &["a", "b"]);
    let rels = Rels { r, s, u, t };

    let names: Vec<String> = (0..n_consts).map(|i| format!("c{i}")).collect();
    // Intern every constant so examples can name it; the target relation's
    // contents are never probed (no mode on `t`), so this is inert.
    for name in &names {
        db.insert(t, &[name, name]);
    }
    let pick = |rng: &mut StdRng| rng.random_range(0..n_consts);
    for _ in 0..n_r {
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        db.insert(r, &[&names[a], &names[b]]);
    }
    for _ in 0..n_s {
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        db.insert(s, &[&names[a], &names[b]]);
    }
    for name in &names {
        if rng.random_range(0..2u32) == 0 {
            db.insert(u, &[name]);
        }
    }
    db.build_indexes();

    let consts: Vec<_> = names.iter().map(|n| db.lookup(n).unwrap()).collect();
    let examples: Vec<Example> = (0..5)
        .map(|_| {
            let (a, b) = (rng.random_range(0..n_consts), rng.random_range(0..n_consts));
            Example::new(t, vec![consts[a], consts[b]])
        })
        .collect();
    let clauses: Vec<Clause> = (0..6).map(|_| random_clause(&mut rng, rels)).collect();
    let bias = parse_bias(&db, t, BIAS_TEXT).unwrap();
    World {
        db,
        bias,
        examples,
        clauses,
        seed,
    }
}

/// A random clause inside the depth-2 mode language: each literal's `+`
/// argument is an existing variable of introduction depth ≤ 1 (so the tuples
/// witnessing it are collected within two BC expansion rounds), and output
/// positions either introduce a fresh variable or rejoin an existing one.
fn random_clause(rng: &mut StdRng, rels: Rels) -> Clause {
    // depth[v] = introduction depth of variable v; 0 and 1 are the head vars.
    let mut depth: Vec<usize> = vec![0, 0];
    let mut body = Vec::new();
    for _ in 0..rng.random_range(0..=3usize) {
        let eligible: Vec<u32> = (0..depth.len() as u32)
            .filter(|&v| depth[v as usize] <= 1)
            .collect();
        let input = VarId(eligible[rng.random_range(0..eligible.len())]);
        let out_depth = depth[input.0 as usize] + 1;
        match rng.random_range(0..4u32) {
            0 => {
                let out = out_term(rng, &mut depth, out_depth);
                body.push(Literal::new(rels.r, vec![Term::Var(input), out]));
            }
            1 => {
                let out = out_term(rng, &mut depth, out_depth);
                body.push(Literal::new(rels.s, vec![Term::Var(input), out]));
            }
            2 => {
                let out = out_term(rng, &mut depth, out_depth);
                body.push(Literal::new(rels.s, vec![out, Term::Var(input)]));
            }
            _ => body.push(Literal::new(rels.u, vec![Term::Var(input)])),
        }
    }
    Clause::new(
        Literal::new(rels.t, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]),
        body,
    )
}

/// An output (`-`) position: half the time a fresh variable at `out_depth`,
/// half the time a rejoin of any existing variable (output positions never
/// feed BC probes, so rejoining even a depth-2 variable stays in-language).
fn out_term(rng: &mut StdRng, depth: &mut Vec<usize>, out_depth: usize) -> Term {
    if depth.len() > 2 && rng.random_range(0..2u32) == 0 {
        Term::Var(VarId(rng.random_range(0..depth.len() as u32)))
    } else {
        let v = VarId(depth.len() as u32);
        depth.push(out_depth);
        Term::Var(v)
    }
}

fn full_bc(world: &World, example: &Example, rng: &mut StdRng) -> GroundClause {
    build_bottom_clause(
        &world.db,
        &world.bias,
        example,
        &BcConfig {
            depth: 2,
            strategy: SamplingStrategy::Full,
            max_tuples: 1_000_000,
            max_body_literals: 1_000_000,
        },
        rng,
    )
    .ground
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The core differential property: for every (clause, example) pair,
    /// unbounded θ-subsumption against the full ground BC and exact SPJ
    /// evaluation return the same answer.
    #[test]
    fn subsumption_against_full_bc_agrees_with_spj(
        seed in 0u64..u64::MAX / 2,
        n_consts in 4usize..9,
        n_r in 0usize..14,
        n_s in 0usize..14,
    ) {
        let world = build_world(seed, n_consts, n_r, n_s);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0bac_1e55);
        let qcfg = QueryConfig::default();
        let scfg = SubsumeConfig::unbounded();
        for example in &world.examples {
            let bc = full_bc(&world, example, &mut rng);
            for clause in &world.clauses {
                let by_subsumption = theta_subsumes(clause, &bc, &scfg);
                let by_query = clause_covers(&world.db, clause, example, &qcfg);
                prop_assert_eq!(
                    by_subsumption,
                    by_query,
                    "seed {} disagrees on {} for {}",
                    world.seed,
                    example.render(&world.db),
                    clause.render(&world.db)
                );
            }
        }
    }

    /// Canonicalization preserves coverage: a clause and its canonical form
    /// are α-equivalent up to body reordering, so both oracles must give the
    /// canonical form the same answer as the original. This is the semantic
    /// justification for the coverage memo keying on canonical forms.
    #[test]
    fn canonical_form_preserves_both_oracles(
        seed in 0u64..u64::MAX / 2,
        n_consts in 4usize..9,
        n_r in 0usize..14,
        n_s in 0usize..14,
    ) {
        let world = build_world(seed, n_consts, n_r, n_s);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xca90_11ca);
        let qcfg = QueryConfig::default();
        let scfg = SubsumeConfig::unbounded();
        for example in &world.examples {
            let bc = full_bc(&world, example, &mut rng);
            for clause in &world.clauses {
                let canon = canonical_form(clause);
                prop_assert_eq!(
                    theta_subsumes(clause, &bc, &scfg),
                    theta_subsumes(&canon, &bc, &scfg),
                    "seed {}: subsumption changed under canonicalization of {}",
                    world.seed,
                    clause.render(&world.db)
                );
                prop_assert_eq!(
                    clause_covers(&world.db, clause, example, &qcfg),
                    clause_covers(&world.db, &canon, example, &qcfg),
                    "seed {}: SPJ answer changed under canonicalization of {}",
                    world.seed,
                    clause.render(&world.db)
                );
            }
        }
    }
}

/// Directed companion to the property: on a fixed world where coverage is
/// known by construction, both oracles answer exactly as expected — guards
/// against the property passing vacuously (e.g. everything uncovered).
#[test]
fn oracles_agree_on_known_world() {
    let mut db = Database::new();
    let r = db.add_relation("r", &["a", "b"]);
    let s = db.add_relation("s", &["a", "b"]);
    let u = db.add_relation("u", &["a"]);
    let t = db.add_relation("t", &["a", "b"]);
    db.insert(r, &["x", "m"]);
    db.insert(s, &["m", "y"]);
    db.insert(u, &["m"]);
    db.insert(r, &["x2", "m2"]); // chain with no u(m2)
    db.insert(s, &["m2", "y2"]);
    db.build_indexes();
    let bias = parse_bias(&db, t, BIAS_TEXT).unwrap();

    let v = |n| Term::Var(VarId(n));
    // t(a, b) ← r(a, z), s(z, b), u(z)
    let clause = Clause::new(
        Literal::new(t, vec![v(0), v(1)]),
        vec![
            Literal::new(r, vec![v(0), v(2)]),
            Literal::new(s, vec![v(2), v(1)]),
            Literal::new(u, vec![v(2)]),
        ],
    );
    let x = db.lookup("x").unwrap();
    let y = db.lookup("y").unwrap();
    let x2 = db.lookup("x2").unwrap();
    let y2 = db.lookup("y2").unwrap();
    let cases = [
        (Example::new(t, vec![x, y]), true),    // full chain with u
        (Example::new(t, vec![x2, y2]), false), // chain but no u(m2)
        (Example::new(t, vec![x, y2]), false),  // chains don't cross
    ];
    let mut rng = StdRng::seed_from_u64(7);
    let scfg = SubsumeConfig::unbounded();
    let qcfg = QueryConfig::default();
    for (example, expected) in &cases {
        let bc = build_bottom_clause(
            &db,
            &bias,
            example,
            &BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_tuples: 1_000_000,
                max_body_literals: 1_000_000,
            },
            &mut rng,
        )
        .ground;
        assert_eq!(
            theta_subsumes(&clause, &bc, &scfg),
            *expected,
            "subsumption wrong on {}",
            example.render(&db)
        );
        assert_eq!(
            clause_covers(&db, &clause, example, &qcfg),
            *expected,
            "SPJ wrong on {}",
            example.render(&db)
        );
    }
}
