//! The sequential covering learner (paper Algorithm 1) and the `Learner`
//! facade tying together bias, BC construction, coverage, and generalization.

use crate::bias::LanguageBias;
use crate::bottom::BcConfig;
use crate::clause::{Clause, Definition};
use crate::coverage::{Bitset, CoverageEngine};
use crate::example::TrainingSet;
use crate::generalize::{learn_clause, ConstraintStore, GenConfig};
use crate::subsume::SubsumeConfig;
use obs::progress::{NullSink, ProgressEvent, ProgressSink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relstore::Database;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The minimum criterion a clause must satisfy to enter the definition
/// (Algorithm 1, line 5).
#[derive(Debug, Clone, Copy)]
pub struct MinCriterion {
    /// Minimum training precision `p/(p+n)` of the clause.
    pub min_precision: f64,
    /// Minimum number of *new* positives the clause must cover.
    pub min_pos_covered: usize,
}

impl Default for MinCriterion {
    fn default() -> Self {
        Self {
            min_precision: 0.6,
            min_pos_covered: 1,
        }
    }
}

/// Full learner configuration.
#[derive(Debug, Clone, Copy)]
pub struct LearnerConfig {
    /// Bottom-clause construction settings (depth, sampling).
    pub bc: BcConfig,
    /// Subsumption search budget.
    pub subsume: SubsumeConfig,
    /// Beam-search settings.
    pub gen: GenConfig,
    /// Clause acceptance criterion.
    pub min: MinCriterion,
    /// Hard cap on clauses in the learned definition (guards the covering
    /// loop against pathological data).
    pub max_clauses: usize,
    /// RNG seed; every run with the same seed, data, and bias is
    /// reproducible.
    pub seed: u64,
    /// Optional wall-clock budget for one `learn` call. When exceeded, the
    /// covering loop stops and returns the definition learned so far — the
    /// reproduction of the paper's "killed after >10h" Castor rows.
    pub time_budget: Option<Duration>,
    /// Post-process each accepted clause with greedy backward literal
    /// elimination ([`crate::generalize::reduce_clause`]): same training
    /// coverage, far more readable clauses. Off by default to keep timing
    /// comparable with the paper's pipeline.
    pub reduce_clauses: bool,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        Self {
            bc: BcConfig::default(),
            subsume: SubsumeConfig::default(),
            gen: GenConfig::default(),
            min: MinCriterion::default(),
            max_clauses: 20,
            seed: 0xC0FFEE,
            time_budget: None,
            reduce_clauses: false,
        }
    }
}

/// Statistics of one learning run.
#[derive(Debug, Clone, Default)]
pub struct LearnStats {
    /// Wall-clock time building ground bottom clauses.
    pub bc_time: Duration,
    /// Wall-clock time in the covering loop (generalization + scoring).
    pub search_time: Duration,
    /// Positives left uncovered when the loop stopped.
    pub uncovered_pos: usize,
    /// Whether the time budget expired before the loop finished.
    pub timed_out: bool,
    /// Whether an external cancellation flag stopped the run early (see
    /// [`Learner::learn_cancellable`]).
    pub cancelled: bool,
    /// Clauses proposed by `LearnClause` that failed the minimum criterion.
    pub rejected_clauses: usize,
    /// Total ground-BC literals built (a proxy for sampling effort).
    pub ground_literals: usize,
}

/// The sequential covering learner.
#[derive(Debug, Clone, Default)]
pub struct Learner {
    /// Configuration used by [`Learner::learn`].
    pub cfg: LearnerConfig,
}

impl Learner {
    /// Creates a learner with the given configuration.
    pub fn new(cfg: LearnerConfig) -> Self {
        Self { cfg }
    }

    /// Learns a Horn definition for the bias's target relation from the
    /// training set (Algorithm 1).
    pub fn learn(
        &self,
        db: &Database,
        bias: &LanguageBias,
        train: &TrainingSet,
    ) -> (Definition, LearnStats) {
        static NEVER: AtomicBool = AtomicBool::new(false);
        self.learn_cancellable(db, bias, train, &NEVER)
    }

    /// [`Learner::learn`] with cooperative cancellation: `cancel` is polled
    /// before the (expensive) ground-BC build and once per covering-loop
    /// iteration. When it reads `true`, the loop stops and the definition
    /// learned so far is returned with `stats.cancelled` set. This is what
    /// lets a resident server abort background learning jobs without killing
    /// the process.
    pub fn learn_cancellable(
        &self,
        db: &Database,
        bias: &LanguageBias,
        train: &TrainingSet,
        cancel: &AtomicBool,
    ) -> (Definition, LearnStats) {
        self.learn_with_progress(db, bias, train, cancel, &NullSink)
    }

    /// [`Learner::learn_cancellable`] with a structured progress channel:
    /// `sink` receives one [`ProgressEvent`] per covering-loop decision —
    /// `BcBuildFinished` after ground-BC construction, then per iteration
    /// `IterationStarted` → `ClauseSearched` → (`ClauseAccepted` |
    /// `ClauseRejected`), and exactly one terminal `Finished` on every exit
    /// path (including cancellation before any work). This is the feed
    /// behind `--report-out` run reports, the server's live job status and
    /// SSE stream, and `autobias jobs watch`. Events fire a handful of times
    /// per run, so the virtual call is nowhere near a hot path.
    pub fn learn_with_progress(
        &self,
        db: &Database,
        bias: &LanguageBias,
        train: &TrainingSet,
        cancel: &AtomicBool,
        sink: &dyn ProgressSink,
    ) -> (Definition, LearnStats) {
        crate::instrument::register();
        let mut sp = obs::span!("learn");
        let mut stats = LearnStats::default();
        let finished = |definition: &Definition, stats: &LearnStats| ProgressEvent::Finished {
            clauses: definition.len(),
            uncovered_pos: stats.uncovered_pos,
            timed_out: stats.timed_out,
            cancelled: stats.cancelled,
            bc_us: stats.bc_time.as_micros() as u64,
            search_us: stats.search_time.as_micros() as u64,
        };
        if cancel.load(Ordering::Relaxed) {
            stats.cancelled = true;
            stats.uncovered_pos = train.pos.len();
            let definition = Definition::new();
            sink.on_event(&finished(&definition, &stats));
            return (definition, stats);
        }
        let t0 = Instant::now();
        let engine = {
            let _bc_sp = obs::span!("learn.bc_build");
            CoverageEngine::build(
                db,
                bias,
                train,
                &self.cfg.bc,
                self.cfg.subsume,
                self.cfg.seed,
            )
        };
        stats.bc_time = t0.elapsed();
        stats.ground_literals = engine.pos.iter().map(|b| b.ground.len()).sum::<usize>()
            + engine.neg.iter().map(|g| g.len()).sum::<usize>();
        sink.on_event(&ProgressEvent::BcBuildFinished {
            pos_examples: train.pos.len(),
            neg_examples: train.neg.len(),
            ground_literals: stats.ground_literals,
            elapsed_us: stats.bc_time.as_micros() as u64,
        });

        let t1 = Instant::now();
        let deadline = self.cfg.time_budget.map(|b| t0 + b);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut uncovered: Vec<usize> = (0..train.pos.len()).collect();
        let mut definition = Definition::new();
        let mut iteration = 0usize;
        // Failure constraints persist across covering iterations: the
        // uncovered set only shrinks, so zero-positive claims stay valid,
        // and negative lower bounds are against the fixed negative set.
        let mut constraints = ConstraintStore::new();

        while !uncovered.is_empty() && definition.len() < self.cfg.max_clauses {
            if cancel.load(Ordering::Relaxed) {
                stats.cancelled = true;
                break;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    stats.timed_out = true;
                    break;
                }
            }
            let seed_example = uncovered[0];
            iteration += 1;
            sink.on_event(&ProgressEvent::IterationStarted {
                iteration,
                uncovered_pos: uncovered.len(),
                clauses_so_far: definition.len(),
                seed_bc_literals: engine.pos[seed_example].clause.body.len(),
            });
            let mut gen_cfg = self.cfg.gen;
            gen_cfg.deadline = deadline;
            let (clause, cstats) = learn_clause(
                &engine,
                seed_example,
                &uncovered,
                &gen_cfg,
                &mut constraints,
                &mut rng,
            );
            sink.on_event(&ProgressEvent::ClauseSearched {
                iteration,
                beam_iterations: cstats.iterations,
                candidates_generated: cstats.candidates_generated,
                candidates_pruned: cstats.candidates_pruned,
                armg_calls: cstats.armg_calls,
            });

            let uncovered_mask = Bitset::from_indices(train.pos.len(), &uncovered);
            let covered_mask = engine.covered_pos_mask(&clause, &uncovered_mask);
            let covered_len = covered_mask.count_ones();
            let neg_covered = engine.count_neg(&clause);
            let precision = precision_of(covered_len, neg_covered);

            let accept = covered_len >= self.cfg.min.min_pos_covered
                && precision >= self.cfg.min.min_precision;
            if !accept {
                crate::instrument::CLAUSES_REJECTED.bump();
                stats.rejected_clauses += 1;
                // The seed example is unlearnable under the current budget;
                // drop it so the loop can make progress on the rest.
                uncovered.remove(0);
                sink.on_event(&ProgressEvent::ClauseRejected {
                    iteration,
                    covered_pos: covered_len,
                    covered_neg: neg_covered,
                    precision,
                });
                continue;
            }

            uncovered.retain(|&i| !covered_mask.get(i));
            let mut clause = clause;
            if self.cfg.reduce_clauses {
                clause = crate::generalize::reduce_clause(&clause, &engine);
            }
            clause.canonicalize_vars();
            // Invariants the static verifier (crates/analyze) treats as
            // Error-level for learned theories: every accepted clause is
            // head-connected (AB102; armg and reduction both re-prune) and
            // draws its literals from mode-bearing relations (AB104).
            debug_assert_eq!(
                clause.head_connected_indices().len(),
                clause.body.len(),
                "accepted clause has a disconnected literal: {}",
                clause.render(db)
            );
            debug_assert!(
                clause
                    .body
                    .iter()
                    .all(|l| bias.modes_for(l.rel).next().is_some()),
                "accepted clause uses a relation without modes: {}",
                clause.render(db)
            );
            crate::instrument::CLAUSES_ACCEPTED.bump();
            sink.on_event(&ProgressEvent::ClauseAccepted {
                iteration,
                covered_pos: covered_len,
                covered_neg: neg_covered,
                precision,
                literals: clause.body.len(),
                uncovered_after: uncovered.len(),
                clause: clause.render(db),
            });
            definition.clauses.push(clause);
        }

        stats.search_time = t1.elapsed();
        stats.uncovered_pos = uncovered.len();
        if sp.is_active() {
            sp.note("clauses", definition.len() as u64);
            sp.note("rejected_clauses", stats.rejected_clauses as u64);
            sp.note("uncovered_pos", stats.uncovered_pos as u64);
            sp.note("ground_literals", stats.ground_literals as u64);
        }
        sink.on_event(&finished(&definition, &stats));
        (definition, stats)
    }

    /// Convenience: learns and also returns whether each training positive /
    /// negative ends up covered (computed against the training engine).
    pub fn learn_with_coverage(
        &self,
        db: &Database,
        bias: &LanguageBias,
        train: &TrainingSet,
    ) -> (Definition, LearnStats, Vec<bool>, Vec<bool>) {
        let (def, stats) = self.learn(db, bias, train);
        let engine = CoverageEngine::build(
            db,
            bias,
            train,
            &self.cfg.bc,
            self.cfg.subsume,
            self.cfg.seed,
        );
        let pos_cov = (0..train.pos.len())
            .map(|i| def.clauses.iter().any(|c| engine.covers_pos(c, i)))
            .collect();
        let neg_cov = (0..train.neg.len())
            .map(|i| def.clauses.iter().any(|c| engine.covers_neg(c, i)))
            .collect();
        (def, stats, pos_cov, neg_cov)
    }
}

/// Training precision `p / (p + n)`, with the empty-coverage convention of
/// 0.0. The single definition used by both the acceptance check and every
/// reported precision, so the two can never drift apart on float rounding.
fn precision_of(pos_covered: usize, neg_covered: usize) -> f64 {
    if pos_covered == 0 {
        0.0
    } else {
        pos_covered as f64 / (pos_covered + neg_covered) as f64
    }
}

/// Definition-level coverage helper: whether `definition` covers example `i`
/// of the engine's positives.
pub fn definition_covers_pos(def: &Definition, engine: &CoverageEngine, i: usize) -> bool {
    def.clauses.iter().any(|c| engine.covers_pos(c, i))
}

/// Definition-level coverage helper for negatives.
pub fn definition_covers_neg(def: &Definition, engine: &CoverageEngine, i: usize) -> bool {
    def.clauses.iter().any(|c| engine.covers_neg(c, i))
}

/// Scores a clause for external callers: `(pos_covered, neg_covered)` over
/// all engine examples.
pub fn clause_confusion(clause: &Clause, engine: &CoverageEngine) -> (usize, usize) {
    let all: Vec<usize> = (0..engine.pos.len()).collect();
    let p = engine.covered_pos_subset(clause, &all).len();
    let n = engine.count_neg(clause);
    (p, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::parse::parse_bias;
    use crate::bottom::SamplingStrategy;
    use crate::example::Example;
    use relstore::Database;

    /// World with a two-rule target: advisedBy(s,p) holds iff s,p co-author
    /// OR s TAs a course p teaches. Tests that sequential covering finds
    /// multiple clauses.
    fn two_rule_world() -> (Database, TrainingSet, LanguageBias) {
        let mut db = Database::new();
        let student = db.add_relation("student", &["stud"]);
        let professor = db.add_relation("professor", &["prof"]);
        let publ = db.add_relation("publication", &["title", "person"]);
        let ta = db.add_relation("ta", &["course", "stud"]);
        let taught = db.add_relation("taughtBy", &["course", "prof"]);
        let target = db.add_relation("advisedBy", &["stud", "prof"]);

        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for i in 0..8 {
            let s = format!("s{i}");
            let p = format!("f{i}");
            db.insert(student, &[&s]);
            db.insert(professor, &[&p]);
            if i < 4 {
                // co-authorship advising
                let t = format!("paper{i}");
                db.insert(publ, &[&t, &s]);
                db.insert(publ, &[&t, &p]);
            } else {
                // TAship advising
                let c = format!("course{i}");
                db.insert(ta, &[&c, &s]);
                db.insert(taught, &[&c, &p]);
            }
        }
        for i in 0..8 {
            let s = db.lookup(&format!("s{i}")).unwrap();
            let p = db.lookup(&format!("f{i}")).unwrap();
            let p2 = db.lookup(&format!("f{}", (i + 3) % 8)).unwrap();
            pos.push(Example::new(target, vec![s, p]));
            neg.push(Example::new(target, vec![s, p2]));
        }
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred student(T1)
pred professor(T3)
pred publication(T5, T1)
pred publication(T5, T3)
pred ta(T6, T1)
pred taughtBy(T6, T3)
pred advisedBy(T1, T3)
mode student(+)
mode professor(+)
mode publication(-, +)
mode ta(-, +)
mode ta(+, -)
mode taughtBy(-, +)
mode taughtBy(+, -)
",
        )
        .unwrap();
        (db, TrainingSet::new(pos, neg), bias)
    }

    #[test]
    fn covering_learns_both_rules() {
        let (db, train, bias) = two_rule_world();
        let cfg = LearnerConfig {
            bc: BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_body_literals: 100_000,
                max_tuples: 2000,
            },
            ..LearnerConfig::default()
        };
        let (def, stats, pos_cov, neg_cov) =
            Learner::new(cfg).learn_with_coverage(&db, &bias, &train);
        assert!(
            def.len() >= 2,
            "expected ≥2 clauses, got:\n{}",
            def.render(&db)
        );
        assert!(pos_cov.iter().all(|&c| c), "all positives covered");
        assert!(neg_cov.iter().all(|&c| !c), "no negatives covered");
        assert_eq!(stats.uncovered_pos, 0);
    }

    #[test]
    fn unlearnable_seed_is_skipped_not_looped() {
        // A positive example with constants appearing nowhere in the data
        // yields an empty BC; the learner must skip it and terminate.
        let (mut db, mut train, _) = two_rule_world();
        let ghost_a = db.intern("ghost_a");
        let ghost_b = db.intern("ghost_b");
        let target = db.rel_id("advisedBy").unwrap();
        train
            .pos
            .insert(0, Example::new(target, vec![ghost_a, ghost_b]));
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred student(T1)
pred professor(T3)
pred publication(T5, T1)
pred publication(T5, T3)
pred ta(T6, T1)
pred taughtBy(T6, T3)
pred advisedBy(T1, T3)
mode publication(-, +)
mode ta(-, +)
mode taughtBy(-, +)
mode ta(+, -)
mode taughtBy(+, -)
",
        )
        .unwrap();
        let cfg = LearnerConfig {
            bc: BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_body_literals: 100_000,
                max_tuples: 2000,
            },
            ..LearnerConfig::default()
        };
        let (def, stats) = Learner::new(cfg).learn(&db, &bias, &train);
        assert!(stats.rejected_clauses >= 1 || stats.uncovered_pos >= 1);
        assert!(!def.is_empty(), "the real examples are still learnable");
    }

    #[test]
    fn empty_training_set_returns_empty_definition() {
        let (db, _, bias) = two_rule_world();
        let train = TrainingSet::default();
        let (def, stats) = Learner::default().learn(&db, &bias, &train);
        assert!(def.is_empty());
        assert_eq!(stats.uncovered_pos, 0);
    }

    #[test]
    fn max_clauses_caps_definition() {
        let (db, train, bias) = two_rule_world();
        let cfg = LearnerConfig {
            bc: BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_body_literals: 100_000,
                max_tuples: 2000,
            },
            max_clauses: 1,
            ..LearnerConfig::default()
        };
        let (def, _) = Learner::new(cfg).learn(&db, &bias, &train);
        assert_eq!(def.len(), 1);
    }

    #[test]
    fn reduction_shrinks_clauses_without_changing_coverage() {
        let (db, train, bias) = two_rule_world();
        let base_cfg = LearnerConfig {
            bc: BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_body_literals: 100_000,
                max_tuples: 2000,
            },
            ..LearnerConfig::default()
        };
        let reduced_cfg = LearnerConfig {
            reduce_clauses: true,
            ..base_cfg
        };
        let (plain, _, p_pos, p_neg) =
            Learner::new(base_cfg).learn_with_coverage(&db, &bias, &train);
        let (reduced, _, r_pos, r_neg) =
            Learner::new(reduced_cfg).learn_with_coverage(&db, &bias, &train);
        assert!(
            reduced.total_literals() < plain.total_literals(),
            "reduced {} vs plain {}:\n{}",
            reduced.total_literals(),
            plain.total_literals(),
            reduced.render(&db)
        );
        assert_eq!(p_pos, r_pos, "positive coverage unchanged");
        assert_eq!(p_neg, r_neg, "negative coverage unchanged");
    }

    #[test]
    fn progress_events_trace_the_covering_loop() {
        use obs::progress::{ProgressEvent, ProgressSink};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Recorder(Mutex<Vec<ProgressEvent>>);
        impl ProgressSink for Recorder {
            fn on_event(&self, ev: &ProgressEvent) {
                self.0.lock().unwrap().push(ev.clone());
            }
        }

        let (db, train, bias) = two_rule_world();
        let cfg = LearnerConfig {
            bc: BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_body_literals: 100_000,
                max_tuples: 2000,
            },
            ..LearnerConfig::default()
        };
        let rec = Recorder::default();
        let never = AtomicBool::new(false);
        let (def, stats) = Learner::new(cfg).learn_with_progress(&db, &bias, &train, &never, &rec);
        let events = rec.0.into_inner().unwrap();

        assert!(
            matches!(
                events[0],
                ProgressEvent::BcBuildFinished {
                    pos_examples: 8,
                    neg_examples: 8,
                    ..
                }
            ),
            "first event is the BC build: {:?}",
            events[0]
        );
        if let ProgressEvent::BcBuildFinished {
            ground_literals, ..
        } = events[0]
        {
            assert_eq!(ground_literals, stats.ground_literals);
        }
        match events.last().unwrap() {
            ProgressEvent::Finished {
                clauses,
                uncovered_pos,
                timed_out,
                cancelled,
                ..
            } => {
                assert_eq!(*clauses, def.len());
                assert_eq!(*uncovered_pos, stats.uncovered_pos);
                assert!(!timed_out && !cancelled);
            }
            other => panic!("last event must be Finished, got {other:?}"),
        }

        let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
        assert_eq!(
            count("iteration_started"),
            count("clause_searched"),
            "every iteration runs exactly one search"
        );
        assert_eq!(
            count("iteration_started"),
            count("clause_accepted") + count("clause_rejected"),
            "every iteration resolves to accept or reject"
        );
        assert_eq!(count("clause_accepted"), def.len());
        assert_eq!(count("clause_rejected"), stats.rejected_clauses);
        assert_eq!(count("finished"), 1);

        // Accepted-clause text matches the learned definition, in order.
        let accepted: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                ProgressEvent::ClauseAccepted { clause, .. } => Some(clause.as_str()),
                _ => None,
            })
            .collect();
        let rendered: Vec<String> = def.clauses.iter().map(|c| c.render(&db)).collect();
        assert_eq!(
            accepted,
            rendered.iter().map(|s| s.as_str()).collect::<Vec<_>>()
        );

        // Uncovered counts are monotonically consistent across iterations.
        let mut last_uncovered = train.pos.len();
        for e in &events {
            if let ProgressEvent::IterationStarted { uncovered_pos, .. } = e {
                assert!(*uncovered_pos <= last_uncovered);
                last_uncovered = *uncovered_pos;
            }
        }
    }

    #[test]
    fn cancelled_run_still_emits_finished() {
        use obs::progress::{ProgressEvent, ProgressSink};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Recorder(Mutex<Vec<ProgressEvent>>);
        impl ProgressSink for Recorder {
            fn on_event(&self, ev: &ProgressEvent) {
                self.0.lock().unwrap().push(ev.clone());
            }
        }

        let (db, train, bias) = two_rule_world();
        let rec = Recorder::default();
        let cancelled = AtomicBool::new(true);
        let (_, stats) =
            Learner::default().learn_with_progress(&db, &bias, &train, &cancelled, &rec);
        assert!(stats.cancelled);
        let events = rec.0.into_inner().unwrap();
        assert_eq!(events.len(), 1, "pre-cancelled run emits only Finished");
        assert!(matches!(
            events[0],
            ProgressEvent::Finished {
                cancelled: true,
                clauses: 0,
                ..
            }
        ));
    }

    #[test]
    fn learning_is_deterministic_for_fixed_seed() {
        let (db, train, bias) = two_rule_world();
        let cfg = LearnerConfig {
            bc: BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Naive { per_selection: 5 },
                max_body_literals: 100_000,
                max_tuples: 2000,
            },
            seed: 99,
            ..LearnerConfig::default()
        };
        let (d1, _) = Learner::new(cfg).learn(&db, &bias, &train);
        let (d2, _) = Learner::new(cfg).learn(&db, &bias, &train);
        assert_eq!(d1, d2);
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::bias::parse::parse_bias;
    use crate::example::Example;
    use relstore::Database;

    /// The learner's time budget interrupts the covering loop and reports it.
    #[test]
    fn time_budget_is_honoured() {
        let mut db = Database::new();
        let r = db.add_relation("r", &["a", "b"]);
        let target = db.add_relation("t", &["a"]);
        let mut pos = Vec::new();
        for i in 0..30 {
            db.insert(r, &[&format!("x{i}"), &format!("x{}", (i + 1) % 30)]);
            let c = db.lookup(&format!("x{i}")).unwrap();
            pos.push(Example::new(target, vec![c]));
        }
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred r(TA, TA)
pred t(TA)
mode r(+, -)
mode r(-, +)
",
        )
        .unwrap();
        let cfg = LearnerConfig {
            time_budget: Some(Duration::from_nanos(1)),
            ..LearnerConfig::default()
        };
        let (_, stats) = Learner::new(cfg).learn(&db, &bias, &TrainingSet::new(pos, vec![]));
        assert!(stats.timed_out);
    }

    /// A pre-set cancellation flag stops the run before any work happens;
    /// an unset flag leaves results identical to plain `learn`.
    #[test]
    fn cancellation_flag_is_honoured() {
        use std::sync::atomic::AtomicBool;

        let mut db = Database::new();
        let r = db.add_relation("r", &["a", "b"]);
        let target = db.add_relation("t", &["a"]);
        let mut pos = Vec::new();
        for i in 0..10 {
            db.insert(r, &[&format!("x{i}"), &format!("x{}", (i + 1) % 10)]);
            let c = db.lookup(&format!("x{i}")).unwrap();
            pos.push(Example::new(target, vec![c]));
        }
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred r(TA, TA)
pred t(TA)
mode r(+, -)
mode r(-, +)
",
        )
        .unwrap();
        let train = TrainingSet::new(pos, vec![]);
        let learner = Learner::default();

        let cancelled = AtomicBool::new(true);
        let (def, stats) = learner.learn_cancellable(&db, &bias, &train, &cancelled);
        assert!(stats.cancelled);
        assert!(def.is_empty());
        assert_eq!(stats.uncovered_pos, train.pos.len());

        let live = AtomicBool::new(false);
        let (def_live, stats_live) = learner.learn_cancellable(&db, &bias, &train, &live);
        let (def_plain, _) = learner.learn(&db, &bias, &train);
        assert!(!stats_live.cancelled);
        assert_eq!(def_live, def_plain, "unset flag must not change results");
    }
}
