//! Textual round trip for clauses and definitions, so learned models can be
//! saved, versioned, and reloaded. The format is exactly what
//! [`Clause::render`] prints:
//!
//! ```text
//! advisedBy(x, y) ← publication(z, x), publication(z, y)
//! advisedBy(x, y) ← ta(z, x, v3), taughtBy(z, y, v3)
//! ```
//!
//! Tokens `x`, `y`, `z`, and `v<N>` are variables (the renderer's labels);
//! every other argument token is a constant, interned into the database's
//! dictionary on load. `<-` is accepted in place of `←`.
//!
//! ```
//! use autobias::clause_text::parse_definition;
//! let mut db = relstore::fixtures::uw_fragment();
//! db.add_relation("advisedBy", &["stud", "prof"]);
//! let def = parse_definition(
//!     &mut db,
//!     "advisedBy(x, y) <- publication(z, x), publication(z, y)",
//! )
//! .unwrap();
//! assert_eq!(def.len(), 1);
//! assert_eq!(
//!     def.render(&db),
//!     "advisedBy(x, y) ← publication(z, x), publication(z, y)"
//! );
//! ```

use crate::clause::{Clause, Definition, Literal, Term, VarId};
use relstore::{Database, FxHashMap};
use std::fmt;

/// Errors raised while parsing clause text.
#[derive(Debug)]
pub enum ClauseParseError {
    /// Structurally malformed text (missing arrow, parentheses, …).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A literal naming an unknown relation.
    UnknownRelation {
        /// 1-based line number.
        line: usize,
        /// The name in question.
        name: String,
    },
    /// A literal whose argument count does not match the relation's arity.
    Arity {
        /// 1-based line number.
        line: usize,
        /// Relation name.
        name: String,
        /// Arguments given.
        given: usize,
        /// Arity expected.
        expected: usize,
    },
}

impl fmt::Display for ClauseParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClauseParseError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ClauseParseError::UnknownRelation { line, name } => {
                write!(f, "line {line}: unknown relation {name:?}")
            }
            ClauseParseError::Arity {
                line,
                name,
                given,
                expected,
            } => {
                write!(
                    f,
                    "line {line}: {name} takes {expected} arguments, got {given}"
                )
            }
        }
    }
}

impl std::error::Error for ClauseParseError {}

/// Whether a token is one of the renderer's variable labels.
fn is_var_token(tok: &str) -> bool {
    matches!(tok, "x" | "y" | "z")
        || (tok.starts_with('v') && tok.len() > 1 && tok[1..].chars().all(|c| c.is_ascii_digit()))
}

fn var_id(tok: &str) -> u32 {
    match tok {
        "x" => 0,
        "y" => 1,
        "z" => 2,
        _ => tok[1..].parse().expect("checked by is_var_token"),
    }
}

/// Splits `name(arg1, arg2)` into name and raw args.
fn split_call(s: &str, line: usize) -> Result<(&str, Vec<&str>), ClauseParseError> {
    let open = s.find('(').ok_or_else(|| ClauseParseError::Malformed {
        line,
        message: format!("expected `rel(args)` in {s:?}"),
    })?;
    let close = s.rfind(')').ok_or_else(|| ClauseParseError::Malformed {
        line,
        message: format!("missing `)` in {s:?}"),
    })?;
    let name = s[..open].trim();
    let inner = &s[open + 1..close];
    let args = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(str::trim).collect()
    };
    Ok((name, args))
}

/// A parsed literal whose constants are still raw string tokens — the
/// database-independent first phase shared by the interning and frozen
/// parsers.
struct RawLiteral<'s> {
    rel: relstore::RelId,
    args: Vec<RawTerm<'s>>,
}

enum RawTerm<'s> {
    Var(u32),
    Const(&'s str),
}

/// Parses one clause line against the catalog only (relations and arities
/// are validated; constants stay as strings).
fn parse_raw<'s>(
    db: &Database,
    text: &'s str,
    line_no: usize,
) -> Result<Vec<RawLiteral<'s>>, ClauseParseError> {
    let (head_text, body_text) = match text.split_once('←').or_else(|| text.split_once("<-")) {
        Some((h, b)) => (h.trim(), b.trim()),
        None => (text.trim(), ""),
    };

    // Split the body on commas at parenthesis depth zero.
    let mut body_parts: Vec<&str> = Vec::new();
    if !body_text.is_empty() && body_text != "true" {
        let mut depth = 0usize;
        let mut start = 0usize;
        for (i, ch) in body_text.char_indices() {
            match ch {
                '(' => depth += 1,
                ')' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    body_parts.push(&body_text[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        if !body_text[start..].trim().is_empty() {
            body_parts.push(&body_text[start..]);
        }
    }

    let parse_literal = |s: &'s str| -> Result<RawLiteral<'s>, ClauseParseError> {
        let (name, args) = split_call(s.trim(), line_no)?;
        let rel = db
            .rel_id(name)
            .ok_or_else(|| ClauseParseError::UnknownRelation {
                line: line_no,
                name: name.to_string(),
            })?;
        let expected = db.catalog().schema(rel).arity();
        if args.len() != expected {
            return Err(ClauseParseError::Arity {
                line: line_no,
                name: name.to_string(),
                given: args.len(),
                expected,
            });
        }
        let args = args
            .iter()
            .map(|a| {
                if is_var_token(a) {
                    RawTerm::Var(var_id(a))
                } else {
                    RawTerm::Const(a)
                }
            })
            .collect();
        Ok(RawLiteral { rel, args })
    };

    let mut lits = Vec::with_capacity(1 + body_parts.len());
    lits.push(parse_literal(head_text)?);
    for p in body_parts {
        lits.push(parse_literal(p)?);
    }
    Ok(lits)
}

/// Materializes raw literals into a normalized clause, mapping constant
/// tokens through `resolve`.
fn materialize(
    raw: Vec<RawLiteral<'_>>,
    mut resolve: impl FnMut(&str) -> relstore::Const,
) -> Clause {
    let mut lits = raw.into_iter().map(|l| {
        let terms: Vec<Term> = l
            .args
            .iter()
            .map(|t| match t {
                RawTerm::Var(v) => Term::Var(VarId(*v)),
                RawTerm::Const(s) => Term::Const(resolve(s)),
            })
            .collect();
        Literal::new(l.rel, terms)
    });
    let head = lits.next().expect("parse_raw always yields a head");
    let mut clause = Clause::new(head, lits.collect());
    // Renumber densely so round trips through render/parse are stable even
    // though labels skip numbers.
    normalize(&mut clause);
    clause
}

/// Parses one clause line. Constants are interned into `db`.
pub fn parse_clause(
    db: &mut Database,
    text: &str,
    line_no: usize,
) -> Result<Clause, ClauseParseError> {
    let raw = parse_raw(db, text, line_no)?;
    Ok(materialize(raw, |s| db.intern(s)))
}

/// Parses one clause line against a *frozen* (shared, read-only) database:
/// constants not present in the dictionary resolve to ephemeral ids from
/// `resolver` instead of being interned. Such constants match no database
/// tuple, so a literal mentioning one can never be witnessed — exactly the
/// semantics of a constant that does not occur in the data.
pub fn parse_clause_frozen(
    db: &Database,
    resolver: &mut relstore::ConstResolver<'_>,
    text: &str,
    line_no: usize,
) -> Result<Clause, ClauseParseError> {
    let raw = parse_raw(db, text, line_no)?;
    Ok(materialize(raw, |s| resolver.resolve(s)))
}

/// Renumbers variables to match the renderer's labeling scheme (head vars
/// first, then body order) without changing structure.
fn normalize(clause: &mut Clause) {
    let mut map: FxHashMap<VarId, VarId> = FxHashMap::default();
    let mut next = 0u32;
    let mut rn = |t: &mut Term, map: &mut FxHashMap<VarId, VarId>| {
        if let Term::Var(v) = t {
            let nv = *map.entry(*v).or_insert_with(|| {
                let nv = VarId(next);
                next += 1;
                nv
            });
            *t = Term::Var(nv);
        }
    };
    for t in clause.head.args.iter_mut() {
        rn(t, &mut map);
    }
    for lit in &mut clause.body {
        for t in lit.args.iter_mut() {
            rn(t, &mut map);
        }
    }
}

/// Parses a full definition: one clause per line; blank lines and `#`
/// comments ignored.
pub fn parse_definition(db: &mut Database, text: &str) -> Result<Definition, ClauseParseError> {
    let mut def = Definition::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        def.clauses.push(parse_clause(db, line, i + 1)?);
    }
    Ok(def)
}

/// Parses a full definition against a frozen database (no interning): one
/// clause per line; blank lines and `#` comments ignored. Returns the
/// definition together with the constant tokens that were not found in the
/// dictionary (useful for warning that a model references entities absent
/// from the data).
pub fn parse_definition_frozen(
    db: &Database,
    text: &str,
) -> Result<(Definition, Vec<String>), ClauseParseError> {
    let mut resolver = relstore::ConstResolver::new(db.dict());
    let mut def = Definition::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        def.clauses
            .push(parse_clause_frozen(db, &mut resolver, line, i + 1)?);
    }
    let unknown = resolver
        .unknown_strings()
        .into_iter()
        .map(String::from)
        .collect();
    Ok((def, unknown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::fixtures::uw_fragment;

    fn setup() -> Database {
        let mut db = uw_fragment();
        db.add_relation("advisedBy", &["stud", "prof"]);
        db
    }

    #[test]
    fn roundtrip_via_render() {
        let mut db = setup();
        let text = "advisedBy(x, y) ← publication(z, x), publication(z, y)";
        let clause = parse_clause(&mut db, text, 1).unwrap();
        assert_eq!(clause.render(&db), text);
    }

    #[test]
    fn constants_are_interned() {
        let mut db = setup();
        let clause = parse_clause(&mut db, "advisedBy(x, y) ← inPhase(x, post_quals)", 1).unwrap();
        let post_quals = db.lookup("post_quals").unwrap();
        assert_eq!(clause.body[0].args[1], Term::Const(post_quals));
        // And a brand-new constant gets interned:
        let c2 = parse_clause(&mut db, "advisedBy(x, y) ← inPhase(x, pre_thesis)", 1).unwrap();
        assert!(db.lookup("pre_thesis").is_some());
        let _ = c2;
    }

    #[test]
    fn body_free_clause_and_ascii_arrow() {
        let mut db = setup();
        let a = parse_clause(&mut db, "advisedBy(x, y)", 1).unwrap();
        assert!(a.body.is_empty());
        let b = parse_clause(&mut db, "advisedBy(x, y) <- student(x)", 1).unwrap();
        assert_eq!(b.body.len(), 1);
        let c = parse_clause(&mut db, "advisedBy(x, y) ← true", 1).unwrap();
        assert!(c.body.is_empty());
    }

    #[test]
    fn high_variable_labels_parse() {
        let mut db = setup();
        let clause = parse_clause(
            &mut db,
            "advisedBy(x, y) ← publication(v12, x), publication(v12, y)",
            1,
        )
        .unwrap();
        // v12 normalized but shared between the two literals.
        assert_eq!(clause.body[0].args[0], clause.body[1].args[0]);
    }

    #[test]
    fn definition_roundtrip() {
        let mut db = setup();
        let text = "\
# learned model
advisedBy(x, y) ← publication(z, x), publication(z, y)

advisedBy(x, y) ← student(x), professor(y)";
        let def = parse_definition(&mut db, text).unwrap();
        assert_eq!(def.len(), 2);
        let rendered = def.render(&db);
        let again = parse_definition(&mut db, &rendered).unwrap();
        assert_eq!(def, again);
    }

    /// Satellite: multi-clause model file round-trips byte-identically
    /// through parse → print → parse, including constants and reused
    /// high-numbered variables.
    #[test]
    fn multi_clause_model_file_roundtrip() {
        let mut db = setup();
        let text = "\
# learned model for advisedBy (3 clauses)
advisedBy(x, y) ← publication(z, x), publication(z, y)
advisedBy(x, y) ← student(x), professor(y), inPhase(x, post_quals)
advisedBy(x, y) ← publication(v12, x), publication(v12, y), professor(y)";
        let def = parse_definition(&mut db, text).unwrap();
        assert_eq!(def.len(), 3);
        let printed = def.render(&db);
        let again = parse_definition(&mut db, &printed).unwrap();
        assert_eq!(def, again, "parse → print → parse must be a fixpoint");
        // And printing the re-parsed definition reproduces the same text.
        assert_eq!(printed, again.render(&db));
    }

    #[test]
    fn frozen_parse_matches_interning_parse_on_known_constants() {
        let mut db = setup();
        let text = "advisedBy(x, y) ← inPhase(x, post_quals), professor(y)";
        let interned = parse_clause(&mut db, text, 1).unwrap();
        let mut resolver = relstore::ConstResolver::new(db.dict());
        let frozen = parse_clause_frozen(&db, &mut resolver, text, 1).unwrap();
        assert_eq!(interned, frozen);
        assert!(resolver.unknown_strings().is_empty());
    }

    #[test]
    fn frozen_parse_reports_unknown_constants_without_interning() {
        let db = setup();
        let before = db.dict().len();
        let (def, unknown) = parse_definition_frozen(
            &db,
            "advisedBy(x, y) ← inPhase(x, never_seen_phase)\nadvisedBy(x, y) ← student(x)",
        )
        .unwrap();
        assert_eq!(def.len(), 2);
        assert_eq!(unknown, vec!["never_seen_phase".to_string()]);
        assert_eq!(db.dict().len(), before, "frozen parse must not intern");
        // The ephemeral constant matches nothing, so the first clause can
        // never be witnessed — but the definition still evaluates safely.
        let target = db.rel_id("advisedBy").unwrap();
        let juan = db.lookup("juan").unwrap();
        let covered = crate::query::definition_covers(
            &db,
            &def,
            &crate::example::Example::new(target, vec![juan, juan]),
            &crate::query::QueryConfig::default(),
        );
        assert!(covered, "second clause (student(x)) should still fire");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut db = setup();
        let err = parse_definition(&mut db, "advisedBy(x, y)\nnosuch(x)").unwrap_err();
        assert!(matches!(
            err,
            ClauseParseError::UnknownRelation { line: 2, .. }
        ));
        let err = parse_definition(&mut db, "advisedBy(x)").unwrap_err();
        assert!(matches!(
            err,
            ClauseParseError::Arity {
                line: 1,
                given: 1,
                expected: 2,
                ..
            }
        ));
        let err = parse_definition(&mut db, "advisedBy x, y").unwrap_err();
        assert!(matches!(err, ClauseParseError::Malformed { line: 1, .. }));
    }
}
