//! Language bias: predicate and mode definitions (paper §2.2).
//!
//! *Predicate definitions* assign semantic types to relation attributes; two
//! attributes may be joined (share a variable) in a candidate clause only if
//! they share a type. *Mode definitions* constrain each literal argument to
//! be an existing variable (`+`), any variable (`-`), or a constant (`#`).
//!
//! [`auto`] induces both from the data (the paper's contribution);
//! [`baseline`] provides the Castor / no-constants baselines; [`parse`] reads
//! expert-written bias from text.

pub mod aleph;
pub mod auto;
pub mod baseline;
pub mod overlap;
pub mod parse;

use constraints::TypeId;
use relstore::{AttrRef, Database, FxHashMap, FxHashSet, RelId};
use std::fmt;

/// A predicate definition: one typing of a relation's attributes, e.g.
/// `publication(T5, T1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredDef {
    /// The typed relation.
    pub rel: RelId,
    /// One type per attribute position.
    pub types: Vec<TypeId>,
}

/// Argument annotation in a mode definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArgMode {
    /// `+` — must be a variable that already appears in the clause.
    Plus,
    /// `-` — may be an existing or a fresh variable.
    Minus,
    /// `#` — must be a constant.
    Hash,
}

impl fmt::Display for ArgMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArgMode::Plus => "+",
            ArgMode::Minus => "-",
            ArgMode::Hash => "#",
        })
    }
}

/// A mode definition for one relation, e.g. `inPhase(+, #)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModeDef {
    /// The constrained relation.
    pub rel: RelId,
    /// One annotation per attribute position.
    pub args: Vec<ArgMode>,
}

impl ModeDef {
    /// Positions annotated `+`.
    pub fn plus_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, m)| **m == ArgMode::Plus)
            .map(|(i, _)| i)
    }
}

/// Errors raised when assembling an inconsistent language bias.
#[derive(Debug)]
pub enum BiasError {
    /// A predicate definition's type count differs from the relation arity.
    PredArity {
        /// Offending relation.
        rel: RelId,
        /// Types given.
        given: usize,
        /// Arity expected.
        expected: usize,
    },
    /// A mode definition's annotation count differs from the relation arity.
    ModeArity {
        /// Offending relation.
        rel: RelId,
        /// Annotations given.
        given: usize,
        /// Arity expected.
        expected: usize,
    },
    /// A body mode was declared on the target relation (would allow the
    /// learner to define the target in terms of itself).
    TargetInBody,
    /// No predicate definition covers the target relation, so head variables
    /// would have no types.
    MissingTargetPred,
}

impl fmt::Display for BiasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BiasError::PredArity {
                rel,
                given,
                expected,
            } => write!(
                f,
                "predicate definition for r{} has {given} types, relation arity is {expected}",
                rel.0
            ),
            BiasError::ModeArity {
                rel,
                given,
                expected,
            } => write!(
                f,
                "mode definition for r{} has {given} annotations, relation arity is {expected}",
                rel.0
            ),
            BiasError::TargetInBody => write!(f, "mode definition declared on the target relation"),
            BiasError::MissingTargetPred => {
                write!(f, "no predicate definition types the target relation")
            }
        }
    }
}

impl std::error::Error for BiasError {}

/// A complete language bias for learning one target relation.
#[derive(Debug, Clone)]
pub struct LanguageBias {
    /// The target (head) relation.
    pub target: RelId,
    /// All predicate definitions, including the target's typing.
    pub preds: Vec<PredDef>,
    /// Body mode definitions (never on the target relation).
    pub modes: Vec<ModeDef>,
    attr_types: FxHashMap<AttrRef, Vec<TypeId>>,
    const_attrs: FxHashSet<AttrRef>,
    modes_by_rel: FxHashMap<RelId, Vec<usize>>,
}

impl LanguageBias {
    /// Assembles and validates a language bias.
    pub fn new(
        db: &Database,
        target: RelId,
        preds: Vec<PredDef>,
        modes: Vec<ModeDef>,
    ) -> Result<Self, BiasError> {
        for p in &preds {
            let expected = db.catalog().schema(p.rel).arity();
            if p.types.len() != expected {
                return Err(BiasError::PredArity {
                    rel: p.rel,
                    given: p.types.len(),
                    expected,
                });
            }
        }
        for m in &modes {
            let expected = db.catalog().schema(m.rel).arity();
            if m.args.len() != expected {
                return Err(BiasError::ModeArity {
                    rel: m.rel,
                    given: m.args.len(),
                    expected,
                });
            }
            if m.rel == target {
                return Err(BiasError::TargetInBody);
            }
        }
        if !preds.iter().any(|p| p.rel == target) {
            return Err(BiasError::MissingTargetPred);
        }

        // Per-attribute type sets: union over all predicate definitions.
        // (publication(T5,T1) and publication(T5,T3) give author {T1,T3}.)
        let mut attr_types: FxHashMap<AttrRef, Vec<TypeId>> = FxHashMap::default();
        for p in &preds {
            for (pos, &t) in p.types.iter().enumerate() {
                let entry = attr_types.entry(AttrRef::new(p.rel, pos)).or_default();
                if !entry.contains(&t) {
                    entry.push(t);
                }
            }
        }
        for v in attr_types.values_mut() {
            v.sort_unstable();
        }

        let mut const_attrs = FxHashSet::default();
        let mut modes_by_rel: FxHashMap<RelId, Vec<usize>> = FxHashMap::default();
        for (i, m) in modes.iter().enumerate() {
            modes_by_rel.entry(m.rel).or_default().push(i);
            for (pos, a) in m.args.iter().enumerate() {
                if *a == ArgMode::Hash {
                    const_attrs.insert(AttrRef::new(m.rel, pos));
                }
            }
        }

        Ok(Self {
            target,
            preds,
            modes,
            attr_types,
            const_attrs,
            modes_by_rel,
        })
    }

    /// The types assigned to `attr` (empty if the attribute is untyped,
    /// which means it can never participate in a join).
    pub fn types_of(&self, attr: AttrRef) -> &[TypeId] {
        self.attr_types.get(&attr).map_or(&[], Vec::as_slice)
    }

    /// Whether two attributes share a type, i.e. may be joined.
    pub fn share_type(&self, a: AttrRef, b: AttrRef) -> bool {
        let tb = self.types_of(b);
        self.types_of(a).iter().any(|t| tb.contains(t))
    }

    /// Whether any type of `attr` appears in the set `types`.
    pub fn types_intersect(&self, attr: AttrRef, types: &FxHashSet<TypeId>) -> bool {
        self.types_of(attr).iter().any(|t| types.contains(t))
    }

    /// Mode definitions declared for `rel`.
    pub fn modes_for(&self, rel: RelId) -> impl Iterator<Item = &ModeDef> {
        self.modes_by_rel
            .get(&rel)
            .into_iter()
            .flatten()
            .map(|&i| &self.modes[i])
    }

    /// Relations usable in clause bodies (those with at least one mode).
    pub fn body_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.modes_by_rel.keys().copied()
    }

    /// Whether `attr` may hold a constant (`#` in some mode).
    pub fn can_be_const(&self, attr: AttrRef) -> bool {
        self.const_attrs.contains(&attr)
    }

    /// Whether `attr` may hold a variable (`+` or `-` in some mode).
    pub fn can_be_var(&self, attr: AttrRef) -> bool {
        self.modes_for(attr.rel)
            .any(|m| matches!(m.args[attr.pos as usize], ArgMode::Plus | ArgMode::Minus))
    }

    /// Bias size as the paper counts it: number of predicate plus mode
    /// definitions ("lines of code" of the bias).
    pub fn size(&self) -> usize {
        self.preds.len() + self.modes.len()
    }

    /// Renders the bias in the same textual format [`parse`] accepts.
    pub fn render(&self, db: &Database) -> String {
        let mut out = String::new();
        for p in &self.preds {
            let name = &db.catalog().schema(p.rel).name;
            let types: Vec<String> = p.types.iter().map(|t| t.label()).collect();
            out.push_str(&format!("pred {}({})\n", name, types.join(", ")));
        }
        for m in &self.modes {
            let name = &db.catalog().schema(m.rel).name;
            let args: Vec<String> = m.args.iter().map(|a| a.to_string()).collect();
            out.push_str(&format!("mode {}({})\n", name, args.join(", ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db() -> (Database, RelId, RelId, RelId) {
        let mut db = Database::new();
        let student = db.add_relation("student", &["stud"]);
        let in_phase = db.add_relation("inPhase", &["stud", "phase"]);
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        (db, student, in_phase, target)
    }

    #[test]
    fn assemble_and_query() {
        let (db, student, in_phase, target) = tiny_db();
        let t1 = TypeId(0);
        let t2 = TypeId(1);
        let t3 = TypeId(2);
        let bias = LanguageBias::new(
            &db,
            target,
            vec![
                PredDef {
                    rel: student,
                    types: vec![t1],
                },
                PredDef {
                    rel: in_phase,
                    types: vec![t1, t2],
                },
                PredDef {
                    rel: target,
                    types: vec![t1, t3],
                },
            ],
            vec![
                ModeDef {
                    rel: student,
                    args: vec![ArgMode::Plus],
                },
                ModeDef {
                    rel: in_phase,
                    args: vec![ArgMode::Plus, ArgMode::Minus],
                },
                ModeDef {
                    rel: in_phase,
                    args: vec![ArgMode::Plus, ArgMode::Hash],
                },
            ],
        )
        .unwrap();

        assert!(bias.share_type(AttrRef::new(student, 0), AttrRef::new(in_phase, 0)));
        assert!(!bias.share_type(AttrRef::new(student, 0), AttrRef::new(in_phase, 1)));
        assert!(bias.can_be_const(AttrRef::new(in_phase, 1)));
        assert!(!bias.can_be_const(AttrRef::new(in_phase, 0)));
        assert!(bias.can_be_var(AttrRef::new(in_phase, 1)));
        assert_eq!(bias.modes_for(in_phase).count(), 2);
        assert_eq!(bias.size(), 6);
    }

    #[test]
    fn rejects_target_body_mode() {
        let (db, student, _, target) = tiny_db();
        let err = LanguageBias::new(
            &db,
            target,
            vec![
                PredDef {
                    rel: student,
                    types: vec![TypeId(0)],
                },
                PredDef {
                    rel: target,
                    types: vec![TypeId(0), TypeId(1)],
                },
            ],
            vec![ModeDef {
                rel: target,
                args: vec![ArgMode::Plus, ArgMode::Minus],
            }],
        )
        .unwrap_err();
        assert!(matches!(err, BiasError::TargetInBody));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let (db, student, _, target) = tiny_db();
        let err = LanguageBias::new(
            &db,
            target,
            vec![
                PredDef {
                    rel: student,
                    types: vec![TypeId(0), TypeId(1)],
                },
                PredDef {
                    rel: target,
                    types: vec![TypeId(0), TypeId(1)],
                },
            ],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, BiasError::PredArity { .. }));
    }

    #[test]
    fn rejects_untyped_target() {
        let (db, student, _, target) = tiny_db();
        let err = LanguageBias::new(
            &db,
            target,
            vec![PredDef {
                rel: student,
                types: vec![TypeId(0)],
            }],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, BiasError::MissingTargetPred));
    }

    #[test]
    fn multiple_pred_defs_union_types() {
        // publication(T5,T1) + publication(T5,T3) → author has {T1, T3}.
        let mut db = Database::new();
        let publ = db.add_relation("publication", &["title", "person"]);
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        let bias = LanguageBias::new(
            &db,
            target,
            vec![
                PredDef {
                    rel: publ,
                    types: vec![TypeId(4), TypeId(0)],
                },
                PredDef {
                    rel: publ,
                    types: vec![TypeId(4), TypeId(2)],
                },
                PredDef {
                    rel: target,
                    types: vec![TypeId(0), TypeId(2)],
                },
            ],
            vec![],
        )
        .unwrap();
        assert_eq!(
            bias.types_of(AttrRef::new(publ, 1)),
            &[TypeId(0), TypeId(2)]
        );
        assert_eq!(bias.types_of(AttrRef::new(publ, 0)), &[TypeId(4)]);
    }
}
