//! Automatic language-bias induction — the paper's §3.
//!
//! Predicate definitions come from the IND-derived type graph (Algorithm 3);
//! mode definitions from attribute cardinalities via the *constant-threshold*
//! hyper-parameter (§3.2). The target relation (holding the positive
//! examples) must be present in the database so its attributes participate in
//! IND discovery and inherit types; it receives predicate definitions but no
//! body modes.

use super::{ArgMode, BiasError, LanguageBias, ModeDef, PredDef};
use constraints::{build_type_graph, discover_inds, IndConfig, TypeGraph};
use relstore::{AttrRef, Database, RelId};
use std::time::{Duration, Instant};

/// How the constant-threshold decides whether an attribute may be a constant
/// (paper §3.2).
#[derive(Debug, Clone, Copy)]
pub enum ConstantThreshold {
    /// Attribute may be constant if it has fewer than this many distinct values.
    Absolute(usize),
    /// Attribute may be constant if `distinct / tuples` is below this ratio.
    /// The paper's experiments use `Relative(0.18)`.
    Relative(f64),
}

impl ConstantThreshold {
    /// Applies the threshold to one attribute.
    pub fn allows(&self, distinct: usize, tuples: usize) -> bool {
        match *self {
            ConstantThreshold::Absolute(n) => distinct < n,
            ConstantThreshold::Relative(r) => tuples > 0 && (distinct as f64 / tuples as f64) < r,
        }
    }
}

/// Configuration for automatic bias induction.
#[derive(Debug, Clone)]
pub struct AutoBiasConfig {
    /// IND-discovery settings (the paper uses `max_error = 0.5`).
    pub ind: IndConfig,
    /// Constant-threshold (the paper's experiments use 18% relative).
    pub constant_threshold: ConstantThreshold,
    /// Cap on the size of constant-attribute subsets enumerated from the
    /// power set in §3.2. The paper enumerates the full power set; wide
    /// relations make that exponential, so we cap the subset size
    /// (an explicit deviation, documented in DESIGN.md §7.5).
    pub max_constant_set_size: usize,
    /// Cap on predicate definitions generated per relation from the
    /// Cartesian product of attribute type sets (§3.1 last paragraph).
    pub max_preds_per_rel: usize,
}

impl Default for AutoBiasConfig {
    fn default() -> Self {
        Self {
            ind: IndConfig::default(),
            constant_threshold: ConstantThreshold::Relative(0.18),
            max_constant_set_size: 3,
            max_preds_per_rel: 64,
        }
    }
}

/// Summary statistics of one induction run (reported by the experiment
/// harness alongside Table 5).
#[derive(Debug, Clone)]
pub struct BiasStats {
    /// Exact INDs discovered.
    pub exact_inds: usize,
    /// Approximate INDs discovered (error ≤ α).
    pub approx_inds: usize,
    /// Distinct types in the type graph.
    pub num_types: u32,
    /// Predicate definitions generated.
    pub num_preds: usize,
    /// Mode definitions generated.
    pub num_modes: usize,
    /// Wall-clock time of IND discovery (the paper's "preprocessing step").
    pub ind_time: Duration,
    /// Wall-clock time of the rest of bias generation.
    pub bias_time: Duration,
}

/// Induces a [`LanguageBias`] for `target` from the database content.
///
/// Returns the bias, the type graph (useful for display, cf. Figure 1), and
/// induction statistics.
pub fn induce_bias(
    db: &Database,
    target: RelId,
    cfg: &AutoBiasConfig,
) -> Result<(LanguageBias, TypeGraph, BiasStats), BiasError> {
    crate::instrument::register();
    let mut sp = obs::span!("bias.induce");
    let t0 = Instant::now();
    let inds = discover_inds(db, &cfg.ind);
    let ind_time = t0.elapsed();

    let t1 = Instant::now();
    let graph = build_type_graph(db, &inds);

    let mut preds = Vec::new();
    for (rel, schema) in db.catalog().iter() {
        let per_attr: Vec<&[constraints::TypeId]> = (0..schema.arity())
            .map(|pos| graph.types_of(AttrRef::new(rel, pos)))
            .collect();
        preds.extend(cartesian_preds(rel, &per_attr, cfg.max_preds_per_rel));
    }

    let mut modes = Vec::new();
    for (rel, schema) in db.catalog().iter() {
        if rel == target {
            continue;
        }
        let tuples = db.relation(rel).len();
        let constable: Vec<bool> = (0..schema.arity())
            .map(|pos| {
                let distinct = db.distinct(AttrRef::new(rel, pos)).len();
                cfg.constant_threshold.allows(distinct, tuples)
            })
            .collect();
        modes.extend(generate_modes(rel, &constable, cfg.max_constant_set_size));
    }

    let stats = BiasStats {
        exact_inds: inds.iter().filter(|i| i.is_exact()).count(),
        approx_inds: inds.iter().filter(|i| !i.is_exact()).count(),
        num_types: graph.num_types,
        num_preds: preds.len(),
        num_modes: modes.len(),
        ind_time,
        bias_time: t1.elapsed(),
    };

    if sp.is_active() {
        sp.note("exact_inds", stats.exact_inds as u64);
        sp.note("approx_inds", stats.approx_inds as u64);
        sp.note("types", stats.num_types as u64);
        sp.note("preds", stats.num_preds as u64);
        sp.note("modes", stats.num_modes as u64);
    }
    let bias = LanguageBias::new(db, target, preds, modes)?;
    Ok((bias, graph, stats))
}

/// Cartesian product of per-attribute type sets → one [`PredDef`] per
/// combination, capped at `max` definitions (paper §3.1: "for each tuple in
/// this Cartesian product, it produces a predicate definition").
pub(crate) fn cartesian_preds(
    rel: RelId,
    per_attr: &[&[constraints::TypeId]],
    max: usize,
) -> Vec<PredDef> {
    if per_attr.iter().any(|ts| ts.is_empty()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut cursor = vec![0usize; per_attr.len()];
    loop {
        out.push(PredDef {
            rel,
            types: cursor.iter().zip(per_attr).map(|(&i, ts)| ts[i]).collect(),
        });
        if out.len() >= max {
            break;
        }
        // Odometer increment.
        let mut pos = per_attr.len();
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            cursor[pos] += 1;
            if cursor[pos] < per_attr[pos].len() {
                break;
            }
            cursor[pos] = 0;
        }
    }
    out
}

/// Generates mode definitions per §3.2: for every attribute `j`, a mode with
/// `+` at `j` and `-` elsewhere; then, for every non-empty subset `M` of
/// constant-able attributes (|M| ≤ `max_set`), the same family with `#` on
/// the attributes of `M`. Every mode keeps at least one `+` (avoiding
/// Cartesian products in clauses), so subsets covering all attributes are
/// skipped for the positions question — the `+` goes on an attribute outside
/// `M`.
pub(crate) fn generate_modes(rel: RelId, constable: &[bool], max_set: usize) -> Vec<ModeDef> {
    let arity = constable.len();
    let const_positions: Vec<usize> = (0..arity).filter(|&i| constable[i]).collect();
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();

    // Enumerate subsets of the constant-able positions by size, empty first.
    let mut subsets: Vec<Vec<usize>> = vec![Vec::new()];
    for size in 1..=const_positions.len().min(max_set) {
        subsets.extend(combinations(&const_positions, size));
    }

    for subset in subsets {
        for plus in 0..arity {
            if subset.contains(&plus) {
                continue;
            }
            let args: Vec<ArgMode> = (0..arity)
                .map(|i| {
                    if i == plus {
                        ArgMode::Plus
                    } else if subset.contains(&i) {
                        ArgMode::Hash
                    } else {
                        ArgMode::Minus
                    }
                })
                .collect();
            if seen.insert(args.clone()) {
                out.push(ModeDef { rel, args });
            }
        }
    }
    // Lint AB005 (duplicate mode) fires on any regression of the dedup
    // above; AB003 (mode without `+`) would fire if a subset ever swallowed
    // every position.
    debug_assert_eq!(seen.len(), out.len(), "duplicate mode signatures generated");
    debug_assert!(
        out.iter().all(|m| m.args.contains(&ArgMode::Plus)),
        "generated a mode without a `+` argument"
    );
    out
}

/// All `size`-element combinations of `items`.
fn combinations(items: &[usize], size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut stack: Vec<(usize, Vec<usize>)> = vec![(0, Vec::new())];
    while let Some((start, acc)) = stack.pop() {
        if acc.len() == size {
            out.push(acc);
            continue;
        }
        for (i, &item) in items.iter().enumerate().skip(start) {
            let mut next = acc.clone();
            next.push(item);
            stack.push((i + 1, next));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use constraints::TypeId;
    use relstore::fixtures::uw_fragment;

    #[test]
    fn generate_modes_basic() {
        // Binary relation, second attribute constant-able — the paper's
        // inPhase example: expect (+,-), (-,+), (+,#).
        let modes = generate_modes(RelId(0), &[false, true], 3);
        let sigs: Vec<String> = modes
            .iter()
            .map(|m| {
                m.args
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("")
            })
            .collect();
        assert!(sigs.contains(&"+-".to_string()));
        assert!(sigs.contains(&"-+".to_string()));
        assert!(sigs.contains(&"+#".to_string()));
        assert_eq!(modes.len(), 3);
    }

    #[test]
    fn generate_modes_signatures_are_unique() {
        // Across arities, constable patterns, and subset caps, no two
        // generated modes may share a signature and each must keep a `+`
        // (lint AB005 / AB003 fire on any regression).
        for arity in 1..=4usize {
            for mask in 0..(1u32 << arity) {
                let constable: Vec<bool> = (0..arity).map(|i| mask & (1 << i) != 0).collect();
                for max_set in 0..=arity {
                    let modes = generate_modes(RelId(7), &constable, max_set);
                    let mut sigs = std::collections::HashSet::new();
                    for m in &modes {
                        assert!(
                            sigs.insert(m.args.clone()),
                            "duplicate mode {:?} (arity {arity}, mask {mask:b}, max_set {max_set})",
                            m.args
                        );
                        assert!(
                            m.args.contains(&ArgMode::Plus),
                            "mode without + (arity {arity}, mask {mask:b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn no_mode_without_plus() {
        // Unary constant-able attribute: no valid mode can exist with `#`
        // only, so just the `+` mode appears.
        let modes = generate_modes(RelId(0), &[true], 3);
        assert_eq!(modes.len(), 1);
        assert_eq!(modes[0].args, vec![ArgMode::Plus]);
    }

    #[test]
    fn subset_cap_limits_hash_count() {
        let modes = generate_modes(RelId(0), &[true; 5], 2);
        let max_hashes = modes
            .iter()
            .map(|m| m.args.iter().filter(|a| **a == ArgMode::Hash).count())
            .max()
            .unwrap();
        assert_eq!(max_hashes, 2);
        // Every mode has exactly one +.
        for m in &modes {
            assert_eq!(m.plus_positions().count(), 1);
        }
    }

    #[test]
    fn cartesian_preds_products_types() {
        let t = |n| TypeId(n);
        let a0 = [t(4)];
        let a1 = [t(0), t(2)];
        let per_attr: Vec<&[TypeId]> = vec![&a0, &a1];
        let preds = cartesian_preds(RelId(1), &per_attr, 64);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].types, vec![t(4), t(0)]);
        assert_eq!(preds[1].types, vec![t(4), t(2)]);
    }

    #[test]
    fn cartesian_preds_respects_cap() {
        let t = |n| TypeId(n);
        let types: Vec<TypeId> = (0..4).map(t).collect();
        let per_attr: Vec<&[TypeId]> = vec![&types, &types, &types];
        let preds = cartesian_preds(RelId(0), &per_attr, 10);
        assert_eq!(preds.len(), 10);
    }

    #[test]
    fn induce_bias_on_uw_fragment() {
        let mut db = uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.insert(target, &["juan", "sarita"]);
        db.insert(target, &["john", "mary"]);
        let cfg = AutoBiasConfig {
            constant_threshold: ConstantThreshold::Absolute(3),
            ..AutoBiasConfig::default()
        };
        let (bias, _graph, stats) = induce_bias(&db, target, &cfg).unwrap();
        assert_eq!(bias.target, target);
        assert!(stats.num_preds > 0);
        assert!(stats.num_modes > 0);
        // Target must not appear in body modes.
        assert!(bias.modes.iter().all(|m| m.rel != target));
        // inPhase[phase] has 1 distinct value < 3 → constant-able.
        let phase_rel = db.rel_id("inPhase").unwrap();
        assert!(bias.can_be_const(AttrRef::new(phase_rel, 1)));
        // The head must be typed.
        assert!(!bias.types_of(AttrRef::new(target, 0)).is_empty());
        // advisedBy[stud] must be joinable with student[stud] (exact IND).
        let student = db.rel_id("student").unwrap();
        assert!(bias.share_type(AttrRef::new(target, 0), AttrRef::new(student, 0)));
    }

    #[test]
    fn relative_threshold_small_ratio_allows() {
        let th = ConstantThreshold::Relative(0.18);
        assert!(th.allows(10, 100)); // 10% distinct
        assert!(!th.allows(50, 100)); // 50% distinct
        assert!(!th.allows(0, 0)); // empty relation: no constants
    }
}
