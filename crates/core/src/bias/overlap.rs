//! The McCreath–Sharma overlap heuristic (paper §7, ref \[34\]): assign two
//! attributes the same type whenever their value sets overlap in **at least
//! one element**. The paper argues this "may deliver a significantly
//! under-restricted search space" compared to IND-based typing — this module
//! exists so the claim can be measured (the `table5 --extended` column).
//!
//! Types are the connected components of the overlap relation (computed with
//! union-find), so a single shared value anywhere merges two domains —
//! exactly the over-merging the paper warns about.

use super::auto::{generate_modes, ConstantThreshold};
use super::{BiasError, LanguageBias, PredDef};
use constraints::TypeId;
use relstore::{AttrRef, Const, Database, FxHashMap, RelId};

/// Union-find over attribute indices.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Builds the overlap-typed bias: attributes sharing any value share a type;
/// modes are generated exactly like AutoBias's (§3.2) under the given
/// constant-threshold.
pub fn overlap_bias(
    db: &Database,
    target: RelId,
    constant_threshold: ConstantThreshold,
    max_constant_set_size: usize,
) -> Result<LanguageBias, BiasError> {
    let attrs = db.catalog().all_attrs();
    let mut uf = UnionFind::new(attrs.len());

    // Invert: value → first attribute seen with it; union subsequent ones.
    let mut owner: FxHashMap<Const, u32> = FxHashMap::default();
    for (ai, &attr) in attrs.iter().enumerate() {
        for v in db.distinct(attr) {
            match owner.get(&v) {
                Some(&first) => uf.union(first, ai as u32),
                None => {
                    owner.insert(v, ai as u32);
                }
            }
        }
    }

    // Components → dense type ids.
    let mut type_of_root: FxHashMap<u32, TypeId> = FxHashMap::default();
    let mut next = 0u32;
    let mut attr_type: FxHashMap<AttrRef, TypeId> = FxHashMap::default();
    for (ai, &attr) in attrs.iter().enumerate() {
        let root = uf.find(ai as u32);
        let t = *type_of_root.entry(root).or_insert_with(|| {
            let t = TypeId(next);
            next += 1;
            t
        });
        attr_type.insert(attr, t);
    }

    let mut preds = Vec::new();
    let mut modes = Vec::new();
    for (rel, schema) in db.catalog().iter() {
        let types: Vec<TypeId> = (0..schema.arity())
            .map(|pos| attr_type[&AttrRef::new(rel, pos)])
            .collect();
        preds.push(PredDef { rel, types });
        if rel != target {
            let tuples = db.relation(rel).len();
            let constable: Vec<bool> = (0..schema.arity())
                .map(|pos| {
                    let distinct = db.distinct(AttrRef::new(rel, pos)).len();
                    constant_threshold.allows(distinct, tuples)
                })
                .collect();
            modes.extend(generate_modes(rel, &constable, max_constant_set_size));
        }
    }
    LanguageBias::new(db, target, preds, modes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::fixtures::uw_fragment;

    fn attr(db: &Database, rel: &str, a: &str) -> AttrRef {
        let r = db.rel_id(rel).unwrap();
        AttrRef::new(r, db.catalog().schema(r).attr_pos(a).unwrap())
    }

    #[test]
    fn single_shared_value_merges_types() {
        let mut db = uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.insert(target, &["juan", "sarita"]);
        let bias = overlap_bias(&db, target, ConstantThreshold::Absolute(3), 2).unwrap();
        // publication[person] overlaps both student[stud] (juan) and
        // professor[prof] (sarita) → all three in ONE type: the
        // over-merging the paper describes.
        assert!(bias.share_type(
            attr(&db, "publication", "person"),
            attr(&db, "student", "stud")
        ));
        assert!(bias.share_type(attr(&db, "student", "stud"), attr(&db, "professor", "prof")));
    }

    #[test]
    fn disjoint_domains_stay_separate() {
        let mut db = Database::new();
        let r = db.add_relation("r", &["a"]);
        let s = db.add_relation("s", &["b"]);
        let target = db.add_relation("t", &["x"]);
        db.insert(r, &["v1"]);
        db.insert(s, &["w1"]);
        db.insert(target, &["v1"]);
        let bias = overlap_bias(&db, target, ConstantThreshold::Absolute(2), 2).unwrap();
        assert!(!bias.share_type(AttrRef::new(r, 0), AttrRef::new(s, 0)));
        // target shares v1 with r.
        assert!(bias.share_type(AttrRef::new(target, 0), AttrRef::new(r, 0)));
    }

    #[test]
    fn overlap_is_coarser_than_ind_typing() {
        // On the UW fragment the overlap bias has at most as many types as
        // the IND-based one (it merges at the slightest contact).
        let mut db = uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.insert(target, &["juan", "sarita"]);
        let overlap = overlap_bias(&db, target, ConstantThreshold::Absolute(3), 2).unwrap();
        let (auto, _, _) =
            super::super::auto::induce_bias(&db, target, &Default::default()).unwrap();
        let distinct_types = |b: &LanguageBias| {
            let mut ts: Vec<TypeId> = b
                .preds
                .iter()
                .flat_map(|p| p.types.iter().copied())
                .collect();
            ts.sort_unstable();
            ts.dedup();
            ts.len()
        };
        assert!(distinct_types(&overlap) <= distinct_types(&auto));
    }
}
