//! Parser for expert-written language bias.
//!
//! The format mirrors the paper's Table 3, one definition per line:
//!
//! ```text
//! # predicate definitions assign types to attributes
//! pred student(T1)
//! pred publication(T5, T1)
//! pred advisedBy(T1, T3)
//!
//! # mode definitions constrain literal arguments
//! mode student(+)
//! mode inPhase(+, -)
//! mode inPhase(+, #)
//! ```
//!
//! Type names are arbitrary identifiers, interned in order of first
//! appearance. Lines starting with `#` and blank lines are ignored.

use super::{ArgMode, BiasError, LanguageBias, ModeDef, PredDef};
use constraints::TypeId;
use relstore::{Database, FxHashMap, RelId};
use std::fmt;

/// Errors raised while parsing a textual bias specification.
#[derive(Debug)]
pub enum BiasParseError {
    /// A line that is neither `pred …` nor `mode …`.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A `pred`/`mode` declaration naming an unknown relation.
    UnknownRelation {
        /// 1-based line number.
        line: usize,
        /// Relation name given.
        name: String,
    },
    /// A mode argument other than `+`, `-`, `#`.
    BadModeArg {
        /// 1-based line number.
        line: usize,
        /// The offending argument token.
        arg: String,
    },
    /// The assembled bias failed validation.
    Invalid(BiasError),
}

impl fmt::Display for BiasParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BiasParseError::BadLine { line, text } => {
                write!(f, "line {line}: cannot parse {text:?}")
            }
            BiasParseError::UnknownRelation { line, name } => {
                write!(f, "line {line}: unknown relation {name:?}")
            }
            BiasParseError::BadModeArg { line, arg } => {
                write!(
                    f,
                    "line {line}: bad mode argument {arg:?} (expected +, -, or #)"
                )
            }
            BiasParseError::Invalid(e) => write!(f, "invalid bias: {e}"),
        }
    }
}

impl std::error::Error for BiasParseError {}

impl From<BiasError> for BiasParseError {
    fn from(e: BiasError) -> Self {
        BiasParseError::Invalid(e)
    }
}

/// Parses `relname(a, b, c)` into the name and raw argument tokens.
fn parse_call(s: &str) -> Option<(&str, Vec<&str>)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close < open {
        return None;
    }
    let name = s[..open].trim();
    if name.is_empty() {
        return None;
    }
    let inner = &s[open + 1..close];
    let args: Vec<&str> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(str::trim).collect()
    };
    Some((name, args))
}

/// Parses a textual bias for `target` over `db`.
pub fn parse_bias(
    db: &Database,
    target: RelId,
    text: &str,
) -> Result<LanguageBias, BiasParseError> {
    let mut type_ids: FxHashMap<String, TypeId> = FxHashMap::default();
    let mut next_type = 0u32;
    let mut preds = Vec::new();
    let mut modes = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some(pair) => pair,
            None => {
                return Err(BiasParseError::BadLine {
                    line: line_no,
                    text: line.to_string(),
                })
            }
        };
        let (name, args) = parse_call(rest.trim()).ok_or_else(|| BiasParseError::BadLine {
            line: line_no,
            text: line.to_string(),
        })?;
        let rel = db
            .rel_id(name)
            .ok_or_else(|| BiasParseError::UnknownRelation {
                line: line_no,
                name: name.to_string(),
            })?;
        match keyword {
            "pred" => {
                let types: Vec<TypeId> = args
                    .iter()
                    .map(|t| {
                        *type_ids.entry(t.to_string()).or_insert_with(|| {
                            let id = TypeId(next_type);
                            next_type += 1;
                            id
                        })
                    })
                    .collect();
                preds.push(PredDef { rel, types });
            }
            "mode" => {
                let parsed: Result<Vec<ArgMode>, BiasParseError> = args
                    .iter()
                    .map(|a| match *a {
                        "+" => Ok(ArgMode::Plus),
                        "-" => Ok(ArgMode::Minus),
                        "#" => Ok(ArgMode::Hash),
                        other => Err(BiasParseError::BadModeArg {
                            line: line_no,
                            arg: other.to_string(),
                        }),
                    })
                    .collect();
                modes.push(ModeDef { rel, args: parsed? });
            }
            _ => {
                return Err(BiasParseError::BadLine {
                    line: line_no,
                    text: line.to_string(),
                })
            }
        }
    }

    Ok(LanguageBias::new(db, target, preds, modes)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::fixtures::uw_fragment;
    use relstore::AttrRef;

    fn db_with_target() -> (Database, RelId) {
        let mut db = uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.insert(target, &["juan", "sarita"]);
        (db, target)
    }

    const UW_BIAS: &str = "
# Table 3 of the paper
pred student(T1)
pred inPhase(T1, T2)
pred professor(T3)
pred hasPosition(T3, T4)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)

mode student(+)
mode inPhase(+, -)
mode inPhase(+, #)
mode professor(+)
mode hasPosition(+, -)
mode publication(-, +)
";

    #[test]
    fn parses_table_3() {
        let (db, target) = db_with_target();
        let bias = parse_bias(&db, target, UW_BIAS).unwrap();
        assert_eq!(bias.preds.len(), 7);
        assert_eq!(bias.modes.len(), 6);
        let student = db.rel_id("student").unwrap();
        let publ = db.rel_id("publication").unwrap();
        let prof = db.rel_id("professor").unwrap();
        // publication[person] joins both student and professor.
        assert!(bias.share_type(AttrRef::new(publ, 1), AttrRef::new(student, 0)));
        assert!(bias.share_type(AttrRef::new(publ, 1), AttrRef::new(prof, 0)));
        // students and professors don't join.
        assert!(!bias.share_type(AttrRef::new(student, 0), AttrRef::new(prof, 0)));
        // inPhase[phase] is constant-able via `mode inPhase(+, #)`.
        let phase = db.rel_id("inPhase").unwrap();
        assert!(bias.can_be_const(AttrRef::new(phase, 1)));
    }

    #[test]
    fn roundtrips_through_render() {
        let (db, target) = db_with_target();
        let bias = parse_bias(&db, target, UW_BIAS).unwrap();
        let rendered = bias.render(&db);
        let again = parse_bias(&db, target, &rendered).unwrap();
        assert_eq!(again.preds.len(), bias.preds.len());
        assert_eq!(again.modes.len(), bias.modes.len());
    }

    #[test]
    fn unknown_relation_is_reported() {
        let (db, target) = db_with_target();
        let err = parse_bias(&db, target, "pred nosuch(T1)").unwrap_err();
        assert!(matches!(
            err,
            BiasParseError::UnknownRelation { line: 1, .. }
        ));
    }

    #[test]
    fn bad_mode_arg_is_reported() {
        let (db, target) = db_with_target();
        let err = parse_bias(&db, target, "pred advisedBy(T1, T3)\nmode student(*)").unwrap_err();
        assert!(matches!(err, BiasParseError::BadModeArg { line: 2, .. }));
    }

    #[test]
    fn junk_line_is_reported() {
        let (db, target) = db_with_target();
        let err = parse_bias(&db, target, "frobnicate student(+)").unwrap_err();
        assert!(matches!(err, BiasParseError::BadLine { line: 1, .. }));
    }

    #[test]
    fn missing_target_pred_fails_validation() {
        let (db, target) = db_with_target();
        let err = parse_bias(&db, target, "pred student(T1)").unwrap_err();
        assert!(matches!(
            err,
            BiasParseError::Invalid(BiasError::MissingTargetPred)
        ));
    }
}
