//! Interop with Aleph/Progol mode-declaration syntax — the format every
//! existing ILP bias is written in, and the one the paper's Aleph baseline
//! consumes:
//!
//! ```text
//! :- modeh(1, advisedBy(+student, +professor)).
//! :- modeb(*, publication(-title, +student)).
//! :- modeb(*, publication(-title, +professor)).
//! :- modeb(*, inPhase(+student, #phase)).
//! ```
//!
//! Aleph folds our two bias components into one declaration: the *type name*
//! after `+`/`-`/`#` plays the predicate-definition role and the symbol
//! plays the mode role. Import therefore produces both [`PredDef`]s and
//! [`ModeDef`]s; export merges them back (one `modeb` per mode, typed by a
//! per-attribute representative type).

use super::{ArgMode, BiasError, LanguageBias, ModeDef, PredDef};
use constraints::TypeId;
use relstore::{Database, FxHashMap, RelId};
use std::fmt;

/// Errors raised while parsing Aleph declarations.
#[derive(Debug)]
pub enum AlephParseError {
    /// Structurally malformed declaration.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// Unknown relation in a declaration.
    UnknownRelation {
        /// 1-based line number.
        line: usize,
        /// The relation name.
        name: String,
    },
    /// Arity mismatch with the schema.
    Arity {
        /// 1-based line number.
        line: usize,
        /// Relation name.
        name: String,
        /// Arguments given.
        given: usize,
        /// Arity expected.
        expected: usize,
    },
    /// The assembled bias failed validation.
    Invalid(BiasError),
}

impl fmt::Display for AlephParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlephParseError::Malformed { line, message } => write!(f, "line {line}: {message}"),
            AlephParseError::UnknownRelation { line, name } => {
                write!(f, "line {line}: unknown relation {name:?}")
            }
            AlephParseError::Arity {
                line,
                name,
                given,
                expected,
            } => {
                write!(f, "line {line}: {name} takes {expected} args, got {given}")
            }
            AlephParseError::Invalid(e) => write!(f, "invalid bias: {e}"),
        }
    }
}

impl std::error::Error for AlephParseError {}

impl From<BiasError> for AlephParseError {
    fn from(e: BiasError) -> Self {
        AlephParseError::Invalid(e)
    }
}

/// Parses Aleph `modeh`/`modeb` declarations into a [`LanguageBias`].
///
/// Recognized lines (others — including `determination/2`, `set/2`, and
/// comments starting with `%` — are ignored, as Aleph files typically mix
/// settings with modes):
///
/// ```text
/// :- modeh(RECALL, target(+t1, +t2)).
/// :- modeb(RECALL, rel(+t, -t, #t)).
/// ```
///
/// The recall bound (`1`, `*`, …) is accepted and discarded — this learner
/// does not bound per-literal recall.
pub fn parse_aleph_bias(
    db: &Database,
    target: RelId,
    text: &str,
) -> Result<LanguageBias, AlephParseError> {
    let mut type_ids: FxHashMap<String, TypeId> = FxHashMap::default();
    let mut next_type = 0u32;
    let mut intern = |name: &str, type_ids: &mut FxHashMap<String, TypeId>| -> TypeId {
        *type_ids.entry(name.to_string()).or_insert_with(|| {
            let t = TypeId(next_type);
            next_type += 1;
            t
        })
    };

    let mut preds: Vec<PredDef> = Vec::new();
    let mut modes: Vec<ModeDef> = Vec::new();
    let mut seen_preds: FxHashMap<(RelId, Vec<TypeId>), ()> = FxHashMap::default();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let Some(rest) = line
            .strip_prefix(":-")
            .map(str::trim)
            .filter(|r| r.starts_with("modeh(") || r.starts_with("modeb("))
        else {
            continue; // settings, determinations, comments
        };
        let is_head = rest.starts_with("modeh(");
        // Strip exactly one trailing `.` and the declaration's one closing
        // paren (the atom's own parens must survive).
        let mut inner = rest["modeh(".len()..].trim_end();
        inner = inner.strip_suffix('.').unwrap_or(inner).trim_end();
        let inner = inner
            .strip_suffix(')')
            .ok_or_else(|| AlephParseError::Malformed {
                line: line_no,
                message: format!("missing closing `)` in {line:?}"),
            })?;
        // inner = "RECALL, rel(args)"
        let (_recall, atom) = inner
            .split_once(',')
            .ok_or_else(|| AlephParseError::Malformed {
                line: line_no,
                message: format!("expected `modeX(recall, atom)` in {line:?}"),
            })?;
        let atom = atom.trim();
        let open = atom.find('(').ok_or_else(|| AlephParseError::Malformed {
            line: line_no,
            message: format!("expected an atom in {atom:?}"),
        })?;
        let close = atom.rfind(')').ok_or_else(|| AlephParseError::Malformed {
            line: line_no,
            message: format!("missing `)` in {atom:?}"),
        })?;
        let name = atom[..open].trim();
        let rel = db
            .rel_id(name)
            .ok_or_else(|| AlephParseError::UnknownRelation {
                line: line_no,
                name: name.to_string(),
            })?;
        let args: Vec<&str> = atom[open + 1..close].split(',').map(str::trim).collect();
        let expected = db.catalog().schema(rel).arity();
        if args.len() != expected {
            return Err(AlephParseError::Arity {
                line: line_no,
                name: name.to_string(),
                given: args.len(),
                expected,
            });
        }

        let mut arg_modes = Vec::with_capacity(args.len());
        let mut arg_types = Vec::with_capacity(args.len());
        for a in &args {
            let (symbol, tname) = a.split_at(1);
            let mode = match symbol {
                "+" => ArgMode::Plus,
                "-" => ArgMode::Minus,
                "#" => ArgMode::Hash,
                other => {
                    return Err(AlephParseError::Malformed {
                        line: line_no,
                        message: format!("argument {a:?}: unknown symbol {other:?}"),
                    })
                }
            };
            arg_modes.push(mode);
            arg_types.push(intern(tname, &mut type_ids));
        }

        if seen_preds.insert((rel, arg_types.clone()), ()).is_none() {
            preds.push(PredDef {
                rel,
                types: arg_types,
            });
        }
        if !is_head {
            modes.push(ModeDef {
                rel,
                args: arg_modes,
            });
        }
    }

    Ok(LanguageBias::new(db, target, preds, modes)?)
}

/// Exports a [`LanguageBias`] as Aleph declarations: one `modeh` for the
/// target, one `modeb` per mode, typed by each attribute's first type.
pub fn render_aleph_bias(db: &Database, bias: &LanguageBias) -> String {
    let type_name = |t: TypeId| format!("t{}", t.0);
    let attr_type = |rel: RelId, pos: usize| {
        bias.types_of(relstore::AttrRef::new(rel, pos))
            .first()
            .map(|&t| type_name(t))
            .unwrap_or_else(|| "any".to_string())
    };

    let mut out = String::new();
    let target_arity = db.catalog().schema(bias.target).arity();
    let head_args: Vec<String> = (0..target_arity)
        .map(|pos| format!("+{}", attr_type(bias.target, pos)))
        .collect();
    out.push_str(&format!(
        ":- modeh(1, {}({})).\n",
        db.catalog().schema(bias.target).name,
        head_args.join(", ")
    ));
    for mode in &bias.modes {
        let args: Vec<String> = mode
            .args
            .iter()
            .enumerate()
            .map(|(pos, m)| format!("{}{}", m, attr_type(mode.rel, pos)))
            .collect();
        out.push_str(&format!(
            ":- modeb(*, {}({})).\n",
            db.catalog().schema(mode.rel).name,
            args.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::fixtures::uw_fragment;
    use relstore::AttrRef;

    fn setup() -> (Database, RelId) {
        let mut db = uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.insert(target, &["juan", "sarita"]);
        (db, target)
    }

    const ALEPH: &str = "
% advisedBy background theory, Aleph format
:- set(clauselength, 6).
:- modeh(1, advisedBy(+student, +professor)).
:- modeb(*, publication(-title, +student)).
:- modeb(*, publication(-title, +professor)).
:- modeb(*, inPhase(+student, #phase)).
:- modeb(1, student(+student)).
:- modeb(1, professor(+professor)).
:- determination(advisedBy/2, publication/2).
";

    #[test]
    fn parses_modeh_and_modeb() {
        let (db, target) = setup();
        let bias = parse_aleph_bias(&db, target, ALEPH).unwrap();
        assert_eq!(bias.modes.len(), 5); // modeh is not a body mode
        let publ = db.rel_id("publication").unwrap();
        let student = db.rel_id("student").unwrap();
        let professor = db.rel_id("professor").unwrap();
        // person attribute typed both student and professor.
        assert!(bias.share_type(AttrRef::new(publ, 1), AttrRef::new(student, 0)));
        assert!(bias.share_type(AttrRef::new(publ, 1), AttrRef::new(professor, 0)));
        assert!(!bias.share_type(AttrRef::new(student, 0), AttrRef::new(professor, 0)));
        // # marks phase constant-able.
        let in_phase = db.rel_id("inPhase").unwrap();
        assert!(bias.can_be_const(AttrRef::new(in_phase, 1)));
        // Head typed from modeh.
        assert!(!bias.types_of(AttrRef::new(target, 0)).is_empty());
    }

    #[test]
    fn settings_and_determinations_are_ignored() {
        let (db, target) = setup();
        let bias = parse_aleph_bias(
            &db,
            target,
            ":- set(noise, 5).\n:- modeh(1, advisedBy(+s, +p)).\n:- determination(advisedBy/2, student/1).",
        )
        .unwrap();
        assert!(bias.modes.is_empty());
    }

    #[test]
    fn roundtrip_through_render() {
        let (db, target) = setup();
        let bias = parse_aleph_bias(&db, target, ALEPH).unwrap();
        let rendered = render_aleph_bias(&db, &bias);
        assert!(rendered.contains(":- modeh(1, advisedBy("));
        let again = parse_aleph_bias(&db, target, &rendered).unwrap();
        assert_eq!(again.modes.len(), bias.modes.len());
        // Joinability structure is preserved.
        let publ = db.rel_id("publication").unwrap();
        let student = db.rel_id("student").unwrap();
        assert_eq!(
            bias.share_type(AttrRef::new(publ, 1), AttrRef::new(student, 0)),
            again.share_type(AttrRef::new(publ, 1), AttrRef::new(student, 0)),
        );
    }

    #[test]
    fn errors_are_located() {
        let (db, target) = setup();
        let err = parse_aleph_bias(&db, target, ":- modeb(*, nosuch(+x)).").unwrap_err();
        assert!(matches!(
            err,
            AlephParseError::UnknownRelation { line: 1, .. }
        ));
        let err = parse_aleph_bias(&db, target, ":- modeb(*, student(+a, +b)).").unwrap_err();
        assert!(matches!(
            err,
            AlephParseError::Arity {
                given: 2,
                expected: 1,
                ..
            }
        ));
        let err = parse_aleph_bias(&db, target, ":- modeb(*, student(?a)).").unwrap_err();
        assert!(matches!(err, AlephParseError::Malformed { .. }));
    }

    /// An imported Aleph bias drives the learner end to end.
    #[test]
    fn imported_bias_learns() {
        use crate::bottom::{BcConfig, SamplingStrategy};
        use crate::example::{Example, TrainingSet};
        use crate::learn::{Learner, LearnerConfig};

        let (mut db, target) = setup();
        db.insert(target, &["john", "mary"]);
        db.build_indexes();
        let bias = parse_aleph_bias(&db, target, ALEPH).unwrap();
        let juan = db.lookup("juan").unwrap();
        let sarita = db.lookup("sarita").unwrap();
        let john = db.lookup("john").unwrap();
        let mary = db.lookup("mary").unwrap();
        let train = TrainingSet::new(
            vec![
                Example::new(target, vec![juan, sarita]),
                Example::new(target, vec![john, mary]),
            ],
            vec![
                Example::new(target, vec![juan, mary]),
                Example::new(target, vec![john, sarita]),
            ],
        );
        let cfg = LearnerConfig {
            bc: BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_tuples: 1000,
                max_body_literals: 10_000,
            },
            ..LearnerConfig::default()
        };
        let (def, _, pos_cov, neg_cov) = Learner::new(cfg).learn_with_coverage(&db, &bias, &train);
        assert!(!def.is_empty());
        assert!(pos_cov.iter().all(|&c| c));
        assert!(neg_cov.iter().all(|&c| !c));
    }
}
