//! Baseline language biases from the paper's §6.2:
//!
//! - **Castor** — no real bias: every attribute shares one type, and every
//!   attribute may be a variable *or* a constant;
//! - **Castor without constants (`No const.`)** — one shared type, variables
//!   only.
//!
//! Both reuse the §3.2 mode-generation machinery with a degenerate
//! constant-ability predicate.

use super::auto::generate_modes;
use super::{BiasError, LanguageBias, ModeDef, PredDef};
use constraints::TypeId;
use relstore::{Database, RelId};

/// Builds the Castor baseline bias: a single universal type and constants
/// allowed on every attribute. `max_constant_set_size` caps the `#`-subset
/// enumeration exactly as in [`super::auto::AutoBiasConfig`].
pub fn castor_bias(
    db: &Database,
    target: RelId,
    max_constant_set_size: usize,
) -> Result<LanguageBias, BiasError> {
    build_uniform(db, target, true, max_constant_set_size)
}

/// Builds the `No const.` baseline: a single universal type, no constants.
pub fn no_const_bias(db: &Database, target: RelId) -> Result<LanguageBias, BiasError> {
    build_uniform(db, target, false, 0)
}

fn build_uniform(
    db: &Database,
    target: RelId,
    constants: bool,
    max_set: usize,
) -> Result<LanguageBias, BiasError> {
    let universal = TypeId(0);
    let mut preds = Vec::new();
    let mut modes: Vec<ModeDef> = Vec::new();
    for (rel, schema) in db.catalog().iter() {
        preds.push(PredDef {
            rel,
            types: vec![universal; schema.arity()],
        });
        if rel != target {
            let constable = vec![constants; schema.arity()];
            modes.extend(generate_modes(rel, &constable, max_set));
        }
    }
    LanguageBias::new(db, target, preds, modes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::fixtures::uw_fragment;
    use relstore::AttrRef;

    fn with_target() -> (Database, RelId) {
        let mut db = uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.insert(target, &["juan", "sarita"]);
        (db, target)
    }

    #[test]
    fn castor_everything_joins_everything() {
        let (db, target) = with_target();
        let bias = castor_bias(&db, target, 2).unwrap();
        let student = db.rel_id("student").unwrap();
        let phase = db.rel_id("inPhase").unwrap();
        // Even semantically different attributes share the universal type.
        assert!(bias.share_type(AttrRef::new(student, 0), AttrRef::new(phase, 1)));
        // Constants allowed everywhere.
        assert!(bias.can_be_const(AttrRef::new(phase, 0)));
        assert!(bias.can_be_const(AttrRef::new(phase, 1)));
    }

    #[test]
    fn no_const_has_no_hash_modes() {
        let (db, target) = with_target();
        let bias = no_const_bias(&db, target).unwrap();
        for (rel, schema) in db.catalog().iter() {
            for pos in 0..schema.arity() {
                assert!(!bias.can_be_const(AttrRef::new(rel, pos)));
            }
        }
        // Still has one mode per attribute per relation (minus the target).
        let expected: usize = db
            .catalog()
            .iter()
            .filter(|(r, _)| *r != target)
            .map(|(_, s)| s.arity())
            .sum();
        assert_eq!(bias.modes.len(), expected);
    }

    #[test]
    fn castor_bias_is_larger_than_no_const() {
        let (db, target) = with_target();
        let castor = castor_bias(&db, target, 2).unwrap();
        let noconst = no_const_bias(&db, target).unwrap();
        assert!(castor.size() > noconst.size());
    }
}
