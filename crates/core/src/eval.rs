//! Evaluation: precision / recall / F-measure and k-fold cross validation
//! (paper §6.1, "Measure").
//!
//! ```
//! use autobias::eval::Metrics;
//! let m = Metrics { tp: 8, fp: 2, fn_: 2 };
//! assert_eq!(m.precision(), 0.8);
//! assert_eq!(m.recall(), 0.8);
//! assert!((m.f_measure() - 0.8).abs() < 1e-12);
//! ```

use crate::bias::LanguageBias;
use crate::bottom::{BcConfig, SamplingStrategy};
use crate::clause::Definition;
use crate::coverage::CoverageEngine;
use crate::example::{Example, TrainingSet};
use crate::learn::{definition_covers_neg, definition_covers_pos, Learner};
use crate::subsume::SubsumeConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use relstore::Database;
use std::time::{Duration, Instant};

/// Confusion counts and derived measures for one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Positive test examples covered by the definition.
    pub tp: usize,
    /// Negative test examples covered by the definition.
    pub fp: usize,
    /// Positive test examples not covered.
    pub fn_: usize,
}

impl Metrics {
    /// Precision: `tp / (tp + fp)`; 0 when nothing is covered (matching the
    /// paper's convention for definitions that cover no examples).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall: `tp / (tp + fn)`; 0 when there are no positives.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F-measure: harmonic mean of precision and recall.
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Evaluates a learned definition on test examples.
///
/// Test coverage is computed against **unsampled** ground bottom clauses
/// (depth `depth`), so sampling during learning cannot silently inflate the
/// measured quality: a clause covers a test example iff it θ-subsumes the
/// example's full neighbourhood.
pub fn evaluate_definition(
    db: &Database,
    bias: &LanguageBias,
    def: &Definition,
    test: &TrainingSet,
    depth: usize,
    seed: u64,
) -> Metrics {
    let cfg = BcConfig {
        depth,
        strategy: SamplingStrategy::Full,
        max_body_literals: 100_000,
        max_tuples: 100_000,
    };
    let engine = CoverageEngine::build(db, bias, test, &cfg, SubsumeConfig::default(), seed);
    let tp = (0..test.pos.len())
        .filter(|&i| definition_covers_pos(def, &engine, i))
        .count();
    let fp = (0..test.neg.len())
        .filter(|&i| definition_covers_neg(def, &engine, i))
        .count();
    Metrics {
        tp,
        fp,
        fn_: test.pos.len() - tp,
    }
}

/// Splits positives and negatives into `k` stratified folds and yields
/// `(train, test)` pairs. Examples are shuffled with `seed` first.
pub fn kfold_splits(
    pos: &[Example],
    neg: &[Example],
    k: usize,
    seed: u64,
) -> Vec<(TrainingSet, TrainingSet)> {
    assert!(k >= 2, "cross validation needs k >= 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos = pos.to_vec();
    let mut neg = neg.to_vec();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);

    let fold_of = |i: usize| i % k;
    (0..k)
        .map(|fold| {
            let split = |items: &[Example]| -> (Vec<Example>, Vec<Example>) {
                let mut train = Vec::new();
                let mut test = Vec::new();
                for (i, e) in items.iter().enumerate() {
                    if fold_of(i) == fold {
                        test.push(e.clone());
                    } else {
                        train.push(e.clone());
                    }
                }
                (train, test)
            };
            let (pos_train, pos_test) = split(&pos);
            let (neg_train, neg_test) = split(&neg);
            (
                TrainingSet::new(pos_train, neg_train),
                TrainingSet::new(pos_test, neg_test),
            )
        })
        .collect()
}

/// Result of one cross-validation fold.
#[derive(Debug, Clone)]
pub struct FoldResult {
    /// Test-set metrics.
    pub metrics: Metrics,
    /// Learning wall-clock time (excludes evaluation).
    pub learn_time: Duration,
    /// Clauses learned.
    pub clauses: usize,
}

/// Aggregated cross-validation result.
#[derive(Debug, Clone, Default)]
pub struct CvResult {
    /// Per-fold results.
    pub folds: Vec<FoldResult>,
}

impl CvResult {
    /// Mean precision over folds.
    pub fn precision(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.metrics.precision()))
    }

    /// Mean recall over folds.
    pub fn recall(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.metrics.recall()))
    }

    /// Mean F-measure over folds.
    pub fn f_measure(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.metrics.f_measure()))
    }

    /// Mean learning time over folds.
    pub fn learn_time(&self) -> Duration {
        let total: Duration = self.folds.iter().map(|f| f.learn_time).sum();
        total
            .checked_div(self.folds.len().max(1) as u32)
            .unwrap_or_default()
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Runs k-fold cross validation for one learner/bias pair.
pub fn cross_validate(
    db: &Database,
    bias: &LanguageBias,
    learner: &Learner,
    pos: &[Example],
    neg: &[Example],
    k: usize,
    seed: u64,
) -> CvResult {
    let mut folds = Vec::with_capacity(k);
    for (train, test) in kfold_splits(pos, neg, k, seed) {
        let t0 = Instant::now();
        let (def, _) = learner.learn(db, bias, &train);
        let learn_time = t0.elapsed();
        let metrics = evaluate_definition(db, bias, &def, &test, learner.cfg.bc.depth, seed);
        folds.push(FoldResult {
            metrics,
            learn_time,
            clauses: def.len(),
        });
    }
    CvResult { folds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::RelId;

    #[test]
    fn metrics_math() {
        let m = Metrics {
            tp: 8,
            fp: 2,
            fn_: 2,
        };
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 0.8).abs() < 1e-12);
        assert!((m.f_measure() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_coverage_is_all_zero() {
        let m = Metrics {
            tp: 0,
            fp: 0,
            fn_: 5,
        };
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f_measure(), 0.0);
    }

    #[test]
    fn perfect_definition_scores_one() {
        let m = Metrics {
            tp: 10,
            fp: 0,
            fn_: 0,
        };
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f_measure(), 1.0);
    }

    fn fake_examples(n: usize) -> Vec<Example> {
        (0..n)
            .map(|i| Example::new(RelId(0), vec![relstore::Const(i as u32)]))
            .collect()
    }

    #[test]
    fn kfold_partitions_every_example_exactly_once() {
        let pos = fake_examples(23);
        let neg = fake_examples(41);
        let splits = kfold_splits(&pos, &neg, 5, 7);
        assert_eq!(splits.len(), 5);
        let mut test_pos_total = 0;
        let mut test_neg_total = 0;
        for (train, test) in &splits {
            assert_eq!(train.pos.len() + test.pos.len(), 23);
            assert_eq!(train.neg.len() + test.neg.len(), 41);
            test_pos_total += test.pos.len();
            test_neg_total += test.neg.len();
            // No overlap between train and test.
            for e in &test.pos {
                assert!(!train.pos.contains(e));
            }
        }
        assert_eq!(test_pos_total, 23);
        assert_eq!(test_neg_total, 41);
    }

    #[test]
    fn kfold_is_seeded() {
        let pos = fake_examples(10);
        let neg = fake_examples(10);
        let a = kfold_splits(&pos, &neg, 5, 1);
        let b = kfold_splits(&pos, &neg, 5, 1);
        let c = kfold_splits(&pos, &neg, 5, 2);
        assert_eq!(a[0].1.pos, b[0].1.pos);
        assert_ne!(a[0].1.pos, c[0].1.pos);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn kfold_rejects_k_one() {
        let pos = fake_examples(4);
        kfold_splits(&pos, &pos, 1, 0);
    }
}

#[cfg(test)]
mod cv_tests {
    use super::*;
    use crate::bias::parse::parse_bias;
    use crate::bottom::{BcConfig, SamplingStrategy};
    use crate::learn::LearnerConfig;

    /// cross_validate runs k folds end to end and aggregates sane metrics on
    /// a clean co-authorship world.
    #[test]
    fn cross_validate_end_to_end() {
        let mut db = Database::new();
        let student = db.add_relation("student", &["stud"]);
        let professor = db.add_relation("professor", &["prof"]);
        let publ = db.add_relation("publication", &["title", "person"]);
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for i in 0..12 {
            let s = format!("s{i}");
            let p = format!("f{i}");
            let t = format!("t{i}");
            db.insert(student, &[&s]);
            db.insert(professor, &[&p]);
            db.insert(publ, &[&t, &s]);
            db.insert(publ, &[&t, &p]);
            db.insert(target, &[&s, &p]);
        }
        for i in 0..12 {
            let s = db.lookup(&format!("s{i}")).unwrap();
            let p = db.lookup(&format!("f{i}")).unwrap();
            let p2 = db.lookup(&format!("f{}", (i + 3) % 12)).unwrap();
            pos.push(Example::new(target, vec![s, p]));
            neg.push(Example::new(target, vec![s, p2]));
        }
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred student(T1)
pred professor(T3)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)
mode student(+)
mode professor(+)
mode publication(-, +)
",
        )
        .unwrap();
        let learner = Learner::new(LearnerConfig {
            bc: BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_tuples: 2000,
                max_body_literals: 20_000,
            },
            ..LearnerConfig::default()
        });
        let cv = cross_validate(&db, &bias, &learner, &pos, &neg, 3, 9);
        assert_eq!(cv.folds.len(), 3);
        assert!(cv.f_measure() > 0.9, "CV FM {}", cv.f_measure());
        assert!(cv.precision() > 0.9);
        assert!(cv.recall() > 0.9);
        assert!(cv.learn_time() > Duration::ZERO);
        for f in &cv.folds {
            assert!(f.clauses >= 1);
        }
    }
}
