//! The semi-join tree `G` of paper §4.2.4: an explicit plan of the semi-join
//! chains that bottom-clause construction walks.
//!
//! Each node is a relation *occurrence* (the same relation may appear under
//! several parents, once per usable mode edge); the root is the target
//! relation; an edge `n_R1 → n_R2` labeled `(A, B)` means `R1 ⋊_{A=B} R2`
//! can be sampled according to the mode and predicate definitions. BC
//! construction's BFS expansion visits exactly the relation occurrences of
//! this tree, so the tree doubles as an *a-priori reachability analysis*:
//! relations absent from the tree can never contribute a literal, no matter
//! the data.

use crate::bias::LanguageBias;
use relstore::{AttrRef, Database, RelId};

/// One node of the semi-join tree.
#[derive(Debug, Clone)]
pub struct SjNode {
    /// The relation this node samples from.
    pub rel: RelId,
    /// Depth below the root (root = 0).
    pub depth: usize,
    /// Edge label: parent attribute `A` and this relation's attribute `B`
    /// such that `parent ⋊_{A=B} rel`. `None` for the root.
    pub via: Option<(AttrRef, AttrRef)>,
    /// Index of the parent node (`None` for the root).
    pub parent: Option<usize>,
    /// Children node indices.
    pub children: Vec<usize>,
}

/// The semi-join tree for one target under one language bias.
#[derive(Debug, Clone)]
pub struct SemijoinTree {
    /// Nodes in BFS order; node 0 is the root (the target relation).
    pub nodes: Vec<SjNode>,
}

impl SemijoinTree {
    /// Builds the tree to `depth` levels below the root.
    ///
    /// A child `n_R2` is added under `n_R1` for every pair of join-compatible
    /// attributes `(A of R1, B of R2)` where `B` carries a `+` in some mode
    /// of `R2` and `A` may hold a variable (the BC construction hop
    /// condition). Multiple labels between the same relations create multiple
    /// child nodes, matching the paper ("R2 may be represented by multiple
    /// distinct nodes in G").
    pub fn build(db: &Database, bias: &LanguageBias, depth: usize) -> Self {
        // Probe points: every (rel, + position) from the body modes.
        let mut probes: Vec<AttrRef> = Vec::new();
        {
            let mut rels: Vec<RelId> = bias.body_rels().collect();
            rels.sort_unstable();
            let mut seen = relstore::FxHashSet::default();
            for rel in rels {
                for mode in bias.modes_for(rel) {
                    for j in mode.plus_positions() {
                        let attr = AttrRef::new(rel, j);
                        if seen.insert(attr) {
                            probes.push(attr);
                        }
                    }
                }
            }
        }

        let mut nodes = vec![SjNode {
            rel: bias.target,
            depth: 0,
            via: None,
            parent: None,
            children: Vec::new(),
        }];

        let mut frontier = vec![0usize];
        for d in 1..=depth {
            let mut next = Vec::new();
            for &ni in &frontier {
                let parent_rel = nodes[ni].rel;
                let parent_arity = db.catalog().schema(parent_rel).arity();
                for out_pos in 0..parent_arity {
                    let out_attr = AttrRef::new(parent_rel, out_pos);
                    // The hop leaves through a variable-capable attribute...
                    if !bias.can_be_var(out_attr) && nodes[ni].parent.is_some() {
                        continue;
                    }
                    for &probe in &probes {
                        // ...and enters through a type-compatible `+` attr.
                        if !bias.share_type(out_attr, probe) {
                            continue;
                        }
                        let id = nodes.len();
                        nodes.push(SjNode {
                            rel: probe.rel,
                            depth: d,
                            via: Some((out_attr, probe)),
                            parent: Some(ni),
                            children: Vec::new(),
                        });
                        nodes[ni].children.push(id);
                        next.push(id);
                    }
                }
            }
            frontier = next;
        }
        Self { nodes }
    }

    /// Relations reachable anywhere in the tree (those that can contribute
    /// literals to a bottom clause).
    pub fn reachable_rels(&self) -> Vec<RelId> {
        let mut rels: Vec<RelId> = self.nodes.iter().skip(1).map(|n| n.rel).collect();
        rels.sort_unstable();
        rels.dedup();
        rels
    }

    /// Number of semi-join chains (leaves at maximal depth plus truncated
    /// branches): the count of distinct `R1 ⋊ … ⋊ Rk` expressions the
    /// sampler may evaluate.
    pub fn num_chains(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.children.is_empty() && n.parent.is_some())
            .count()
    }

    /// Renders the tree with catalog names, one node per line, indented.
    pub fn render(&self, db: &Database) -> String {
        let mut out = String::new();
        self.render_node(db, 0, &mut out);
        out
    }

    fn render_node(&self, db: &Database, ni: usize, out: &mut String) {
        let node = &self.nodes[ni];
        let cat = db.catalog();
        for _ in 0..node.depth {
            out.push_str("  ");
        }
        match node.via {
            None => out.push_str(&format!("{} (target)\n", cat.schema(node.rel).name)),
            Some((a, b)) => out.push_str(&format!(
                "⋊ {} on ({}, {})\n",
                cat.schema(node.rel).name,
                cat.attr_name(a),
                cat.attr_name(b)
            )),
        }
        for &c in &node.children {
            self.render_node(db, c, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::parse::parse_bias;
    use relstore::fixtures::uw_fragment;

    fn setup() -> (Database, LanguageBias) {
        let mut db = uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        let bias = parse_bias(
            &db,
            target,
            "
pred student(T1)
pred inPhase(T1, T2)
pred professor(T3)
pred hasPosition(T3, T4)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)
mode student(+)
mode inPhase(+, -)
mode professor(+)
mode hasPosition(+, -)
mode publication(-, +)
",
        )
        .unwrap();
        (db, bias)
    }

    #[test]
    fn depth_one_reaches_direct_joins() {
        let (db, bias) = setup();
        let tree = SemijoinTree::build(&db, &bias, 1);
        let reachable = tree.reachable_rels();
        // From advisedBy(stud: T1, prof: T3): student, inPhase, publication
        // (via T1 and T3), professor, hasPosition.
        for name in [
            "student",
            "inPhase",
            "professor",
            "hasPosition",
            "publication",
        ] {
            let rel = db.rel_id(name).unwrap();
            assert!(reachable.contains(&rel), "{name} unreachable at depth 1");
        }
    }

    #[test]
    fn unreachable_relation_is_absent() {
        // A relation with no mode is never in the tree.
        let (mut db, _) = setup();
        let orphan = db.add_relation("orphan", &["x"]);
        let target = db.rel_id("advisedBy").unwrap();
        let bias = parse_bias(
            &db,
            target,
            "
pred student(T1)
pred advisedBy(T1, T3)
pred orphan(T9)
mode student(+)
",
        )
        .unwrap();
        let tree = SemijoinTree::build(&db, &bias, 3);
        assert!(!tree.reachable_rels().contains(&orphan));
    }

    #[test]
    fn deeper_trees_have_more_chains() {
        let (db, bias) = setup();
        let t1 = SemijoinTree::build(&db, &bias, 1);
        let t2 = SemijoinTree::build(&db, &bias, 2);
        assert!(t2.nodes.len() > t1.nodes.len());
        assert!(t2.num_chains() >= t1.num_chains());
    }

    #[test]
    fn root_is_target_and_edges_are_labeled() {
        let (db, bias) = setup();
        let tree = SemijoinTree::build(&db, &bias, 2);
        assert_eq!(tree.nodes[0].rel, bias.target);
        assert!(tree.nodes[0].via.is_none());
        for n in &tree.nodes[1..] {
            let (a, b) = n.via.expect("non-root nodes carry a label");
            assert!(bias.share_type(a, b), "edge label must be join-compatible");
            assert_eq!(b.rel, n.rel);
        }
    }

    #[test]
    fn render_mentions_target_and_joins() {
        let (db, bias) = setup();
        let tree = SemijoinTree::build(&db, &bias, 1);
        let s = tree.render(&db);
        assert!(s.contains("advisedBy (target)"));
        assert!(s.contains("⋊ publication"));
    }

    /// Every relation that actually contributes literals to a (full) bottom
    /// clause is predicted reachable by the tree.
    #[test]
    fn tree_reachability_is_sound_for_bc_construction() {
        use crate::bottom::{build_bottom_clause, BcConfig, SamplingStrategy};
        use crate::example::Example;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let (mut db, bias) = setup();
        let target = db.rel_id("advisedBy").unwrap();
        let juan = db.intern("juan");
        let sarita = db.intern("sarita");
        db.build_indexes();
        let tree = SemijoinTree::build(&db, &bias, 2);
        let reachable = tree.reachable_rels();
        let mut rng = StdRng::seed_from_u64(0);
        let bc = build_bottom_clause(
            &db,
            &bias,
            &Example::new(target, vec![juan, sarita]),
            &BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_tuples: 10_000,
                max_body_literals: 100_000,
            },
            &mut rng,
        );
        for lit in &bc.ground.body {
            assert!(
                reachable.contains(&lit.rel),
                "BC used relation {} the tree says is unreachable",
                db.catalog().schema(lit.rel).name
            );
        }
    }
}
