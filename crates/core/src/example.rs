//! Training examples: ground facts of the target relation, labeled
//! positive or negative.

use relstore::{Const, Database, RelId};

/// One ground example of the target relation, e.g. `advisedBy(juan, sarita)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Example {
    /// The target relation.
    pub rel: RelId,
    /// The example's constants, one per target attribute.
    pub args: Box<[Const]>,
}

impl Example {
    /// Creates an example.
    pub fn new(rel: RelId, args: impl Into<Box<[Const]>>) -> Self {
        Self {
            rel,
            args: args.into(),
        }
    }

    /// Creates an example by interning the given strings.
    pub fn from_strs(db: &mut Database, rel: RelId, args: &[&str]) -> Self {
        let consts: Box<[Const]> = args.iter().map(|a| db.intern(a)).collect();
        Self { rel, args: consts }
    }

    /// Renders with constant names, e.g. `advisedBy(juan, sarita)`.
    pub fn render(&self, db: &Database) -> String {
        db.render_tuple(self.rel, &self.args)
    }
}

/// Splits a user-supplied comma-separated tuple (`"juan, sarita"`) into its
/// fields, trimming whitespace around every comma. Rejects empty input and
/// empty fields (`"a,,b"`, trailing commas) with a message naming the
/// offending text — shared by `autobias predict` and the serve `/predict`
/// endpoint so both report tuples identically.
pub fn parse_arg_tuple(raw: &str) -> Result<Vec<String>, String> {
    let raw_trimmed = raw.trim();
    if raw_trimmed.is_empty() {
        return Err("empty tuple: expected comma-separated constants".to_string());
    }
    let fields: Vec<&str> = raw_trimmed.split(',').map(str::trim).collect();
    if let Some(pos) = fields.iter().position(|f| f.is_empty()) {
        return Err(format!(
            "empty field at position {} in tuple {raw_trimmed:?}",
            pos + 1
        ));
    }
    Ok(fields.into_iter().map(String::from).collect())
}

/// Positive and negative examples of one target relation.
#[derive(Debug, Clone, Default)]
pub struct TrainingSet {
    /// Positive examples `E+`.
    pub pos: Vec<Example>,
    /// Negative examples `E−`.
    pub neg: Vec<Example>,
}

impl TrainingSet {
    /// Creates a training set.
    pub fn new(pos: Vec<Example>, neg: Vec<Example>) -> Self {
        Self { pos, neg }
    }

    /// Total number of examples.
    pub fn len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Whether there are no examples at all.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_render() {
        let mut db = Database::new();
        let adv = db.add_relation("advisedBy", &["stud", "prof"]);
        let e = Example::from_strs(&mut db, adv, &["juan", "sarita"]);
        assert_eq!(e.render(&db), "advisedBy(juan, sarita)");
        assert_eq!(e.args.len(), 2);
    }

    #[test]
    fn parse_arg_tuple_trims_and_rejects_empties() {
        assert_eq!(
            parse_arg_tuple("juan,sarita").unwrap(),
            vec!["juan", "sarita"]
        );
        assert_eq!(
            parse_arg_tuple("  juan ,  sarita  ").unwrap(),
            vec!["juan", "sarita"]
        );
        assert_eq!(parse_arg_tuple("solo").unwrap(), vec!["solo"]);
        let err = parse_arg_tuple("").unwrap_err();
        assert!(err.contains("empty tuple"), "{err}");
        let err = parse_arg_tuple("   ").unwrap_err();
        assert!(err.contains("empty tuple"), "{err}");
        let err = parse_arg_tuple("a,,b").unwrap_err();
        assert!(err.contains("position 2"), "{err}");
        let err = parse_arg_tuple("a,b,").unwrap_err();
        assert!(err.contains("position 3"), "{err}");
    }

    #[test]
    fn training_set_counts() {
        let mut db = Database::new();
        let adv = db.add_relation("t", &["a"]);
        let e1 = Example::from_strs(&mut db, adv, &["x"]);
        let e2 = Example::from_strs(&mut db, adv, &["y"]);
        let ts = TrainingSet::new(vec![e1], vec![e2]);
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
    }
}
