//! Training examples: ground facts of the target relation, labeled
//! positive or negative.

use relstore::{Const, Database, RelId};

/// One ground example of the target relation, e.g. `advisedBy(juan, sarita)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Example {
    /// The target relation.
    pub rel: RelId,
    /// The example's constants, one per target attribute.
    pub args: Box<[Const]>,
}

impl Example {
    /// Creates an example.
    pub fn new(rel: RelId, args: impl Into<Box<[Const]>>) -> Self {
        Self {
            rel,
            args: args.into(),
        }
    }

    /// Creates an example by interning the given strings.
    pub fn from_strs(db: &mut Database, rel: RelId, args: &[&str]) -> Self {
        let consts: Box<[Const]> = args.iter().map(|a| db.intern(a)).collect();
        Self { rel, args: consts }
    }

    /// Renders with constant names, e.g. `advisedBy(juan, sarita)`.
    pub fn render(&self, db: &Database) -> String {
        db.render_tuple(self.rel, &self.args)
    }
}

/// Positive and negative examples of one target relation.
#[derive(Debug, Clone, Default)]
pub struct TrainingSet {
    /// Positive examples `E+`.
    pub pos: Vec<Example>,
    /// Negative examples `E−`.
    pub neg: Vec<Example>,
}

impl TrainingSet {
    /// Creates a training set.
    pub fn new(pos: Vec<Example>, neg: Vec<Example>) -> Self {
        Self { pos, neg }
    }

    /// Total number of examples.
    pub fn len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Whether there are no examples at all.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_render() {
        let mut db = Database::new();
        let adv = db.add_relation("advisedBy", &["stud", "prof"]);
        let e = Example::from_strs(&mut db, adv, &["juan", "sarita"]);
        assert_eq!(e.render(&db), "advisedBy(juan, sarita)");
        assert_eq!(e.args.len(), 2);
    }

    #[test]
    fn training_set_counts() {
        let mut db = Database::new();
        let adv = db.add_relation("t", &["a"]);
        let e1 = Example::from_strs(&mut db, adv, &["x"]);
        let e2 = Example::from_strs(&mut db, adv, &["y"]);
        let ts = TrainingSet::new(vec![e1], vec![e2]);
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
    }
}
