//! Generalization (paper §2.3.2): the **armg** operator (asymmetric relative
//! minimal generalization) and the beam search that applies it.
//!
//! Given a bottom clause `C` and a positive example `e'` it does not cover,
//! armg repeatedly finds the *blocking atom* — the least `i` such that the
//! prefix clause `T ← L1, …, Li` does not cover `e'` — drops it, prunes
//! literals that lost head-connectivity, and repeats until `e'` is covered.
//! Each step strictly shrinks the clause, so termination is guaranteed.

use crate::clause::{Clause, Literal};
use crate::coverage::CoverageEngine;
use rand::seq::SliceRandom;
use rand::Rng;
use std::hash::{Hash, Hasher};

/// Beam-search configuration for `LearnClause`.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Clauses kept per beam iteration.
    pub beam_width: usize,
    /// Positive examples sampled per iteration to drive armg (the paper's
    /// `E+_S`).
    pub sample_size: usize,
    /// Maximum beam iterations (the search also stops when the score stops
    /// improving).
    pub max_iterations: usize,
    /// Optional wall-clock deadline; the beam search returns its best
    /// clause so far once passed (set by the covering loop from
    /// `LearnerConfig::time_budget` — without it a single beam iteration
    /// over an unrestricted Castor-style bottom clause can run for hours,
    /// the very pathology the paper reports as `>10h`).
    pub deadline: Option<std::time::Instant>,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            beam_width: 3,
            sample_size: 10,
            max_iterations: 10,
            deadline: None,
        }
    }
}

/// Finds the blocking atom for `clause` w.r.t. positive example `pos_idx`:
/// the least prefix length `i` (1-based literal index) whose prefix clause
/// fails to cover the example. Returns `None` when the full clause covers it.
///
/// Prefix coverage is antitone in the prefix length (literals only constrain),
/// so a binary search over prefix lengths finds the blocking atom with
/// `O(log n)` subsumption tests.
pub fn blocking_atom(clause: &Clause, engine: &CoverageEngine, pos_idx: usize) -> Option<usize> {
    let prefix_covers = |len: usize| {
        let prefix = Clause::new(clause.head.clone(), clause.body[..len].to_vec());
        engine.covers_pos(&prefix, pos_idx)
    };
    if prefix_covers(clause.body.len()) {
        return None;
    }
    // Invariant: prefix of length `lo` covers, prefix of length `hi` does not.
    let mut lo = 0usize;
    let mut hi = clause.body.len();
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if prefix_covers(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi - 1) // zero-based index of the blocking literal
}

/// Linear-scan variant of [`blocking_atom`], kept for the `generalization`
/// bench's ablation: the binary search does `O(log n)` coverage tests per
/// removal, the scan does `O(n)`.
pub fn blocking_atom_linear(
    clause: &Clause,
    engine: &CoverageEngine,
    pos_idx: usize,
) -> Option<usize> {
    for len in 1..=clause.body.len() {
        let prefix = Clause::new(clause.head.clone(), clause.body[..len].to_vec());
        if !engine.covers_pos(&prefix, pos_idx) {
            return Some(len - 1);
        }
    }
    None
}

/// Applies armg: generalizes `clause` until it covers positive `pos_idx`.
/// Returns `None` if generalization degenerates to an empty body (the clause
/// would cover everything — never useful as a candidate).
pub fn armg(clause: &Clause, engine: &CoverageEngine, pos_idx: usize) -> Option<Clause> {
    let mut current = clause.clone();
    while let Some(block) = blocking_atom(&current, engine, pos_idx) {
        current.body.remove(block);
        current.prune_unconnected();
        if current.body.is_empty() {
            return None;
        }
    }
    Some(current)
}

/// Post-processing: greedy backward literal elimination. Drops a body
/// literal when the clause still covers exactly the same positives and no
/// additional negatives — removing only *redundant* literals (the trivially
/// satisfiable ones armg's head-connectivity rule keeps around), so the
/// clause's training behaviour is unchanged but it reads like the paper's
/// example clauses.
///
/// Cost: one coverage evaluation per body literal.
pub fn reduce_clause(clause: &Clause, engine: &CoverageEngine) -> Clause {
    let all_pos: Vec<usize> = (0..engine.pos.len()).collect();
    let base_pos = engine.covered_pos_subset(clause, &all_pos);
    let base_neg = engine.count_neg(clause);
    let mut current = clause.clone();
    let mut i = current.body.len();
    while i > 0 {
        i -= 1;
        if current.body.len() <= 1 {
            break;
        }
        let mut candidate = current.clone();
        candidate.body.remove(i);
        candidate.prune_unconnected();
        if candidate.body.is_empty() {
            continue;
        }
        // Removal can only generalize: keeping the drop is sound whenever it
        // loses no positives (it cannot) and gains no negatives.
        let p = engine.covered_pos_subset(&candidate, &all_pos);
        if p.len() >= base_pos.len() && engine.count_neg(&candidate) <= base_neg {
            i = i.min(candidate.body.len());
            current = candidate;
        }
    }
    current
}

/// Whether constraint-driven beam pruning is enabled: the `AUTOBIAS_PRUNE`
/// environment variable, where `0` disables it (the escape hatch CI uses to
/// prove the pruned and unpruned paths learn byte-identical definitions).
pub fn constraint_pruning_enabled() -> bool {
    std::env::var("AUTOBIAS_PRUNE").map_or(true, |v| v.trim() != "0")
}

/// Cap on stored constraints per kind: consults are linear scans, so the
/// store must stay small. Beam runs produce at most a few hundred rejected
/// candidates, so the cap is generous; overflow silently stops harvesting
/// (pruning is an optimization, never required for correctness).
const CONSTRAINT_STORE_CAP: usize = 4096;

/// A canonical-form-keyed store of **coverage constraints** harvested from
/// scored beam candidates (after Cropper & Hocquette, "Learning logic
/// programs by discovering where not to search"), consulted before any
/// coverage test:
///
/// - a candidate measured to cover **zero positives** dooms every
///   *specialisation* (body ⊇ its body, same head): specialising only
///   shrinks coverage, so the specialisation's positive count is injected
///   as 0 without testing;
/// - every candidate whose negative count was measured — whether rejected
///   at its scoring cutoff (truncated count) or scored in full (exact
///   count) — bounds every *generalisation* (body ⊆ its body, same head)
///   from below: generalising only grows coverage, so when the inherited
///   bound already exceeds the current cutoff the candidate is dropped
///   before any negative test runs;
/// - an **exact** negative count for a canonically identical re-encounter
///   is injected outright: negatives are fixed for the whole learn run and
///   θ-subsumption is a pure function of (clause, ground BC, budget), so
///   the stored number *is* what the skipped scan would return.
///
/// Bodies are stored as sorted multisets of literal hashes of the
/// *canonical* clause (all candidates are canonicalized before scoring), so
/// the subset checks are linear merges and "specialisation" is literal
/// multiset inclusion under the identity substitution — a sound
/// under-approximation of θ-subsumption order, and an exact match (same
/// multiset, same head) is α-equivalence. Constraints stay valid for a
/// whole learn run: zero-positive claims are over the `uncovered` set, which
/// only shrinks, and negative bounds are against the fixed negatives.
///
/// Every prune has a provably identical outcome to the test it skips, so
/// learned output is bit-for-bit independent of `AUTOBIAS_PRUNE`; the
/// `AUTOBIAS_PRUNE=0|1` byte-identity suite pins that transparency on UW.
#[derive(Debug, Default)]
pub struct ConstraintStore {
    enabled: bool,
    /// `(head key, sorted body literal keys)` of zero-positive candidates.
    zero_pos: Vec<(u64, Box<[u64]>)>,
    /// `(head key, sorted body literal keys, bound, exact)` per measured
    /// candidate: `bound` is a lower bound on its negative count, exact when
    /// `exact` (counting ran to completion rather than stopping at the
    /// scoring cutoff).
    neg_bounds: Vec<(u64, Box<[u64]>, usize, bool)>,
    /// Dedup of zero-positive bodies (hash of head + body keys).
    seen_zero: relstore::FxHashSet<u64>,
    /// Index into `neg_bounds` by body hash, for exact-repeat lookup and
    /// in-place upgrades (truncated bound → exact count).
    seen_neg: relstore::FxHashMap<u64, usize>,
}

impl ConstraintStore {
    /// A store honouring `AUTOBIAS_PRUNE` (read once at creation).
    pub fn new() -> Self {
        Self {
            enabled: constraint_pruning_enabled(),
            ..Self::default()
        }
    }

    /// A store that never prunes nor harvests (`AUTOBIAS_PRUNE=0` behavior).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Number of stored constraints (both kinds).
    pub fn len(&self) -> usize {
        self.zero_pos.len() + self.neg_bounds.len()
    }

    /// Whether the store holds no constraints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn keys_of(clause: &Clause) -> (u64, Box<[u64]>) {
        let mut body: Vec<u64> = clause.body.iter().map(lit_key).collect();
        body.sort_unstable();
        (lit_key(&clause.head), body.into_boxed_slice())
    }

    fn harvest_key(head: u64, body: &[u64]) -> u64 {
        let mut h = head.rotate_left(17);
        for &k in body {
            h = h.rotate_left(5) ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        h
    }

    /// Records a candidate measured at zero positive coverage.
    pub fn harvest_zero_pos(&mut self, clause: &Clause) {
        if !self.enabled || self.zero_pos.len() >= CONSTRAINT_STORE_CAP {
            return;
        }
        let (head, body) = Self::keys_of(clause);
        if self.seen_zero.insert(Self::harvest_key(head, &body)) {
            self.zero_pos.push((head, body));
        }
    }

    /// Records a candidate whose measured negative count reached `bound`;
    /// `exact` when counting ran to completion (the bound is the count)
    /// rather than stopping at the scoring cutoff (truncated). Re-harvests
    /// of the same body upgrade the stored entry in place.
    pub fn harvest_neg_bound(&mut self, clause: &Clause, bound: usize, exact: bool) {
        if !self.enabled {
            return;
        }
        let (head, body) = Self::keys_of(clause);
        match self.seen_neg.entry(Self::harvest_key(head, &body)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let slot = &mut self.neg_bounds[*e.get()];
                if slot.0 == head && slot.1 == body {
                    slot.2 = slot.2.max(bound);
                    slot.3 |= exact;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                if self.neg_bounds.len() >= CONSTRAINT_STORE_CAP {
                    return;
                }
                e.insert(self.neg_bounds.len());
                self.neg_bounds.push((head, body, bound, exact));
            }
        }
    }

    /// Whether `clause` is a specialisation of a stored zero-positive
    /// candidate — in which case its positive coverage is provably zero.
    pub fn implies_zero_pos(&self, clause: &Clause) -> bool {
        if !self.enabled || self.zero_pos.is_empty() {
            return false;
        }
        let (head, body) = Self::keys_of(clause);
        self.zero_pos
            .iter()
            .any(|(h, b)| *h == head && b.len() <= body.len() && multiset_subset(b, &body))
    }

    /// The exact negative count stored for a canonically identical clause,
    /// if a fully measured one exists. O(1): hashed body lookup.
    pub fn neg_exact(&self, clause: &Clause) -> Option<usize> {
        if !self.enabled || self.neg_bounds.is_empty() {
            return None;
        }
        let (head, body) = Self::keys_of(clause);
        let &idx = self.seen_neg.get(&Self::harvest_key(head, &body))?;
        let (h, b, n, exact) = &self.neg_bounds[idx];
        (*exact && *h == head && *b == body).then_some(*n)
    }

    /// The largest stored negative lower bound applying to `clause` (i.e.
    /// from a stored candidate `clause` generalises), if any.
    pub fn neg_lower_bound(&self, clause: &Clause) -> Option<usize> {
        if !self.enabled || self.neg_bounds.is_empty() {
            return None;
        }
        let (head, body) = Self::keys_of(clause);
        self.neg_bounds
            .iter()
            .filter(|(h, b, _, _)| *h == head && body.len() <= b.len() && multiset_subset(&body, b))
            .map(|&(_, _, lb, _)| lb)
            .max()
    }
}

/// A structural key for one literal (relation + args, vars by id). Canonical
/// clauses give α-equivalent literals equal keys; a 64-bit collision between
/// distinct literals is the only failure mode and would at worst suppress or
/// add a prune that the byte-identity suite detects.
fn lit_key(l: &Literal) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    l.hash(&mut h);
    h.finish()
}

/// Multiset inclusion over two ascending-sorted key slices.
fn multiset_subset(small: &[u64], big: &[u64]) -> bool {
    let mut bi = 0usize;
    'outer: for &s in small {
        while bi < big.len() {
            match big[bi].cmp(&s) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Statistics of one `LearnClause` invocation.
#[derive(Debug, Clone, Default)]
pub struct LearnClauseStats {
    /// Beam iterations executed.
    pub iterations: usize,
    /// armg applications.
    pub armg_calls: usize,
    /// Candidates scored.
    pub candidates_scored: usize,
    /// Distinct candidates generated by armg across all iterations.
    pub candidates_generated: usize,
    /// Candidates skipped before full scoring: by the positive-coverage
    /// upper bound, or because the monotone negative cutoff proved their
    /// score strictly below the beam's k-th best.
    pub candidates_pruned: usize,
    /// armg results dropped as α-equivalent duplicates (canonical-form
    /// dedup) of a candidate already kept this iteration.
    pub candidates_deduped: usize,
    /// Candidates answered or dropped by the failure-constraint store before
    /// any coverage test ran ([`ConstraintStore`]).
    pub candidates_pruned_by_constraint: usize,
}

/// The `LearnClause` step of Algorithm 1: builds candidates from the seed's
/// bottom clause by beam search over armg generalizations, scoring each by
/// positives-covered − negatives-covered over `uncovered` ∪ negatives.
///
/// `seed` indexes into `engine.pos`; `uncovered` are the positive indices not
/// yet covered by the definition under construction. `store` carries failure
/// constraints across covering iterations — rejected candidates harvested
/// here prune future beam candidates before any coverage test (pass
/// [`ConstraintStore::disabled`] to opt out).
pub fn learn_clause<R: Rng>(
    engine: &CoverageEngine,
    seed: usize,
    uncovered: &[usize],
    cfg: &GenConfig,
    store: &mut ConstraintStore,
    rng: &mut R,
) -> (Clause, LearnClauseStats) {
    let mut stats = LearnClauseStats::default();
    let mut sp = obs::span!("learn.clause_search");
    let bottom = engine.pos[seed].clause.clone();

    let score_of = |c: &Clause, stats: &mut LearnClauseStats| {
        stats.candidates_scored += 1;
        engine.score(c, uncovered).0
    };

    let mut best = bottom.clone();
    let mut best_score = score_of(&bottom, &mut stats);
    let mut beam: Vec<(Clause, i64)> = vec![(bottom, best_score)];

    for _ in 0..cfg.max_iterations {
        stats.iterations += 1;
        // Sample E+_S from the uncovered positives.
        let mut sample: Vec<usize> = uncovered.to_vec();
        sample.shuffle(rng);
        sample.truncate(cfg.sample_size);

        let past_deadline = || cfg.deadline.is_some_and(|d| std::time::Instant::now() >= d);
        let mut raw: Vec<Clause> = Vec::new();
        'gen: for (clause, _) in &beam {
            for &e in &sample {
                if past_deadline() {
                    break 'gen;
                }
                if engine.covers_pos(clause, e) {
                    continue; // already covered: armg would be a no-op
                }
                stats.armg_calls += 1;
                if let Some(generalized) = armg(clause, engine, e) {
                    raw.push(generalized);
                }
            }
        }
        // Distinct armg results often coincide — across beam members, across
        // sample examples, and as α-variants of each other. Canonical forms
        // collapse all of those so each equivalence class is scored once,
        // and the kept clause IS the canonical form, so the coverage memo
        // keys below are exact repeats.
        let raw_len = raw.len();
        let mut seen: relstore::FxHashSet<Clause> = relstore::FxHashSet::default();
        let mut unique: Vec<Clause> = Vec::new();
        for c in raw {
            let canon = engine.canonical(&c);
            if seen.insert(canon.clone()) {
                unique.push(canon);
            }
        }
        stats.candidates_deduped += raw_len - unique.len();
        if unique.is_empty() {
            break;
        }
        stats.candidates_generated += unique.len();

        // Constraint consult #1: a specialisation of a stored zero-positive
        // candidate provably covers zero positives — inject p = 0 without
        // testing. Injection keeps the candidate in its original slot so the
        // stable sorts below (and therefore the learned output) are
        // bit-identical with pruning off.
        let known_zero: Vec<bool> = unique.iter().map(|c| store.implies_zero_pos(c)).collect();
        let test_idx: Vec<usize> = (0..unique.len()).filter(|&i| !known_zero[i]).collect();
        stats.candidates_pruned_by_constraint += unique.len() - test_idx.len();

        // Positive halves of all candidates scored as one batched parallel
        // map over (candidate × example) pairs — balanced even when the
        // beam holds one expensive clause and several cheap ones.
        let to_test: Vec<Clause> = test_idx.iter().map(|&i| unique[i].clone()).collect();
        let ps = engine.batch_covered_pos(&to_test, uncovered);
        let mut p_of = vec![0usize; unique.len()];
        for (k, &i) in test_idx.iter().enumerate() {
            p_of[i] = ps[k];
        }
        let mut with_p: Vec<(Clause, usize)> = unique.into_iter().zip(p_of).collect();
        // Constraint harvest #1: freshly measured zero-positive candidates.
        for (c, p) in &with_p {
            if *p == 0 {
                store.harvest_zero_pos(c);
            }
        }
        with_p.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.len().cmp(&b.0.len())));

        // Scoring with sound pruning: score = p − n ≤ p, so once a
        // candidate's positive coverage cannot beat the beam's k-th best
        // full score, negative counting (the expensive half over every
        // negative example) is skipped.
        let mut candidates: Vec<(Clause, i64)> = Vec::new();
        let total = with_p.len();
        for (idx, (c, p)) in with_p.into_iter().enumerate() {
            if past_deadline() && !candidates.is_empty() {
                break;
            }
            let kth_best = if candidates.len() >= cfg.beam_width {
                Some(candidates[cfg.beam_width - 1].1)
            } else {
                None
            };
            if let Some(kth) = kth_best {
                if (p as i64) <= kth {
                    // p is an upper bound on the score: prune the rest.
                    stats.candidates_pruned += total - idx;
                    break;
                }
            }
            // Monotone cutoff: the candidate can only enter the beam if
            // s = p − n ≥ kth, i.e. n ≤ p − kth (p > kth here, so the cast
            // is safe). Exceeding the cutoff proves s < kth strictly — such
            // a candidate could never displace a beam entry, so dropping it
            // leaves the final beam bit-identical to exact scoring.
            let cutoff = kth_best.map(|kth| (p as i64 - kth) as usize);
            // Constraint consult #2: an exact count stored for a canonically
            // identical clause IS what the scan below would measure —
            // negatives are fixed and subsumption is a pure function — so
            // inject it and take the same branch the scan would take.
            // Otherwise, a generalisation of any stored candidate inherits
            // its lower bound; when that already exceeds the cutoff, the
            // negative scan would provably end in the same `continue`.
            let known_n = store.neg_exact(&c);
            if known_n.is_none() {
                if let Some(lb) = store.neg_lower_bound(&c) {
                    if cutoff.is_some_and(|k| lb > k) {
                        stats.candidates_pruned_by_constraint += 1;
                        continue;
                    }
                }
            }
            let (n_value, n_exceeds) = match known_n {
                Some(n) => {
                    stats.candidates_pruned_by_constraint += 1;
                    (n, cutoff.is_some_and(|k| n > k))
                }
                None => {
                    stats.candidates_scored += 1;
                    let n = engine.count_neg_budget(&c, cutoff);
                    (n.value(), n.exceeds(cutoff))
                }
            };
            if n_exceeds {
                // Constraint harvest #2: the measured count is a lower
                // bound on this candidate's — and every generalisation's —
                // negative coverage (exact only if counting finished).
                store.harvest_neg_bound(&c, n_value, known_n.is_some());
                stats.candidates_pruned += 1;
                continue;
            }
            // Constraint harvest #3: a fully counted number is exact and
            // also bounds every generalisation from below (negatives are
            // fixed, coverage is monotone under generalisation) —
            // harvesting *accepted* candidates too is what makes the store
            // fire on re-encounters across covering iterations.
            store.harvest_neg_bound(&c, n_value, true);
            let s = p as i64 - n_value as i64;
            candidates.push((c, s));
            candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.len().cmp(&b.0.len())));
        }
        if candidates.is_empty() {
            break;
        }
        candidates.truncate(cfg.beam_width);

        let round_best = candidates[0].1;
        if round_best > best_score {
            best_score = round_best;
            best = candidates[0].0.clone();
            beam = candidates;
        } else {
            break; // no improvement: stop (paper: "iterates until the
                   // clauses cannot be improved")
        }
        if past_deadline() {
            break;
        }
    }

    crate::instrument::CANDIDATES_GENERATED.add(stats.candidates_generated as u64);
    crate::instrument::CANDIDATES_PRUNED.add(stats.candidates_pruned as u64);
    crate::instrument::CANDIDATES_DEDUPED.add(stats.candidates_deduped as u64);
    crate::instrument::CANDIDATES_PRUNED_BY_CONSTRAINT
        .add(stats.candidates_pruned_by_constraint as u64);
    if sp.is_active() {
        sp.note("iterations", stats.iterations as u64);
        sp.note("armg_calls", stats.armg_calls as u64);
        sp.note("candidates_generated", stats.candidates_generated as u64);
        sp.note("candidates_scored", stats.candidates_scored as u64);
        sp.note("candidates_pruned", stats.candidates_pruned as u64);
        sp.note("candidates_deduped", stats.candidates_deduped as u64);
        sp.note(
            "candidates_pruned_by_constraint",
            stats.candidates_pruned_by_constraint as u64,
        );
        sp.note("best_len", best.len() as u64);
    }
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::parse::parse_bias;
    use crate::bottom::{BcConfig, SamplingStrategy};
    use crate::example::{Example, TrainingSet};
    use crate::subsume::SubsumeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use relstore::Database;

    /// A small UW-like database where the true rule is co-authorship:
    /// advisedBy(s, p) iff s and p share a publication. Extra noise tuples
    /// (phases, positions) make the bottom clauses over-specific so armg has
    /// real work to do.
    fn build_world() -> (Database, TrainingSet, crate::bias::LanguageBias) {
        let mut db = Database::new();
        let student = db.add_relation("student", &["stud"]);
        let professor = db.add_relation("professor", &["prof"]);
        let in_phase = db.add_relation("inPhase", &["stud", "phase"]);
        let publ = db.add_relation("publication", &["title", "person"]);
        let target = db.add_relation("advisedBy", &["stud", "prof"]);

        let phases = ["pre_quals", "post_quals", "post_generals"];
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for i in 0..6 {
            let s = format!("s{i}");
            let p = format!("f{i}");
            db.insert(student, &[&s]);
            db.insert(professor, &[&p]);
            db.insert(in_phase, &[&s, phases[i % 3]]);
            // Student i co-authors with professor i.
            let t = format!("paper{i}");
            db.insert(publ, &[&t, &s]);
            db.insert(publ, &[&t, &p]);
        }
        for i in 0..6 {
            let s = db.lookup(&format!("s{i}")).unwrap();
            let p = db.lookup(&format!("f{i}")).unwrap();
            let p_other = db.lookup(&format!("f{}", (i + 1) % 6)).unwrap();
            pos.push(Example::new(target, vec![s, p]));
            neg.push(Example::new(target, vec![s, p_other]));
        }
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred student(T1)
pred professor(T3)
pred inPhase(T1, T2)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)
mode student(+)
mode professor(+)
mode inPhase(+, -)
mode inPhase(+, #)
mode publication(-, +)
",
        )
        .unwrap();
        (db, TrainingSet::new(pos, neg), bias)
    }

    fn build_engine(
        db: &Database,
        train: &TrainingSet,
        bias: &crate::bias::LanguageBias,
    ) -> CoverageEngine {
        let cfg = BcConfig {
            depth: 2,
            strategy: SamplingStrategy::Full,
            max_body_literals: 100_000,
            max_tuples: 1000,
        };
        CoverageEngine::build(db, bias, train, &cfg, SubsumeConfig::default(), 11)
    }

    #[test]
    fn armg_generalizes_bc_to_cover_other_positive() {
        let (db, train, bias) = build_world();
        let engine = build_engine(&db, &train, &bias);
        let bc = engine.pos[0].clause.clone();
        // The seed's BC mentions s0's phase constant, so it cannot cover
        // s1 (different phase).
        assert!(!engine.covers_pos(&bc, 1));
        let g = armg(&bc, &engine, 1).expect("generalization must succeed");
        assert!(
            engine.covers_pos(&g, 1),
            "armg result must cover the target"
        );
        assert!(engine.covers_pos(&g, 0), "armg must stay a generalization");
        assert!(g.len() < bc.len(), "armg strictly shrinks the clause");
    }

    #[test]
    fn blocking_atom_is_minimal() {
        let (db, train, bias) = build_world();
        let engine = build_engine(&db, &train, &bias);
        let bc = engine.pos[0].clause.clone();
        if let Some(i) = blocking_atom(&bc, &engine, 1) {
            // Prefix up to (but excluding) i covers; including i does not.
            let before = Clause::new(bc.head.clone(), bc.body[..i].to_vec());
            let with = Clause::new(bc.head.clone(), bc.body[..=i].to_vec());
            assert!(engine.covers_pos(&before, 1));
            assert!(!engine.covers_pos(&with, 1));
        } else {
            panic!("expected a blocking atom");
        }
    }

    #[test]
    fn armg_none_when_covered() {
        let (db, train, bias) = build_world();
        let engine = build_engine(&db, &train, &bias);
        let bc = engine.pos[0].clause.clone();
        assert!(blocking_atom(&bc, &engine, 0).is_none());
        // armg on an already-covered example returns the clause unchanged.
        let same = armg(&bc, &engine, 0).unwrap();
        assert_eq!(same, bc);
    }

    #[test]
    fn learn_clause_finds_coauthorship() {
        let (db, train, bias) = build_world();
        let engine = build_engine(&db, &train, &bias);
        let uncovered: Vec<usize> = (0..train.pos.len()).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ConstraintStore::disabled();
        let (clause, stats) = learn_clause(
            &engine,
            0,
            &uncovered,
            &GenConfig::default(),
            &mut store,
            &mut rng,
        );
        let (_, p, n) = engine.score(&clause, &uncovered);
        assert_eq!(
            p,
            6,
            "clause should cover all positives: {}",
            clause.render(&db)
        );
        assert_eq!(
            n,
            0,
            "clause should cover no negatives: {}",
            clause.render(&db)
        );
        assert!(stats.armg_calls > 0);
    }

    #[test]
    fn multiset_subset_is_inclusion_with_multiplicity() {
        assert!(multiset_subset(&[], &[]));
        assert!(multiset_subset(&[], &[1, 2]));
        assert!(multiset_subset(&[2], &[1, 2, 3]));
        assert!(multiset_subset(&[1, 2], &[1, 2]));
        assert!(multiset_subset(&[2, 2], &[1, 2, 2, 3]));
        assert!(!multiset_subset(&[2, 2], &[1, 2, 3])); // multiplicity counts
        assert!(!multiset_subset(&[4], &[1, 2, 3]));
        assert!(!multiset_subset(&[1, 2], &[2])); // bigger than big
    }

    /// Builds `t(V0, V1) ← body` over the given relation ids, with each body
    /// literal reading `rel(V0, Vk)` for a fresh k — so dropping literals
    /// gives genuine multiset-subset bodies (all vars hang off the head).
    fn star_clause(rels: &[u32]) -> Clause {
        use crate::clause::{Term, VarId};
        use relstore::RelId;
        let head = Literal::new(RelId(99), vec![Term::Var(VarId(0)), Term::Var(VarId(1))]);
        let body = rels
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                Literal::new(
                    RelId(r),
                    vec![Term::Var(VarId(0)), Term::Var(VarId(i as u32 + 2))],
                )
            })
            .collect();
        Clause::new(head, body)
    }

    #[test]
    fn zero_pos_constraint_dooms_specialisations_only() {
        let mut store = ConstraintStore {
            enabled: true,
            ..ConstraintStore::default()
        };
        store.harvest_zero_pos(&star_clause(&[1, 2]));
        // Specialisation (superset body): provably zero positives.
        assert!(store.implies_zero_pos(&star_clause(&[1, 2, 3])));
        // The stored clause itself is its own specialisation.
        assert!(store.implies_zero_pos(&star_clause(&[1, 2])));
        // Generalisations and unrelated bodies are NOT doomed.
        assert!(!store.implies_zero_pos(&star_clause(&[1])));
        assert!(!store.implies_zero_pos(&star_clause(&[1, 3])));
        assert!(store.len() == 1 && !store.is_empty());
    }

    #[test]
    fn neg_bound_flows_to_generalisations_and_upgrades_in_place() {
        let mut store = ConstraintStore {
            enabled: true,
            ..ConstraintStore::default()
        };
        // Truncated bound on the specific clause.
        store.harvest_neg_bound(&star_clause(&[1, 2, 3]), 4, false);
        // Generalisations (subset bodies) inherit the bound...
        assert_eq!(store.neg_lower_bound(&star_clause(&[1, 2])), Some(4));
        // ...under the *identity* substitution only: `star_clause(&[3])`
        // names its output V2 where the stored body names it V4, so the
        // hash-multiset check conservatively declines (a missed prune, never
        // an unsound one).
        assert_eq!(store.neg_lower_bound(&star_clause(&[3])), None);
        // A truncated bound is never served as exact.
        assert_eq!(store.neg_exact(&star_clause(&[1, 2, 3])), None);
        // Specialisations do not inherit (they may cover fewer negatives).
        assert_eq!(store.neg_lower_bound(&star_clause(&[1, 2, 3, 4])), None);
        // Re-harvesting the same body exactly upgrades the entry in place.
        store.harvest_neg_bound(&star_clause(&[1, 2, 3]), 7, true);
        assert_eq!(store.len(), 1, "upgrade must not duplicate the entry");
        assert_eq!(store.neg_exact(&star_clause(&[1, 2, 3])), Some(7));
        assert_eq!(store.neg_lower_bound(&star_clause(&[1])), Some(7));
        // Exactness is keyed on the precise body: near misses stay inexact.
        assert_eq!(store.neg_exact(&star_clause(&[1, 2])), None);
    }

    #[test]
    fn disabled_store_never_harvests_nor_answers() {
        let mut store = ConstraintStore::disabled();
        store.harvest_zero_pos(&star_clause(&[1]));
        store.harvest_neg_bound(&star_clause(&[1, 2]), 9, true);
        assert!(store.is_empty());
        assert!(!store.implies_zero_pos(&star_clause(&[1, 2])));
        assert_eq!(store.neg_exact(&star_clause(&[1, 2])), None);
        assert_eq!(store.neg_lower_bound(&star_clause(&[1])), None);
    }

    /// Pruning on vs off must learn the same clause on the co-authorship
    /// world — the in-process version of the UW byte-identity suite.
    #[test]
    fn learn_clause_is_invariant_under_constraint_pruning() {
        let (db, train, bias) = build_world();
        let engine = build_engine(&db, &train, &bias);
        let uncovered: Vec<usize> = (0..train.pos.len()).collect();
        let run = |store: &mut ConstraintStore| {
            let mut rng = StdRng::seed_from_u64(5);
            learn_clause(
                &engine,
                0,
                &uncovered,
                &GenConfig::default(),
                store,
                &mut rng,
            )
            .0
        };
        let without = run(&mut ConstraintStore::disabled());
        let mut store = ConstraintStore {
            enabled: true,
            ..ConstraintStore::default()
        };
        let with = run(&mut store);
        // Run twice with the same warm store: re-encounters answered from it.
        let with_warm = run(&mut store);
        assert_eq!(
            without,
            with,
            "pruning changed the learned clause: {}",
            with.render(&db)
        );
        assert_eq!(without, with_warm, "warm store changed the learned clause");
        assert!(!store.is_empty(), "co-authorship run harvested nothing");
    }
}
