//! Generalization (paper §2.3.2): the **armg** operator (asymmetric relative
//! minimal generalization) and the beam search that applies it.
//!
//! Given a bottom clause `C` and a positive example `e'` it does not cover,
//! armg repeatedly finds the *blocking atom* — the least `i` such that the
//! prefix clause `T ← L1, …, Li` does not cover `e'` — drops it, prunes
//! literals that lost head-connectivity, and repeats until `e'` is covered.
//! Each step strictly shrinks the clause, so termination is guaranteed.

use crate::clause::Clause;
use crate::coverage::CoverageEngine;
use rand::seq::SliceRandom;
use rand::Rng;

/// Beam-search configuration for `LearnClause`.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Clauses kept per beam iteration.
    pub beam_width: usize,
    /// Positive examples sampled per iteration to drive armg (the paper's
    /// `E+_S`).
    pub sample_size: usize,
    /// Maximum beam iterations (the search also stops when the score stops
    /// improving).
    pub max_iterations: usize,
    /// Optional wall-clock deadline; the beam search returns its best
    /// clause so far once passed (set by the covering loop from
    /// `LearnerConfig::time_budget` — without it a single beam iteration
    /// over an unrestricted Castor-style bottom clause can run for hours,
    /// the very pathology the paper reports as `>10h`).
    pub deadline: Option<std::time::Instant>,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            beam_width: 3,
            sample_size: 10,
            max_iterations: 10,
            deadline: None,
        }
    }
}

/// Finds the blocking atom for `clause` w.r.t. positive example `pos_idx`:
/// the least prefix length `i` (1-based literal index) whose prefix clause
/// fails to cover the example. Returns `None` when the full clause covers it.
///
/// Prefix coverage is antitone in the prefix length (literals only constrain),
/// so a binary search over prefix lengths finds the blocking atom with
/// `O(log n)` subsumption tests.
pub fn blocking_atom(clause: &Clause, engine: &CoverageEngine, pos_idx: usize) -> Option<usize> {
    let prefix_covers = |len: usize| {
        let prefix = Clause::new(clause.head.clone(), clause.body[..len].to_vec());
        engine.covers_pos(&prefix, pos_idx)
    };
    if prefix_covers(clause.body.len()) {
        return None;
    }
    // Invariant: prefix of length `lo` covers, prefix of length `hi` does not.
    let mut lo = 0usize;
    let mut hi = clause.body.len();
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if prefix_covers(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi - 1) // zero-based index of the blocking literal
}

/// Linear-scan variant of [`blocking_atom`], kept for the `generalization`
/// bench's ablation: the binary search does `O(log n)` coverage tests per
/// removal, the scan does `O(n)`.
pub fn blocking_atom_linear(
    clause: &Clause,
    engine: &CoverageEngine,
    pos_idx: usize,
) -> Option<usize> {
    for len in 1..=clause.body.len() {
        let prefix = Clause::new(clause.head.clone(), clause.body[..len].to_vec());
        if !engine.covers_pos(&prefix, pos_idx) {
            return Some(len - 1);
        }
    }
    None
}

/// Applies armg: generalizes `clause` until it covers positive `pos_idx`.
/// Returns `None` if generalization degenerates to an empty body (the clause
/// would cover everything — never useful as a candidate).
pub fn armg(clause: &Clause, engine: &CoverageEngine, pos_idx: usize) -> Option<Clause> {
    let mut current = clause.clone();
    while let Some(block) = blocking_atom(&current, engine, pos_idx) {
        current.body.remove(block);
        current.prune_unconnected();
        if current.body.is_empty() {
            return None;
        }
    }
    Some(current)
}

/// Post-processing: greedy backward literal elimination. Drops a body
/// literal when the clause still covers exactly the same positives and no
/// additional negatives — removing only *redundant* literals (the trivially
/// satisfiable ones armg's head-connectivity rule keeps around), so the
/// clause's training behaviour is unchanged but it reads like the paper's
/// example clauses.
///
/// Cost: one coverage evaluation per body literal.
pub fn reduce_clause(clause: &Clause, engine: &CoverageEngine) -> Clause {
    let all_pos: Vec<usize> = (0..engine.pos.len()).collect();
    let base_pos = engine.covered_pos_subset(clause, &all_pos);
    let base_neg = engine.count_neg(clause);
    let mut current = clause.clone();
    let mut i = current.body.len();
    while i > 0 {
        i -= 1;
        if current.body.len() <= 1 {
            break;
        }
        let mut candidate = current.clone();
        candidate.body.remove(i);
        candidate.prune_unconnected();
        if candidate.body.is_empty() {
            continue;
        }
        // Removal can only generalize: keeping the drop is sound whenever it
        // loses no positives (it cannot) and gains no negatives.
        let p = engine.covered_pos_subset(&candidate, &all_pos);
        if p.len() >= base_pos.len() && engine.count_neg(&candidate) <= base_neg {
            i = i.min(candidate.body.len());
            current = candidate;
        }
    }
    current
}

/// Statistics of one `LearnClause` invocation.
#[derive(Debug, Clone, Default)]
pub struct LearnClauseStats {
    /// Beam iterations executed.
    pub iterations: usize,
    /// armg applications.
    pub armg_calls: usize,
    /// Candidates scored.
    pub candidates_scored: usize,
    /// Distinct candidates generated by armg across all iterations.
    pub candidates_generated: usize,
    /// Candidates skipped before full scoring: by the positive-coverage
    /// upper bound, or because the monotone negative cutoff proved their
    /// score strictly below the beam's k-th best.
    pub candidates_pruned: usize,
    /// armg results dropped as α-equivalent duplicates (canonical-form
    /// dedup) of a candidate already kept this iteration.
    pub candidates_deduped: usize,
}

/// The `LearnClause` step of Algorithm 1: builds candidates from the seed's
/// bottom clause by beam search over armg generalizations, scoring each by
/// positives-covered − negatives-covered over `uncovered` ∪ negatives.
///
/// `seed` indexes into `engine.pos`; `uncovered` are the positive indices not
/// yet covered by the definition under construction.
pub fn learn_clause<R: Rng>(
    engine: &CoverageEngine,
    seed: usize,
    uncovered: &[usize],
    cfg: &GenConfig,
    rng: &mut R,
) -> (Clause, LearnClauseStats) {
    let mut stats = LearnClauseStats::default();
    let mut sp = obs::span!("learn.clause_search");
    let bottom = engine.pos[seed].clause.clone();

    let score_of = |c: &Clause, stats: &mut LearnClauseStats| {
        stats.candidates_scored += 1;
        engine.score(c, uncovered).0
    };

    let mut best = bottom.clone();
    let mut best_score = score_of(&bottom, &mut stats);
    let mut beam: Vec<(Clause, i64)> = vec![(bottom, best_score)];

    for _ in 0..cfg.max_iterations {
        stats.iterations += 1;
        // Sample E+_S from the uncovered positives.
        let mut sample: Vec<usize> = uncovered.to_vec();
        sample.shuffle(rng);
        sample.truncate(cfg.sample_size);

        let past_deadline = || cfg.deadline.is_some_and(|d| std::time::Instant::now() >= d);
        let mut raw: Vec<Clause> = Vec::new();
        'gen: for (clause, _) in &beam {
            for &e in &sample {
                if past_deadline() {
                    break 'gen;
                }
                if engine.covers_pos(clause, e) {
                    continue; // already covered: armg would be a no-op
                }
                stats.armg_calls += 1;
                if let Some(generalized) = armg(clause, engine, e) {
                    raw.push(generalized);
                }
            }
        }
        // Distinct armg results often coincide — across beam members, across
        // sample examples, and as α-variants of each other. Canonical forms
        // collapse all of those so each equivalence class is scored once,
        // and the kept clause IS the canonical form, so the coverage memo
        // keys below are exact repeats.
        let raw_len = raw.len();
        let mut seen: relstore::FxHashSet<Clause> = relstore::FxHashSet::default();
        let mut unique: Vec<Clause> = Vec::new();
        for c in raw {
            let canon = engine.canonical(&c);
            if seen.insert(canon.clone()) {
                unique.push(canon);
            }
        }
        stats.candidates_deduped += raw_len - unique.len();
        if unique.is_empty() {
            break;
        }
        stats.candidates_generated += unique.len();

        // Positive halves of all candidates scored as one batched parallel
        // map over (candidate × example) pairs — balanced even when the
        // beam holds one expensive clause and several cheap ones.
        let ps = engine.batch_covered_pos(&unique, uncovered);
        let mut with_p: Vec<(Clause, usize)> = unique.into_iter().zip(ps).collect();
        with_p.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.len().cmp(&b.0.len())));

        // Scoring with sound pruning: score = p − n ≤ p, so once a
        // candidate's positive coverage cannot beat the beam's k-th best
        // full score, negative counting (the expensive half over every
        // negative example) is skipped.
        let mut candidates: Vec<(Clause, i64)> = Vec::new();
        let total = with_p.len();
        for (idx, (c, p)) in with_p.into_iter().enumerate() {
            if past_deadline() && !candidates.is_empty() {
                break;
            }
            let kth_best = if candidates.len() >= cfg.beam_width {
                Some(candidates[cfg.beam_width - 1].1)
            } else {
                None
            };
            if let Some(kth) = kth_best {
                if (p as i64) <= kth {
                    // p is an upper bound on the score: prune the rest.
                    stats.candidates_pruned += total - idx;
                    break;
                }
            }
            stats.candidates_scored += 1;
            // Monotone cutoff: the candidate can only enter the beam if
            // s = p − n ≥ kth, i.e. n ≤ p − kth (p > kth here, so the cast
            // is safe). Exceeding the cutoff proves s < kth strictly — such
            // a candidate could never displace a beam entry, so dropping it
            // leaves the final beam bit-identical to exact scoring.
            let cutoff = kth_best.map(|kth| (p as i64 - kth) as usize);
            let n = engine.count_neg_budget(&c, cutoff);
            if n.exceeds(cutoff) {
                stats.candidates_pruned += 1;
                continue;
            }
            let s = p as i64 - n.value() as i64;
            candidates.push((c, s));
            candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.len().cmp(&b.0.len())));
        }
        if candidates.is_empty() {
            break;
        }
        candidates.truncate(cfg.beam_width);

        let round_best = candidates[0].1;
        if round_best > best_score {
            best_score = round_best;
            best = candidates[0].0.clone();
            beam = candidates;
        } else {
            break; // no improvement: stop (paper: "iterates until the
                   // clauses cannot be improved")
        }
        if past_deadline() {
            break;
        }
    }

    crate::instrument::CANDIDATES_GENERATED.add(stats.candidates_generated as u64);
    crate::instrument::CANDIDATES_PRUNED.add(stats.candidates_pruned as u64);
    crate::instrument::CANDIDATES_DEDUPED.add(stats.candidates_deduped as u64);
    if sp.is_active() {
        sp.note("iterations", stats.iterations as u64);
        sp.note("armg_calls", stats.armg_calls as u64);
        sp.note("candidates_generated", stats.candidates_generated as u64);
        sp.note("candidates_scored", stats.candidates_scored as u64);
        sp.note("candidates_pruned", stats.candidates_pruned as u64);
        sp.note("candidates_deduped", stats.candidates_deduped as u64);
        sp.note("best_len", best.len() as u64);
    }
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::parse::parse_bias;
    use crate::bottom::{BcConfig, SamplingStrategy};
    use crate::example::{Example, TrainingSet};
    use crate::subsume::SubsumeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use relstore::Database;

    /// A small UW-like database where the true rule is co-authorship:
    /// advisedBy(s, p) iff s and p share a publication. Extra noise tuples
    /// (phases, positions) make the bottom clauses over-specific so armg has
    /// real work to do.
    fn build_world() -> (Database, TrainingSet, crate::bias::LanguageBias) {
        let mut db = Database::new();
        let student = db.add_relation("student", &["stud"]);
        let professor = db.add_relation("professor", &["prof"]);
        let in_phase = db.add_relation("inPhase", &["stud", "phase"]);
        let publ = db.add_relation("publication", &["title", "person"]);
        let target = db.add_relation("advisedBy", &["stud", "prof"]);

        let phases = ["pre_quals", "post_quals", "post_generals"];
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for i in 0..6 {
            let s = format!("s{i}");
            let p = format!("f{i}");
            db.insert(student, &[&s]);
            db.insert(professor, &[&p]);
            db.insert(in_phase, &[&s, phases[i % 3]]);
            // Student i co-authors with professor i.
            let t = format!("paper{i}");
            db.insert(publ, &[&t, &s]);
            db.insert(publ, &[&t, &p]);
        }
        for i in 0..6 {
            let s = db.lookup(&format!("s{i}")).unwrap();
            let p = db.lookup(&format!("f{i}")).unwrap();
            let p_other = db.lookup(&format!("f{}", (i + 1) % 6)).unwrap();
            pos.push(Example::new(target, vec![s, p]));
            neg.push(Example::new(target, vec![s, p_other]));
        }
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred student(T1)
pred professor(T3)
pred inPhase(T1, T2)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)
mode student(+)
mode professor(+)
mode inPhase(+, -)
mode inPhase(+, #)
mode publication(-, +)
",
        )
        .unwrap();
        (db, TrainingSet::new(pos, neg), bias)
    }

    fn build_engine(
        db: &Database,
        train: &TrainingSet,
        bias: &crate::bias::LanguageBias,
    ) -> CoverageEngine {
        let cfg = BcConfig {
            depth: 2,
            strategy: SamplingStrategy::Full,
            max_body_literals: 100_000,
            max_tuples: 1000,
        };
        CoverageEngine::build(db, bias, train, &cfg, SubsumeConfig::default(), 11)
    }

    #[test]
    fn armg_generalizes_bc_to_cover_other_positive() {
        let (db, train, bias) = build_world();
        let engine = build_engine(&db, &train, &bias);
        let bc = engine.pos[0].clause.clone();
        // The seed's BC mentions s0's phase constant, so it cannot cover
        // s1 (different phase).
        assert!(!engine.covers_pos(&bc, 1));
        let g = armg(&bc, &engine, 1).expect("generalization must succeed");
        assert!(
            engine.covers_pos(&g, 1),
            "armg result must cover the target"
        );
        assert!(engine.covers_pos(&g, 0), "armg must stay a generalization");
        assert!(g.len() < bc.len(), "armg strictly shrinks the clause");
    }

    #[test]
    fn blocking_atom_is_minimal() {
        let (db, train, bias) = build_world();
        let engine = build_engine(&db, &train, &bias);
        let bc = engine.pos[0].clause.clone();
        if let Some(i) = blocking_atom(&bc, &engine, 1) {
            // Prefix up to (but excluding) i covers; including i does not.
            let before = Clause::new(bc.head.clone(), bc.body[..i].to_vec());
            let with = Clause::new(bc.head.clone(), bc.body[..=i].to_vec());
            assert!(engine.covers_pos(&before, 1));
            assert!(!engine.covers_pos(&with, 1));
        } else {
            panic!("expected a blocking atom");
        }
    }

    #[test]
    fn armg_none_when_covered() {
        let (db, train, bias) = build_world();
        let engine = build_engine(&db, &train, &bias);
        let bc = engine.pos[0].clause.clone();
        assert!(blocking_atom(&bc, &engine, 0).is_none());
        // armg on an already-covered example returns the clause unchanged.
        let same = armg(&bc, &engine, 0).unwrap();
        assert_eq!(same, bc);
    }

    #[test]
    fn learn_clause_finds_coauthorship() {
        let (db, train, bias) = build_world();
        let engine = build_engine(&db, &train, &bias);
        let uncovered: Vec<usize> = (0..train.pos.len()).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let (clause, stats) = learn_clause(&engine, 0, &uncovered, &GenConfig::default(), &mut rng);
        let (_, p, n) = engine.score(&clause, &uncovered);
        assert_eq!(
            p,
            6,
            "clause should cover all positives: {}",
            clause.render(&db)
        );
        assert_eq!(
            n,
            0,
            "clause should cover no negatives: {}",
            clause.render(&db)
        );
        assert!(stats.armg_calls > 0);
    }
}
