//! Direct clause evaluation over the database — the Select-Project-Join
//! alternative to θ-subsumption that the paper's §5 argues is too slow for
//! coverage testing during learning ("queries with hundreds of joins").
//!
//! It still matters for two things:
//!
//! 1. it is the *exact* semantics (Definition 2.4, `I ∧ C ⊨ e`) against
//!    which sampled-ground-BC coverage is an approximation, so tests and the
//!    `coverage` bench use it as an oracle;
//! 2. applying a *learned* definition to new entities at prediction time —
//!    learned clauses are short, so direct evaluation is cheap there.

use crate::clause::{Clause, Definition, Literal, Term, VarId};
use crate::example::Example;
use relstore::{Const, Database, RelId, TupleId};

/// Search budget for one direct evaluation.
#[derive(Debug, Clone, Copy)]
pub struct QueryConfig {
    /// Backtracking nodes before giving up (answering `false`). Learned
    /// clauses have a handful of joins, so the default is generous.
    pub node_limit: usize,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self {
            node_limit: 1_000_000,
        }
    }
}

/// Reusable evaluation buffers. One direct query needs a binding vector and
/// an assigned-literal bitmap; batch callers (the serve predict path checks
/// thousands of tuples per request) reuse one `EvalScratch` across tuples
/// instead of allocating both per tuple.
#[derive(Debug, Default)]
pub struct EvalScratch {
    binding: Vec<Option<Const>>,
    assigned: Vec<bool>,
}

/// Whether `clause` covers `example` relative to the full database:
/// binds the head to the example's constants and searches for body tuples
/// witnessing all joins (`I ∧ C ⊨ e`).
pub fn clause_covers(db: &Database, clause: &Clause, example: &Example, cfg: &QueryConfig) -> bool {
    let mut scratch = EvalScratch::default();
    clause_covers_args(db, clause, example.rel, &example.args, cfg, &mut scratch)
}

/// [`clause_covers`] with the head tuple given as `(rel, args)` and buffers
/// reused from `scratch` — the batch-friendly form.
pub fn clause_covers_args(
    db: &Database,
    clause: &Clause,
    rel: RelId,
    args: &[Const],
    cfg: &QueryConfig,
    scratch: &mut EvalScratch,
) -> bool {
    crate::instrument::COVERAGE_QUERIES.bump();
    if clause.head.rel != rel || clause.head.args.len() != args.len() {
        return false;
    }
    let num_vars = clause.num_vars() as usize;
    scratch.binding.clear();
    scratch.binding.resize(num_vars, None);
    scratch.assigned.clear();
    scratch.assigned.resize(clause.body.len(), false);
    let binding = &mut scratch.binding;
    for (t, &c) in clause.head.args.iter().zip(args.iter()) {
        match *t {
            Term::Var(v) => match binding[v.index()] {
                None => binding[v.index()] = Some(c),
                Some(b) if b == c => {}
                Some(_) => return false,
            },
            Term::Const(k) => {
                if k != c {
                    return false;
                }
            }
        }
    }
    let mut eval = Eval {
        db,
        clause,
        cfg,
        nodes: 0,
    };
    eval.solve(binding, &mut scratch.assigned)
}

/// Whether any clause of `definition` covers `example` (Horn-definition
/// coverage, Definition 2.2).
pub fn definition_covers(
    db: &Database,
    definition: &Definition,
    example: &Example,
    cfg: &QueryConfig,
) -> bool {
    let mut sp = obs::span!("coverage.spj");
    let mut scratch = EvalScratch::default();
    let covered = definition
        .clauses
        .iter()
        .any(|c| clause_covers_args(db, c, example.rel, &example.args, cfg, &mut scratch));
    sp.note("clauses", definition.clauses.len() as u64);
    covered
}

/// Span-free [`definition_covers`] over `(rel, args)` with reused scratch
/// buffers: the per-tuple form for batch callers that wrap the whole batch
/// in one span of their own.
pub fn definition_covers_args(
    db: &Database,
    definition: &Definition,
    rel: RelId,
    args: &[Const],
    cfg: &QueryConfig,
    scratch: &mut EvalScratch,
) -> bool {
    definition
        .clauses
        .iter()
        .any(|c| clause_covers_args(db, c, rel, args, cfg, scratch))
}

struct Eval<'a> {
    db: &'a Database,
    clause: &'a Clause,
    cfg: &'a QueryConfig,
    nodes: usize,
}

impl Eval<'_> {
    /// Count of tuples matching the bound/constant positions of `lit`
    /// (an optimistic selectivity estimate used for literal ordering),
    /// plus the candidate list itself.
    fn candidates(&self, lit: &Literal, binding: &[Option<Const>]) -> Vec<TupleId> {
        let rel = self.db.relation(lit.rel);
        // Use the most selective indexed bound position, then filter.
        let mut best: Option<(usize, Const, usize)> = None; // (pos, val, freq)
        for (pos, t) in lit.args.iter().enumerate() {
            let val = match *t {
                Term::Const(c) => Some(c),
                Term::Var(v) => binding[v.index()],
            };
            if let Some(val) = val {
                let freq = rel.index(pos).map_or(usize::MAX, |idx| idx.freq(val));
                if best.is_none_or(|(_, _, f)| freq < f) {
                    best = Some((pos, val, freq));
                }
            }
        }
        let base: Vec<TupleId> = match best {
            Some((pos, val, _)) => rel.select_eq(pos, val),
            None => rel.iter().map(|(id, _)| id).collect(),
        };
        base.into_iter()
            .filter(|&id| {
                let tuple = rel.tuple(id);
                lit.args.iter().zip(tuple.iter()).all(|(t, &tv)| match *t {
                    Term::Const(c) => c == tv,
                    Term::Var(v) => binding[v.index()].is_none_or(|b| b == tv),
                })
            })
            .collect()
    }

    fn solve(&mut self, binding: &mut [Option<Const>], assigned: &mut [bool]) -> bool {
        self.nodes += 1;
        if self.nodes > self.cfg.node_limit {
            return false;
        }
        // Pick the unassigned literal with the fewest candidates (computing
        // lists lazily and keeping the smallest).
        let mut best: Option<(usize, Vec<TupleId>)> = None;
        for (li, done) in assigned.iter().enumerate() {
            if *done {
                continue;
            }
            let cands = self.candidates(&self.clause.body[li], binding);
            if cands.is_empty() {
                return false;
            }
            let take = best.as_ref().is_none_or(|(_, b)| cands.len() < b.len());
            if take {
                let single = cands.len() == 1;
                best = Some((li, cands));
                if single {
                    break;
                }
            }
        }
        let Some((li, cands)) = best else {
            return true; // every literal witnessed
        };
        assigned[li] = true;
        let lit = &self.clause.body[li];
        let rel = self.db.relation(lit.rel);
        for id in cands {
            let tuple = rel.tuple(id);
            let mut trail: Vec<VarId> = Vec::new();
            let mut ok = true;
            for (t, &tv) in lit.args.iter().zip(tuple.iter()) {
                if let Term::Var(v) = *t {
                    match binding[v.index()] {
                        None => {
                            binding[v.index()] = Some(tv);
                            trail.push(v);
                        }
                        Some(b) if b == tv => {}
                        Some(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok && self.solve(binding, assigned) {
                return true;
            }
            for v in trail {
                binding[v.index()] = None;
            }
            if self.nodes > self.cfg.node_limit {
                break;
            }
        }
        assigned[li] = false;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::fixtures::uw_fragment;
    use relstore::RelId;

    fn v(n: u32) -> Term {
        Term::Var(VarId(n))
    }

    fn setup() -> (Database, RelId) {
        let mut db = uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.build_indexes();
        (db, target)
    }

    #[test]
    fn coauthorship_query_separates_examples() {
        let (db, target) = setup();
        let publ = db.rel_id("publication").unwrap();
        let clause = Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        );
        let juan = db.lookup("juan").unwrap();
        let sarita = db.lookup("sarita").unwrap();
        let mary = db.lookup("mary").unwrap();
        let cfg = QueryConfig::default();
        assert!(clause_covers(
            &db,
            &clause,
            &Example::new(target, vec![juan, sarita]),
            &cfg
        ));
        assert!(!clause_covers(
            &db,
            &clause,
            &Example::new(target, vec![juan, mary]),
            &cfg
        ));
    }

    #[test]
    fn constants_in_body_are_respected() {
        let (db, target) = setup();
        let in_phase = db.rel_id("inPhase").unwrap();
        let post_quals = db.lookup("post_quals").unwrap();
        let juan = db.lookup("juan").unwrap();
        let sarita = db.lookup("sarita").unwrap();
        let good = Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![Literal::new(in_phase, vec![v(0), Term::Const(post_quals)])],
        );
        let cfg = QueryConfig::default();
        assert!(clause_covers(
            &db,
            &good,
            &Example::new(target, vec![juan, sarita]),
            &cfg
        ));
        // sarita is not in any phase (professors aren't students).
        assert!(!clause_covers(
            &db,
            &good,
            &Example::new(target, vec![sarita, juan]),
            &cfg
        ));
    }

    #[test]
    fn empty_body_covers_anything_with_matching_head() {
        let (db, target) = setup();
        let juan = db.lookup("juan").unwrap();
        let clause = Clause::new(Literal::new(target, vec![v(0), v(1)]), vec![]);
        assert!(clause_covers(
            &db,
            &clause,
            &Example::new(target, vec![juan, juan]),
            &QueryConfig::default()
        ));
    }

    #[test]
    fn repeated_head_variable_constrains() {
        let (db, target) = setup();
        let juan = db.lookup("juan").unwrap();
        let sarita = db.lookup("sarita").unwrap();
        let clause = Clause::new(Literal::new(target, vec![v(0), v(0)]), vec![]);
        let cfg = QueryConfig::default();
        assert!(clause_covers(
            &db,
            &clause,
            &Example::new(target, vec![juan, juan]),
            &cfg
        ));
        assert!(!clause_covers(
            &db,
            &clause,
            &Example::new(target, vec![juan, sarita]),
            &cfg
        ));
    }

    #[test]
    fn definition_covers_is_disjunction() {
        let (db, target) = setup();
        let student = db.rel_id("student").unwrap();
        let professor = db.rel_id("professor").unwrap();
        let juan = db.lookup("juan").unwrap();
        let sarita = db.lookup("sarita").unwrap();
        let def = Definition {
            clauses: vec![
                // head covers student-firsts
                Clause::new(
                    Literal::new(target, vec![v(0), v(1)]),
                    vec![Literal::new(student, vec![v(0)])],
                ),
                // or professor-firsts
                Clause::new(
                    Literal::new(target, vec![v(0), v(1)]),
                    vec![Literal::new(professor, vec![v(0)])],
                ),
            ],
        };
        let cfg = QueryConfig::default();
        assert!(definition_covers(
            &db,
            &def,
            &Example::new(target, vec![juan, juan]),
            &cfg
        ));
        assert!(definition_covers(
            &db,
            &def,
            &Example::new(target, vec![sarita, juan]),
            &cfg
        ));
        let p1 = db.lookup("p1").unwrap();
        assert!(!definition_covers(
            &db,
            &def,
            &Example::new(target, vec![p1, juan]),
            &cfg
        ));
    }

    /// Direct evaluation agrees with subsumption against a *full* (unsampled)
    /// ground BC whenever the clause only uses relations reachable within the
    /// BC depth — the §5 equivalence.
    #[test]
    fn agrees_with_full_ground_bc_subsumption() {
        use crate::bias::parse::parse_bias;
        use crate::bottom::{build_bottom_clause, BcConfig, SamplingStrategy};
        use crate::subsume::{theta_subsumes, SubsumeConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let (db, target) = setup();
        let bias = parse_bias(
            &db,
            target,
            "
pred student(T1)
pred professor(T3)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)
mode student(+)
mode professor(+)
mode publication(-, +)
",
        )
        .unwrap();
        let publ = db.rel_id("publication").unwrap();
        let clause = Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        );
        let juan = db.lookup("juan").unwrap();
        let sarita = db.lookup("sarita").unwrap();
        let mary = db.lookup("mary").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for (s, p) in [(juan, sarita), (juan, mary)] {
            let e = Example::new(target, vec![s, p]);
            let bc = build_bottom_clause(
                &db,
                &bias,
                &e,
                &BcConfig {
                    depth: 2,
                    strategy: SamplingStrategy::Full,
                    max_tuples: 10_000,
                    max_body_literals: 100_000,
                },
                &mut rng,
            );
            let by_subsumption = theta_subsumes(&clause, &bc.ground, &SubsumeConfig::default());
            let by_query = clause_covers(&db, &clause, &e, &QueryConfig::default());
            assert_eq!(by_subsumption, by_query, "disagree on {}", e.render(&db));
        }
    }
}
