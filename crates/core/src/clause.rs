//! Horn clauses: terms, literals, clauses, and Horn definitions
//! (paper §2.1, Definitions 2.1–2.2).

use relstore::{Const, Database, FxHashMap, FxHashSet, RelId};

/// A clause-local variable. Ids are dense within one clause; head variables
/// come first by convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Short display name: `x, y, z, v3, v4, …` (first three match the
    /// paper's examples).
    pub fn label(self) -> String {
        match self.0 {
            0 => "x".into(),
            1 => "y".into(),
            2 => "z".into(),
            n => format!("v{n}"),
        }
    }
}

/// A term: a variable or an interned constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// An (existentially quantified) variable.
    Var(VarId),
    /// A constant value.
    Const(Const),
}

impl Term {
    /// The variable id, if this term is a variable.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

/// A positive literal `R(t1, …, tn)`. Learned definitions are non-recursive
/// Datalog without negation (paper §2.1), so negated literals never occur.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    /// Relation symbol.
    pub rel: RelId,
    /// Argument terms, one per attribute.
    pub args: Box<[Term]>,
}

impl Literal {
    /// Creates a literal.
    pub fn new(rel: RelId, args: impl Into<Box<[Term]>>) -> Self {
        Self {
            rel,
            args: args.into(),
        }
    }

    /// Iterates over the variables appearing in this literal.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// Renders with constant names from `db`.
    pub fn render(&self, db: &Database) -> String {
        let name = &db.catalog().schema(self.rel).name;
        let args: Vec<String> = self
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => v.label(),
                Term::Const(c) => db.const_name(*c).to_string(),
            })
            .collect();
        format!("{}({})", name, args.join(", "))
    }
}

/// A Horn clause: one head literal and a conjunctive body
/// (paper Definition 2.1). `Hash` hashes the literal structure verbatim, so
/// only syntactically identical clauses collide — the coverage memo keys on
/// canonical forms ([`crate::canon`]) to get α-equivalence classes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Clause {
    /// The single positive (head) literal.
    pub head: Literal,
    /// Body literals, in construction order.
    pub body: Vec<Literal>,
}

impl Clause {
    /// Creates a clause from a head and body.
    pub fn new(head: Literal, body: Vec<Literal>) -> Self {
        Self { head, body }
    }

    /// Number of body literals.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// The largest variable id used, plus one (for allocating fresh vars).
    pub fn num_vars(&self) -> u32 {
        let mut max = 0u32;
        for v in self
            .head
            .vars()
            .chain(self.body.iter().flat_map(|l| l.vars()))
        {
            max = max.max(v.0 + 1);
        }
        max
    }

    /// Indices of body literals that are *head-connected*: connected to a
    /// head variable through a chain of shared variables (paper §4.2.1).
    ///
    /// Literals with no variables at all (fully ground) are treated as
    /// connected — they constrain the clause globally.
    pub fn head_connected_indices(&self) -> Vec<usize> {
        let head_vars: FxHashSet<VarId> = self.head.vars().collect();
        let mut connected_vars = head_vars;
        let mut included = vec![false; self.body.len()];
        // Fixpoint: a literal is connected if it shares a var with the
        // connected set; its vars then join the set.
        let mut changed = true;
        while changed {
            changed = false;
            for (i, lit) in self.body.iter().enumerate() {
                if included[i] {
                    continue;
                }
                let lit_vars: Vec<VarId> = lit.vars().collect();
                if lit_vars.is_empty() || lit_vars.iter().any(|v| connected_vars.contains(v)) {
                    included[i] = true;
                    changed = true;
                    for v in lit_vars {
                        connected_vars.insert(v);
                    }
                }
            }
        }
        (0..self.body.len()).filter(|&i| included[i]).collect()
    }

    /// Partitions body literal indices into connected components, where two
    /// literals are linked when they share a variable *not* bound by the
    /// head. Head variables are bound before body evaluation starts, so
    /// literals touching only through a head variable are independent
    /// semi-join subproblems: each component can be witnessed (or refuted)
    /// on its own, with no backtracking across components. Components are
    /// ordered by their smallest literal index; ground literals (and ones
    /// using only head variables) form singleton components.
    pub fn connected_body_components(&self) -> Vec<Vec<usize>> {
        let head_vars: FxHashSet<VarId> = self.head.vars().collect();
        let n = self.body.len();
        // Union-find over body indices, linked via shared non-head vars.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let mut owner: FxHashMap<VarId, usize> = FxHashMap::default();
        for (i, lit) in self.body.iter().enumerate() {
            for v in lit.vars().filter(|v| !head_vars.contains(v)) {
                match owner.get(&v) {
                    Some(&j) => {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        parent[ri.max(rj)] = ri.min(rj);
                    }
                    None => {
                        owner.insert(v, i);
                    }
                }
            }
        }
        let mut components: Vec<Vec<usize>> = Vec::new();
        let mut root_to_comp: FxHashMap<usize, usize> = FxHashMap::default();
        for i in 0..n {
            let r = find(&mut parent, i);
            let c = *root_to_comp.entry(r).or_insert_with(|| {
                components.push(Vec::new());
                components.len() - 1
            });
            components[c].push(i);
        }
        components
    }

    /// Removes body literals that are not head-connected, preserving order.
    /// Returns the number of literals dropped.
    pub fn prune_unconnected(&mut self) -> usize {
        let keep = self.head_connected_indices();
        if keep.len() == self.body.len() {
            return 0;
        }
        let dropped = self.body.len() - keep.len();
        let mut new_body = Vec::with_capacity(keep.len());
        for i in keep {
            new_body.push(self.body[i].clone());
        }
        self.body = new_body;
        dropped
    }

    /// Renders the clause in the paper's notation.
    pub fn render(&self, db: &Database) -> String {
        if self.body.is_empty() {
            return format!("{} ← true", self.head.render(db));
        }
        let body: Vec<String> = self.body.iter().map(|l| l.render(db)).collect();
        format!("{} ← {}", self.head.render(db), body.join(", "))
    }

    /// Renumbers variables densely (head vars first, then body order) so two
    /// syntactically identical clauses compare equal after independent
    /// construction histories.
    pub fn canonicalize_vars(&mut self) {
        let mut map: FxHashMap<VarId, VarId> = FxHashMap::default();
        let mut next = 0u32;
        let mut renumber = |t: &mut Term, map: &mut FxHashMap<VarId, VarId>| {
            if let Term::Var(v) = t {
                let nv = *map.entry(*v).or_insert_with(|| {
                    let nv = VarId(next);
                    next += 1;
                    nv
                });
                *t = Term::Var(nv);
            }
        };
        for t in self.head.args.iter_mut() {
            renumber(t, &mut map);
        }
        for lit in &mut self.body {
            for t in lit.args.iter_mut() {
                renumber(t, &mut map);
            }
        }
    }
}

/// A Horn definition: a set of clauses sharing a head relation
/// (paper Definition 2.2). Covers an example when any clause does.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Definition {
    /// The learned clauses, in the order the covering loop accepted them.
    pub clauses: Vec<Clause>,
}

impl Definition {
    /// Creates an empty definition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the definition has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Total body literals across clauses.
    pub fn total_literals(&self) -> usize {
        self.clauses.iter().map(Clause::len).sum()
    }

    /// Renders all clauses, one per line.
    pub fn render(&self, db: &Database) -> String {
        self.clauses
            .iter()
            .map(|c| c.render(db))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> Term {
        Term::Var(VarId(n))
    }

    #[test]
    fn head_connected_basic() {
        // head(x,y) ← r(x,z), s(z), t(w)   — t(w) is disconnected.
        let r = RelId(0);
        let s = RelId(1);
        let t = RelId(2);
        let h = RelId(3);
        let clause = Clause::new(
            Literal::new(h, vec![v(0), v(1)]),
            vec![
                Literal::new(r, vec![v(0), v(2)]),
                Literal::new(s, vec![v(2)]),
                Literal::new(t, vec![v(3)]),
            ],
        );
        assert_eq!(clause.head_connected_indices(), vec![0, 1]);
    }

    #[test]
    fn connection_through_chains() {
        // head(x) ← a(x,z), b(z,w), c(w)   — all connected transitively.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(1), vec![v(2), v(3)]),
                Literal::new(RelId(2), vec![v(3)]),
            ],
        );
        assert_eq!(clause.head_connected_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn order_of_discovery_does_not_matter() {
        // head(x) ← c(w), b(z,w), a(x,z) — connectivity found right-to-left.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0)]),
            vec![
                Literal::new(RelId(2), vec![v(3)]),
                Literal::new(RelId(1), vec![v(2), v(3)]),
                Literal::new(RelId(0), vec![v(0), v(2)]),
            ],
        );
        assert_eq!(clause.head_connected_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn prune_unconnected_removes_and_counts() {
        let mut clause = Clause::new(
            Literal::new(RelId(9), vec![v(0)]),
            vec![
                Literal::new(RelId(0), vec![v(0)]),
                Literal::new(RelId(1), vec![v(5)]),
            ],
        );
        assert_eq!(clause.prune_unconnected(), 1);
        assert_eq!(clause.len(), 1);
        assert_eq!(clause.body[0].rel, RelId(0));
    }

    #[test]
    fn ground_literals_count_as_connected() {
        let mut clause = Clause::new(
            Literal::new(RelId(9), vec![v(0)]),
            vec![Literal::new(RelId(0), vec![Term::Const(Const(7))])],
        );
        assert_eq!(clause.prune_unconnected(), 0);
    }

    #[test]
    fn components_split_on_non_head_vars_only() {
        // head(x,y) ← r(x,z), s(z), r(y,w), t(w), u(x)
        // {r(x,z), s(z)} share z; {r(y,w), t(w)} share w; u(x) touches only
        // a head var, so it is its own component.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(1), vec![v(2)]),
                Literal::new(RelId(0), vec![v(1), v(3)]),
                Literal::new(RelId(2), vec![v(3)]),
                Literal::new(RelId(3), vec![v(0)]),
            ],
        );
        assert_eq!(
            clause.connected_body_components(),
            vec![vec![0, 1], vec![2, 3], vec![4]]
        );
        // Ground literal: singleton component.
        let ground = Clause::new(
            Literal::new(RelId(9), vec![v(0)]),
            vec![Literal::new(RelId(0), vec![Term::Const(Const(7))])],
        );
        assert_eq!(ground.connected_body_components(), vec![vec![0]]);
        // Empty body: no components.
        let empty = Clause::new(Literal::new(RelId(9), vec![v(0)]), vec![]);
        assert!(empty.connected_body_components().is_empty());
    }

    #[test]
    fn canonicalize_maps_identical_structures_together() {
        let mut a = Clause::new(
            Literal::new(RelId(9), vec![v(3)]),
            vec![Literal::new(RelId(0), vec![v(3), v(7)])],
        );
        let mut b = Clause::new(
            Literal::new(RelId(9), vec![v(1)]),
            vec![Literal::new(RelId(0), vec![v(1), v(4)])],
        );
        a.canonicalize_vars();
        b.canonicalize_vars();
        assert_eq!(a, b);
    }

    #[test]
    fn render_uses_paper_notation() {
        let mut db = Database::new();
        let stud = db.add_relation("student", &["stud"]);
        let adv = db.add_relation("advisedBy", &["stud", "prof"]);
        let clause = Clause::new(
            Literal::new(adv, vec![v(0), v(1)]),
            vec![Literal::new(stud, vec![v(0)])],
        );
        assert_eq!(clause.render(&db), "advisedBy(x, y) ← student(x)");
    }

    #[test]
    fn num_vars_counts_max() {
        let clause = Clause::new(Literal::new(RelId(0), vec![v(0), v(4)]), vec![]);
        assert_eq!(clause.num_vars(), 5);
    }
}
