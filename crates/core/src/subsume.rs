//! θ-subsumption for coverage testing (paper §5).
//!
//! Clause `C` θ-subsumes ground clause `G` iff some substitution `θ` maps
//! every body literal of `C` onto a literal of `G` (with the head binding
//! fixed by the example). Subsumption is NP-hard; like the paper (which
//! follows Kuzelka–Zelezny's restarted strategy), we run randomized
//! backtracking with a node cutoff and a bounded number of restarts, so the
//! test is *approximate*: it may report "not covered" for a covered example
//! when the search budget runs out, never the reverse.
//!
//! ```
//! use autobias::bottom::{GroundClause, GroundLiteral};
//! use autobias::clause::{Clause, Literal, Term, VarId};
//! use autobias::example::Example;
//! use autobias::subsume::{theta_subsumes, SubsumeConfig};
//! use rand::SeedableRng;
//! use relstore::{Const, RelId};
//!
//! // ground BC: head t(1, 2); body r(1, 10), s(10).
//! let ground = GroundClause::new(
//!     Example::new(RelId(9), vec![Const(1), Const(2)]),
//!     vec![
//!         GroundLiteral { rel: RelId(0), vals: vec![Const(1), Const(10)].into() },
//!         GroundLiteral { rel: RelId(1), vals: vec![Const(10)].into() },
//!     ],
//! );
//! // clause: t(x, y) ← r(x, z), s(z)
//! let v = |n| Term::Var(VarId(n));
//! let clause = Clause::new(
//!     Literal::new(RelId(9), vec![v(0), v(1)]),
//!     vec![
//!         Literal::new(RelId(0), vec![v(0), v(2)]),
//!         Literal::new(RelId(1), vec![v(2)]),
//!     ],
//! );
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! assert!(theta_subsumes(&clause, &ground, &SubsumeConfig::default(), &mut rng));
//! ```

use crate::bottom::GroundClause;
use crate::clause::{Clause, Literal, Term, VarId};
use rand::seq::SliceRandom;
use rand::Rng;
use relstore::Const;

/// Search budget for one subsumption test.
#[derive(Debug, Clone, Copy)]
pub struct SubsumeConfig {
    /// Backtracking nodes explored before a restart.
    pub node_limit: usize,
    /// Randomized restarts before giving up (answering `false`).
    pub max_restarts: usize,
}

impl Default for SubsumeConfig {
    fn default() -> Self {
        Self {
            node_limit: 20_000,
            max_restarts: 3,
        }
    }
}

impl SubsumeConfig {
    /// A budget that never cuts off: the search runs to completion, so the
    /// answer is the *exact* θ-subsumption relation (`Outcome::Cutoff` can
    /// never occur). Exponential in the worst case — meant for test oracles
    /// on small instances (see `tests/differential_coverage.rs`), not for
    /// learning.
    pub fn unbounded() -> Self {
        Self {
            node_limit: usize::MAX,
            max_restarts: 0,
        }
    }
}

/// Whether `clause` θ-subsumes `ground` — i.e. whether the clause covers the
/// ground BC's example (Definition 2.4 via the §5 reduction).
pub fn theta_subsumes<R: Rng>(
    clause: &Clause,
    ground: &GroundClause,
    cfg: &SubsumeConfig,
    rng: &mut R,
) -> bool {
    crate::instrument::SUBSUMPTION_TESTS.bump();
    // 1. Head binding: relation and arity must match; head vars bind to the
    //    example's constants, head constants must equal them.
    if clause.head.rel != ground.example.rel || clause.head.args.len() != ground.example.args.len()
    {
        return false;
    }
    let num_vars = clause.num_vars() as usize;
    let mut binding: Vec<Option<Const>> = vec![None; num_vars];
    for (term, &c) in clause.head.args.iter().zip(ground.example.args.iter()) {
        match *term {
            Term::Var(v) => match binding[v.index()] {
                None => binding[v.index()] = Some(c),
                Some(b) if b == c => {}
                Some(_) => return false,
            },
            Term::Const(k) => {
                if k != c {
                    return false;
                }
            }
        }
    }

    if clause.body.is_empty() {
        return true;
    }

    // 2. Static candidate lists per body literal: ground literals of the
    //    same relation whose constant positions (and already-bound head
    //    variables) match. Computed once; the search only re-filters by
    //    later variable bindings. An empty static list anywhere refutes the
    //    clause immediately — the common case for `#`-literals whose
    //    constant does not occur in this example's neighbourhood.
    let mut static_cands: Vec<Vec<u32>> = Vec::with_capacity(clause.body.len());
    for lit in &clause.body {
        let cands: Vec<u32> = ground
            .literals_of(lit.rel)
            .iter()
            .copied()
            .filter(|&gi| {
                let g = &ground.body[gi as usize];
                lit.args.len() == g.vals.len()
                    && lit.args.iter().zip(g.vals.iter()).all(|(t, &gv)| match *t {
                        Term::Const(c) => c == gv,
                        Term::Var(v) => binding[v.index()].is_none_or(|b| b == gv),
                    })
            })
            .collect();
        if cands.is_empty() {
            return false;
        }
        static_cands.push(cands);
    }

    // Var → body literals containing it, for forward-checking updates.
    let mut lits_by_var: Vec<Vec<u32>> = vec![Vec::new(); num_vars];
    for (li, lit) in clause.body.iter().enumerate() {
        for v in lit.vars() {
            let entry = &mut lits_by_var[v.index()];
            if entry.last() != Some(&(li as u32)) {
                entry.push(li as u32);
            }
        }
    }

    // 3. Decompose the body into connected components over *unbound*
    //    variables (head-bound vars don't link literals — their values are
    //    fixed). Components share no search state, so each is solved
    //    independently; bottom clauses carry many trivially satisfiable
    //    side-literals, and decomposition keeps them from multiplying the
    //    search space of the part that matters.
    let mut comp_of: Vec<u32> = (0..clause.body.len() as u32).collect();
    fn find_root(comp_of: &mut [u32], mut x: u32) -> u32 {
        while comp_of[x as usize] != x {
            let parent = comp_of[x as usize];
            comp_of[x as usize] = comp_of[parent as usize];
            x = parent;
        }
        x
    }
    for (v, lits) in lits_by_var.iter().enumerate() {
        if binding[v].is_some() || lits.len() < 2 {
            continue;
        }
        let first = find_root(&mut comp_of, lits[0]);
        for &l in &lits[1..] {
            let r = find_root(&mut comp_of, l);
            comp_of[r as usize] = first;
        }
    }
    let mut components: relstore::FxHashMap<u32, Vec<usize>> = relstore::FxHashMap::default();
    for li in 0..clause.body.len() {
        components
            .entry(find_root(&mut comp_of, li as u32))
            .or_default()
            .push(li);
    }
    let mut components: Vec<Vec<usize>> = components.into_values().collect();
    // Small components first: cheap refutations come earliest.
    components.sort_by_key(Vec::len);

    let mut search = Search {
        clause,
        ground,
        cfg,
        static_cands,
        lits_by_var,
        active: Vec::new(),
        nodes: 0,
    };
    'component: for comp in components {
        search.active = comp.clone();
        for _attempt in 0..=cfg.max_restarts {
            search.nodes = 0;
            let mut b = binding.clone();
            // Literals outside the component are treated as already assigned.
            let mut assigned = vec![true; clause.body.len()];
            for &li in &comp {
                assigned[li] = false;
            }
            // counts[li] = current number of consistent candidates; the
            // static lists already reflect the head binding.
            let mut counts: Vec<usize> = search.static_cands.iter().map(Vec::len).collect();
            match search.solve(&mut b, &mut assigned, &mut counts, rng) {
                Outcome::Found => continue 'component,
                Outcome::Exhausted => return false, // complete: truly no θ
                Outcome::Cutoff => continue,        // retry, new random order
            }
        }
        return false; // budget exhausted on this component
    }
    true
}

enum Outcome {
    Found,
    Exhausted,
    Cutoff,
}

struct Search<'a> {
    clause: &'a Clause,
    ground: &'a GroundClause,
    cfg: &'a SubsumeConfig,
    /// Per-literal candidates matching relation, constants, and the head
    /// binding — the search re-filters these by later variable bindings.
    static_cands: Vec<Vec<u32>>,
    /// Var index → body literals containing it (forward-checking targets).
    lits_by_var: Vec<Vec<u32>>,
    /// Literal indices of the component currently being solved; the MRV
    /// scan only looks at these.
    active: Vec<usize>,
    nodes: usize,
}

impl Search<'_> {
    /// Candidates of body literal `li` consistent with `binding`.
    fn candidates(&self, li: usize, binding: &[Option<Const>]) -> Vec<u32> {
        let lit = &self.clause.body[li];
        self.static_cands[li]
            .iter()
            .copied()
            .filter(|&gi| self.matches(lit, gi, binding))
            .collect()
    }

    fn count_candidates(&self, li: usize, binding: &[Option<Const>]) -> usize {
        let lit = &self.clause.body[li];
        self.static_cands[li]
            .iter()
            .filter(|&&gi| self.matches(lit, gi, binding))
            .count()
    }

    fn matches(&self, lit: &Literal, gi: u32, binding: &[Option<Const>]) -> bool {
        let g = &self.ground.body[gi as usize];
        debug_assert_eq!(lit.args.len(), g.vals.len());
        lit.args.iter().zip(g.vals.iter()).all(|(t, &gv)| match *t {
            Term::Const(c) => c == gv,
            Term::Var(v) => binding[v.index()].is_none_or(|b| b == gv),
        })
    }

    fn solve<R: Rng>(
        &mut self,
        binding: &mut [Option<Const>],
        assigned: &mut [bool],
        counts: &mut [usize],
        rng: &mut R,
    ) -> Outcome {
        self.nodes += 1;
        if self.nodes > self.cfg.node_limit {
            return Outcome::Cutoff;
        }
        // MRV over maintained counts: integer scan of the active component.
        let mut best: Option<(usize, usize)> = None;
        for &li in &self.active {
            if assigned[li] {
                continue;
            }
            let c = counts[li];
            if best.is_none_or(|(_, b)| c < b) {
                best = Some((li, c));
                if c <= 1 {
                    break;
                }
            }
        }
        let Some((li, _)) = best else {
            return Outcome::Found; // all literals assigned
        };
        let mut cands = self.candidates(li, binding);
        if cands.is_empty() {
            return Outcome::Exhausted;
        }
        cands.shuffle(rng);

        assigned[li] = true;
        let mut saw_cutoff = false;
        'cand: for gi in cands {
            // Extend the binding; remember which vars we set for undo.
            let mut trail: Vec<VarId> = Vec::new();
            {
                let lit = &self.clause.body[li];
                let g = &self.ground.body[gi as usize];
                for (t, &gv) in lit.args.iter().zip(g.vals.iter()) {
                    if let Term::Var(v) = *t {
                        match binding[v.index()] {
                            None => {
                                binding[v.index()] = Some(gv);
                                trail.push(v);
                            }
                            Some(b) if b == gv => {}
                            Some(_) => {
                                for v in trail {
                                    binding[v.index()] = None;
                                }
                                continue 'cand;
                            }
                        }
                    }
                }
            }
            // Forward checking: recompute counts only for unassigned
            // literals touching a newly bound variable.
            let mut count_trail: Vec<(usize, usize)> = Vec::new();
            let mut dead_end = false;
            'fc: for &v in &trail {
                for &ljr in &self.lits_by_var[v.index()] {
                    let lj = ljr as usize;
                    if assigned[lj] || count_trail.iter().any(|&(k, _)| k == lj) {
                        continue;
                    }
                    let new_count = self.count_candidates(lj, binding);
                    count_trail.push((lj, counts[lj]));
                    counts[lj] = new_count;
                    if new_count == 0 {
                        dead_end = true;
                        break 'fc;
                    }
                }
            }
            if !dead_end {
                match self.solve(binding, assigned, counts, rng) {
                    Outcome::Found => return Outcome::Found,
                    Outcome::Cutoff => saw_cutoff = true,
                    Outcome::Exhausted => {}
                }
            }
            for (lj, old) in count_trail {
                counts[lj] = old;
            }
            for v in trail {
                binding[v.index()] = None;
            }
            if self.nodes > self.cfg.node_limit {
                assigned[li] = false;
                return Outcome::Cutoff;
            }
        }
        assigned[li] = false;
        if saw_cutoff {
            Outcome::Cutoff
        } else {
            Outcome::Exhausted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom::GroundLiteral;
    use crate::example::Example;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use relstore::RelId;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn v(n: u32) -> Term {
        Term::Var(VarId(n))
    }

    fn c(n: u32) -> Const {
        Const(n)
    }

    fn glit(rel: u32, vals: &[u32]) -> GroundLiteral {
        GroundLiteral {
            rel: RelId(rel),
            vals: vals.iter().map(|&x| Const(x)).collect(),
        }
    }

    /// ground: head t(1,2); body r(1,10), r(10,2), s(10)
    fn chain_ground() -> GroundClause {
        GroundClause::new(
            Example::new(RelId(9), vec![c(1), c(2)]),
            vec![glit(0, &[1, 10]), glit(0, &[10, 2]), glit(1, &[10])],
        )
    }

    #[test]
    fn subsumes_chain() {
        // t(x,y) ← r(x,z), r(z,y), s(z)  covers the chain.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(0), vec![v(2), v(1)]),
                Literal::new(RelId(1), vec![v(2)]),
            ],
        );
        assert!(theta_subsumes(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn rejects_wrong_chain() {
        // t(x,y) ← r(y,z): requires r starting at 2 — absent.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(1), v(2)])],
        );
        assert!(!theta_subsumes(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn head_constant_must_match() {
        let clause_ok = Clause::new(
            Literal::new(RelId(9), vec![Term::Const(c(1)), v(0)]),
            vec![],
        );
        let clause_bad = Clause::new(
            Literal::new(RelId(9), vec![Term::Const(c(7)), v(0)]),
            vec![],
        );
        assert!(theta_subsumes(
            &clause_ok,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
        assert!(!theta_subsumes(
            &clause_bad,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn repeated_head_var_requires_equal_constants() {
        // t(x,x) can't cover example t(1,2).
        let clause = Clause::new(Literal::new(RelId(9), vec![v(0), v(0)]), vec![]);
        assert!(!theta_subsumes(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
        // But covers t(1,1).
        let ground = GroundClause::new(Example::new(RelId(9), vec![c(1), c(1)]), vec![]);
        assert!(theta_subsumes(
            &clause,
            &ground,
            &SubsumeConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn body_constants_must_match_exactly() {
        // t(x,y) ← r(x, 10) covers; r(x, 11) does not.
        let ok = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(0), Term::Const(c(10))])],
        );
        let bad = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(0), Term::Const(c(11))])],
        );
        assert!(theta_subsumes(
            &ok,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
        assert!(!theta_subsumes(
            &bad,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn non_injective_mappings_are_allowed() {
        // θ-subsumption permits two clause vars mapping to one constant:
        // t(x,y) ← r(x,z), r(w,y) with z = w = 10.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(0), vec![v(3), v(1)]),
            ],
        );
        assert!(theta_subsumes(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn two_clause_literals_may_map_to_one_ground_literal() {
        // t(x,y) ← r(x,z), r(x,w): both can map onto r(1,10).
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(0), vec![v(0), v(3)]),
            ],
        );
        assert!(theta_subsumes(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn wrong_relation_or_arity_in_head_fails_fast() {
        let clause = Clause::new(Literal::new(RelId(8), vec![v(0), v(1)]), vec![]);
        assert!(!theta_subsumes(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
        let clause = Clause::new(Literal::new(RelId(9), vec![v(0)]), vec![]);
        assert!(!theta_subsumes(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn empty_body_always_covers_matching_head() {
        let clause = Clause::new(Literal::new(RelId(9), vec![v(0), v(1)]), vec![]);
        assert!(theta_subsumes(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
    }

    /// A complete (non-cutoff) search answers exactly like brute force on a
    /// moderately tricky instance with multiple candidates per literal.
    #[test]
    fn finds_solution_requiring_backtracking() {
        // ground body: r(1,a) for a in {3,4,5}, s(4).
        // clause: t(x,y) ← r(x,z), s(z). Only z = 4 works; MRV picks s first,
        // but with shuffled order the search may try r's candidates first.
        let ground = GroundClause::new(
            Example::new(RelId(9), vec![c(1), c(2)]),
            vec![
                glit(0, &[1, 3]),
                glit(0, &[1, 4]),
                glit(0, &[1, 5]),
                glit(1, &[4]),
            ],
        );
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(1), vec![v(2)]),
            ],
        );
        for seed in 0..20 {
            let mut r = StdRng::seed_from_u64(seed);
            assert!(theta_subsumes(
                &clause,
                &ground,
                &SubsumeConfig::default(),
                &mut r
            ));
        }
    }

    #[test]
    fn absent_constant_refutes_immediately() {
        // A `#`-literal whose constant never occurs in the ground BC makes
        // the static candidate list empty — must answer false without search.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(0), Term::Const(c(777))])],
        );
        let cfg = SubsumeConfig {
            node_limit: 0, // no search budget at all
            max_restarts: 0,
        };
        assert!(!theta_subsumes(&clause, &chain_ground(), &cfg, &mut rng()));
    }

    #[test]
    fn forward_checking_detects_dead_ends() {
        // r(x,z) with z then required by s(z): binding z to a value with no
        // s-literal must be pruned by forward checking, still finding the
        // valid assignment.
        let ground = GroundClause::new(
            Example::new(RelId(9), vec![c(1), c(2)]),
            vec![
                glit(0, &[1, 3]),
                glit(0, &[1, 4]),
                glit(0, &[1, 5]),
                glit(0, &[1, 6]),
                glit(1, &[6]),
            ],
        );
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(1), vec![v(2)]),
            ],
        );
        for seed in 0..10 {
            let mut r = StdRng::seed_from_u64(seed);
            assert!(theta_subsumes(
                &clause,
                &ground,
                &SubsumeConfig::default(),
                &mut r
            ));
        }
    }

    #[test]
    fn shared_variable_across_distant_literals() {
        // The same variable in literals of different relations must stay
        // consistent through the count-maintenance machinery.
        let ground = GroundClause::new(
            Example::new(RelId(9), vec![c(1), c(2)]),
            vec![glit(0, &[1, 10]), glit(1, &[10]), glit(0, &[1, 11])],
        );
        // t(x,y) ← r(x,w), s(w): only w = 10 works.
        let good = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(1), vec![v(2)]),
            ],
        );
        assert!(theta_subsumes(
            &good,
            &chain_ground(),
            &SubsumeConfig::default(),
            &mut rng()
        ));
        let _ = ground;
    }

    #[test]
    fn tight_budget_gives_up_not_wrong_answer() {
        // With a 1-node limit the search must answer false (approximation),
        // never panic or loop.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(0), vec![v(2), v(1)]),
            ],
        );
        let cfg = SubsumeConfig {
            node_limit: 1,
            max_restarts: 1,
        };
        // Either true (found fast) or false (budget) — just must terminate.
        let _ = theta_subsumes(&clause, &chain_ground(), &cfg, &mut rng());
    }
}
