//! θ-subsumption for coverage testing (paper §5).
//!
//! Clause `C` θ-subsumes ground clause `G` iff some substitution `θ` maps
//! every body literal of `C` onto a literal of `G` (with the head binding
//! fixed by the example). Subsumption is NP-hard; like the paper (which
//! follows Kuzelka–Zelezny's restarted strategy), we run a budgeted search
//! with a node cutoff and a bounded number of restarts, so the test is
//! *approximate*: it may report "not covered" for a covered example when the
//! search budget runs out, never the reverse.
//!
//! Two engines implement the search (DESIGN.md §15):
//!
//! - **bitset** (default): a forward-checking CSP over word-parallel `u64`
//!   bitset domains. Each body literal's candidate set (ground literals of
//!   the same relation compatible with its constants and the head binding)
//!   becomes a bitset; assigning a literal intersects the domains of every
//!   unassigned literal sharing a *newly bound* variable with an on-the-fly
//!   compatibility mask computed over currently-set bits only. Literals are
//!   chosen smallest-domain-first (MRV over maintained popcounts), the body
//!   is decomposed into connected components over unbound variables (each
//!   solved independently, so restarts never re-explore a solved
//!   component), and each component runs a cheap forward-checking-only
//!   pass before escalating to maintained arc consistency (MAC) with the
//!   remaining per-call node budget.
//! - **legacy** (`AUTOBIAS_SUBSUME=legacy`): the original randomized
//!   backtracker with per-candidate-list rescans, kept as the differential
//!   oracle's second implementation (`tests/differential_subsume.rs`).
//!
//! Both engines draw restart permutations from a private [`StdRng`] seeded
//! by a hash of the clause and the ground example, so the answer is a pure
//! function of `(clause, ground, cfg)` — engine-internal ordering never
//! shifts a caller's RNG stream (the seed-stability gap fixed in PR 9).
//!
//! ```
//! use autobias::bottom::{GroundClause, GroundLiteral};
//! use autobias::clause::{Clause, Literal, Term, VarId};
//! use autobias::example::Example;
//! use autobias::subsume::{theta_subsumes, SubsumeConfig};
//! use relstore::{Const, RelId};
//!
//! // ground BC: head t(1, 2); body r(1, 10), s(10).
//! let ground = GroundClause::new(
//!     Example::new(RelId(9), vec![Const(1), Const(2)]),
//!     vec![
//!         GroundLiteral { rel: RelId(0), vals: vec![Const(1), Const(10)].into() },
//!         GroundLiteral { rel: RelId(1), vals: vec![Const(10)].into() },
//!     ],
//! );
//! // clause: t(x, y) ← r(x, z), s(z)
//! let v = |n| Term::Var(VarId(n));
//! let clause = Clause::new(
//!     Literal::new(RelId(9), vec![v(0), v(1)]),
//!     vec![
//!         Literal::new(RelId(0), vec![v(0), v(2)]),
//!         Literal::new(RelId(1), vec![v(2)]),
//!     ],
//! );
//! assert!(theta_subsumes(&clause, &ground, &SubsumeConfig::default()));
//! ```

use crate::bottom::GroundClause;
use crate::clause::{Clause, Literal, Term, VarId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use relstore::Const;

/// Search budget for one subsumption test.
#[derive(Debug, Clone, Copy)]
pub struct SubsumeConfig {
    /// Backtracking nodes explored before a restart.
    pub node_limit: usize,
    /// Randomized restarts before giving up (answering `false`).
    pub max_restarts: usize,
}

impl Default for SubsumeConfig {
    fn default() -> Self {
        Self {
            node_limit: 20_000,
            max_restarts: 3,
        }
    }
}

impl SubsumeConfig {
    /// A budget that never cuts off: the search runs to completion, so the
    /// answer is the *exact* θ-subsumption relation (`Outcome::Cutoff` can
    /// never occur). Exponential in the worst case — meant for test oracles
    /// on small instances (see `tests/differential_subsume.rs`), not for
    /// learning.
    pub fn unbounded() -> Self {
        Self {
            node_limit: usize::MAX,
            max_restarts: 0,
        }
    }
}

/// Which subsumption implementation answers a test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubsumeEngine {
    /// Forward-checking CSP over word-parallel bitset domains (default).
    Bitset,
    /// The original randomized backtracker with candidate-list rescans.
    Legacy,
}

/// The engine selected by the `AUTOBIAS_SUBSUME` environment variable:
/// `legacy` picks the original backtracker, anything else (including unset)
/// the bitset CSP. Read per call, matching [`crate::coverage::worker_threads`],
/// so a resident server honours changes without rebuild. Both engines compute
/// the same relation; the differential suite (`tests/differential_subsume.rs`)
/// and the byte-identity transparency tests pin that equivalence.
pub fn subsume_engine() -> SubsumeEngine {
    match std::env::var("AUTOBIAS_SUBSUME") {
        Ok(v) if v.trim() == "legacy" => SubsumeEngine::Legacy,
        _ => SubsumeEngine::Bitset,
    }
}

/// Whether `clause` θ-subsumes `ground` — i.e. whether the clause covers the
/// ground BC's example (Definition 2.4 via the §5 reduction), using the
/// engine selected by `AUTOBIAS_SUBSUME`.
pub fn theta_subsumes(clause: &Clause, ground: &GroundClause, cfg: &SubsumeConfig) -> bool {
    theta_subsumes_with(subsume_engine(), clause, ground, cfg)
}

/// [`theta_subsumes`] with an explicit engine — the entry point the
/// differential oracle uses to compare implementations directly.
pub fn theta_subsumes_with(
    engine: SubsumeEngine,
    clause: &Clause,
    ground: &GroundClause,
    cfg: &SubsumeConfig,
) -> bool {
    crate::instrument::SUBSUMPTION_TESTS.bump();
    let prep = match prepare(clause, ground) {
        Prep::Refuted => return false,
        Prep::Covered => return true,
        Prep::Search(p) => p,
    };
    // Restart permutations come from a per-test RNG derived from the clause
    // and the example, never from caller state: the answer is a pure
    // function of the inputs, identical no matter which tests ran before.
    let mut rng = StdRng::seed_from_u64(derive_seed(clause, ground));
    match engine {
        SubsumeEngine::Bitset => bitset_subsumes(clause, ground, cfg, &prep, &mut rng),
        SubsumeEngine::Legacy => legacy_subsumes(clause, ground, cfg, &prep, &mut rng),
    }
}

/// FNV-1a accumulator for the per-test RNG seed; deliberately hand-rolled so
/// the seed is stable across std hasher changes (bench baselines compare
/// learned output across builds).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn mix(&mut self, x: u64) {
        self.0 ^= x;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn term(&mut self, t: &Term) {
        match *t {
            Term::Var(v) => {
                self.mix(1);
                self.mix(u64::from(v.0));
            }
            Term::Const(c) => {
                self.mix(2);
                self.mix(u64::from(c.0));
            }
        }
    }
    fn literal(&mut self, l: &Literal) {
        self.mix(u64::from(l.rel.0));
        for t in &l.args {
            self.term(t);
        }
    }
}

/// The restart-permutation seed for one `(clause, ground)` test: a hash of
/// the clause structure and the ground example. The ground *body* is summed
/// up only by its length — hashing thousands of BC literals per test would
/// cost more than the search it seeds.
fn derive_seed(clause: &Clause, ground: &GroundClause) -> u64 {
    let mut h = Fnv::new();
    h.literal(&clause.head);
    h.mix(clause.body.len() as u64);
    for l in &clause.body {
        h.literal(l);
    }
    h.mix(u64::from(ground.example.rel.0));
    for &c in &ground.example.args {
        h.mix(u64::from(c.0));
    }
    h.mix(ground.body.len() as u64);
    h.0
}

/// Search-independent preparation shared by both engines.
enum Prep {
    /// Definitively not covered (head mismatch or an empty candidate list).
    Refuted,
    /// Definitively covered (empty body with a matching head).
    Covered,
    /// A search is needed.
    Search(Prepared),
}

struct Prepared {
    /// Head binding: variable → constant fixed by the example.
    binding: Vec<Option<Const>>,
    /// Distinct candidate lists (one per (relation, required-constant
    /// signature)): ground literals of the same relation whose constant
    /// positions and head-bound variables match. The search only re-filters
    /// these by later variable bindings.
    cand_pool: Vec<Vec<u32>>,
    /// Body literal → index into `cand_pool`. Same-signature literals share
    /// one list instead of cloning it per literal.
    cand_of: Vec<u32>,
    /// Var index → body literals containing it (forward-checking targets),
    /// CSR layout: `lbv_off[v]..lbv_off[v + 1]` indexes `lbv_flat`. Flat
    /// storage keeps `prepare` to two allocations here instead of one Vec
    /// per variable — this runs once per subsumption test.
    lbv_off: Vec<u32>,
    lbv_flat: Vec<u32>,
    /// Connected components of body literals over *unbound* variables,
    /// smallest first. Components share no search state, so each is solved
    /// independently — restarts never re-explore a solved component.
    components: Vec<Vec<usize>>,
}

impl Prepared {
    /// Body literals containing variable `v`, deduplicated, ascending.
    #[inline]
    fn lits_of_var(&self, v: usize) -> &[u32] {
        &self.lbv_flat[self.lbv_off[v] as usize..self.lbv_off[v + 1] as usize]
    }

    /// Per-literal candidate-list slices, for engines that index by literal.
    fn cand_slices(&self) -> Vec<&[u32]> {
        self.cand_of
            .iter()
            .map(|&i| self.cand_pool[i as usize].as_slice())
            .collect()
    }
}

fn prepare(clause: &Clause, ground: &GroundClause) -> Prep {
    // 1. Head binding: relation and arity must match; head vars bind to the
    //    example's constants, head constants must equal them.
    if clause.head.rel != ground.example.rel || clause.head.args.len() != ground.example.args.len()
    {
        return Prep::Refuted;
    }
    let num_vars = clause.num_vars() as usize;
    let mut binding: Vec<Option<Const>> = vec![None; num_vars];
    for (term, &c) in clause.head.args.iter().zip(ground.example.args.iter()) {
        match *term {
            Term::Var(v) => match binding[v.index()] {
                None => binding[v.index()] = Some(c),
                Some(b) if b == c => {}
                Some(_) => return Prep::Refuted,
            },
            Term::Const(k) => {
                if k != c {
                    return Prep::Refuted;
                }
            }
        }
    }

    if clause.body.is_empty() {
        return Prep::Covered;
    }

    // 2. Static candidate lists per body literal. An empty list anywhere
    //    refutes the clause immediately — the common case for `#`-literals
    //    whose constant does not occur in this example's neighbourhood.
    //    The static filter only sees a literal's *required constants*
    //    (explicit `#` constants and head-bound variables); armg bodies are
    //    full of same-relation literals differing only in unbound search
    //    variables, so lists are memoized by (relation, required-constant
    //    signature) and repeats are a memcpy instead of a rescan.
    let mut cand_pool: Vec<Vec<u32>> = Vec::new();
    let mut cand_of: Vec<u32> = Vec::with_capacity(clause.body.len());
    // (relation, required-constant signature) → pool index; linear scan beats
    // hashing at the handful of distinct signatures a clause body produces.
    type MemoEntry = (relstore::RelId, Vec<(u32, Const)>, u32);
    let mut memo: Vec<MemoEntry> = Vec::new();
    for lit in &clause.body {
        let mut sig: Vec<(u32, Const)> = Vec::new();
        for (p, t) in lit.args.iter().enumerate() {
            let req = match *t {
                Term::Const(c) => Some(c),
                Term::Var(v) => binding[v.index()],
            };
            if let Some(c) = req {
                sig.push((p as u32, c));
            }
        }
        // Distinct signatures per clause number in the single digits, so a
        // linear scan beats a hash map (no hashing, no table allocation).
        if let Some(idx) = memo
            .iter()
            .find(|(r, s, _)| *r == lit.rel && *s == sig)
            .map(|&(_, _, idx)| idx)
        {
            cand_of.push(idx);
        } else {
            let arity = lit.args.len();
            let cands: Vec<u32> = ground
                .literals_of(lit.rel)
                .iter()
                .copied()
                .filter(|&gi| {
                    let g = &ground.body[gi as usize];
                    arity == g.vals.len() && sig.iter().all(|&(p, c)| g.vals[p as usize] == c)
                })
                .collect();
            if cands.is_empty() {
                return Prep::Refuted;
            }
            memo.push((lit.rel, sig, cand_pool.len() as u32));
            cand_of.push(cand_pool.len() as u32);
            cand_pool.push(cands);
        }
    }

    // Var → literals, CSR: count (deduping repeats within one literal via a
    // last-literal stamp), prefix-sum, fill.
    let n_body = clause.body.len();
    let mut lbv_off = vec![0u32; num_vars + 1];
    let mut last_seen = vec![u32::MAX; num_vars];
    for (li, lit) in clause.body.iter().enumerate() {
        for v in lit.vars() {
            if last_seen[v.index()] != li as u32 {
                last_seen[v.index()] = li as u32;
                lbv_off[v.index() + 1] += 1;
            }
        }
    }
    for v in 0..num_vars {
        lbv_off[v + 1] += lbv_off[v];
    }
    let mut lbv_flat = vec![0u32; lbv_off[num_vars] as usize];
    let mut cursor: Vec<u32> = lbv_off[..num_vars].to_vec();
    last_seen.iter_mut().for_each(|s| *s = u32::MAX);
    for (li, lit) in clause.body.iter().enumerate() {
        for v in lit.vars() {
            if last_seen[v.index()] != li as u32 {
                last_seen[v.index()] = li as u32;
                lbv_flat[cursor[v.index()] as usize] = li as u32;
                cursor[v.index()] += 1;
            }
        }
    }

    // 3. Decompose the body into connected components over *unbound*
    //    variables (head-bound vars don't link literals — their values are
    //    fixed); same partition as `Clause::connected_body_components`.
    //    Bottom clauses carry many trivially satisfiable side-literals, and
    //    decomposition keeps them from multiplying the search space of the
    //    part that matters.
    let mut comp_of: Vec<u32> = (0..n_body as u32).collect();
    fn find_root(comp_of: &mut [u32], mut x: u32) -> u32 {
        while comp_of[x as usize] != x {
            let parent = comp_of[x as usize];
            comp_of[x as usize] = comp_of[parent as usize];
            x = parent;
        }
        x
    }
    for v in 0..num_vars {
        let lits = &lbv_flat[lbv_off[v] as usize..lbv_off[v + 1] as usize];
        if binding[v].is_some() || lits.len() < 2 {
            continue;
        }
        let first = find_root(&mut comp_of, lits[0]);
        for &l in &lits[1..] {
            let r = find_root(&mut comp_of, l);
            comp_of[r as usize] = first;
        }
    }
    // Group by root in first-occurrence order (deterministic, no hashing).
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut comp_idx: Vec<u32> = vec![u32::MAX; clause.body.len()];
    for li in 0..clause.body.len() {
        let root = find_root(&mut comp_of, li as u32) as usize;
        if comp_idx[root] == u32::MAX {
            comp_idx[root] = components.len() as u32;
            components.push(Vec::new());
        }
        components[comp_idx[root] as usize].push(li);
    }
    // Small components first: cheap refutations come earliest.
    components.sort_by_key(Vec::len);
    if components.len() > 1 {
        crate::instrument::SUBSUME_COMPONENTS_SPLIT.add(components.len() as u64 - 1);
    }

    Prep::Search(Prepared {
        binding,
        cand_pool,
        cand_of,
        lbv_off,
        lbv_flat,
        components,
    })
}

enum Outcome {
    Found,
    Exhausted,
    Cutoff,
}

// ---------------------------------------------------------------------------
// Bitset engine: forward-checking CSP over word-parallel domains.
// ---------------------------------------------------------------------------

/// Number of `u64` words needed for `n` candidate bits.
fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// One body literal's CSP state: the location of its bitset domain over its
/// static candidate list in the flat domain vector.
struct LitCsp {
    /// Offset of this literal's domain words in the flat domain vector.
    off: usize,
    /// Domain width in `u64` words.
    width: usize,
}

struct BitsetSearch<'a> {
    clause: &'a Clause,
    static_cands: Vec<&'a [u32]>,
    prep: &'a Prepared,
    ground: &'a GroundClause,
    lits: Vec<LitCsp>,
    /// Flat per-literal domain bitsets (current search state).
    dom: Vec<u64>,
    /// Pristine copy of `dom` (head binding applied, nothing else).
    dom0: Vec<u64>,
    /// Per-literal popcount of `dom` (MRV key).
    counts: Vec<u32>,
    counts0: Vec<u32>,
    /// Targeted-undo log: one entry per intersected literal, pointing at its
    /// saved words in `undo_words`. Unwound to a mark on backtrack, so a
    /// failed candidate costs only the domains it actually touched — not a
    /// full-state snapshot.
    undo_lits: Vec<(u32, u32, u32)>,
    undo_words: Vec<u64>,
    /// Bound-variable scratch, used with mark/truncate across recursion.
    trail: Vec<VarId>,
    active: Vec<usize>,
    nodes: usize,
    /// Budget ceiling for the current phase (`<= cfg.node_limit`): the
    /// forward-checking-only first pass runs against a small slice so easy
    /// tests never pay for propagation machinery they don't need.
    limit: usize,
    /// Whether to maintain arc consistency during search: `false` during
    /// the cheap first pass (plain forward checking), `true` once a
    /// component has proven hard enough to trip the first-pass budget.
    mac: bool,
    /// Domain words touched by intersections — the `subsume_domain_words`
    /// counter's contribution from this test.
    words: u64,
    /// Per-depth candidate-order buffers, pooled across candidates,
    /// restarts, and components to avoid a heap allocation per node.
    orders: Vec<Vec<u32>>,
    /// Arc-consistency worklist: literal indices whose domain shrank and
    /// whose neighbours still need revising, with membership flags and the
    /// single literal that caused the shrink (`u32::MAX` when several did,
    /// or when the shrink came from an assignment): revising the causer
    /// back is the one arc guaranteed to be a no-op, so it is skipped.
    queue: Vec<u32>,
    in_queue: Vec<bool>,
    cause: Vec<u32>,
    /// Scratch for the compatibility masks built by `fc_apply` and
    /// `revise_pair`.
    mask_scratch: Vec<u64>,
    /// Per-literal visited stamps for deduping forward-check targets when a
    /// candidate binds several variables at once (generation counter, never
    /// cleared).
    stamp: Vec<u64>,
    stamp_gen: u64,
    /// Distinct body literals sharing a search-bound variable with each
    /// literal (CSR layout: `neighbors_off[li]..neighbors_off[li + 1]`
    /// indexes `neighbors_flat`) — the propagation targets of an assignment.
    neighbors_off: Vec<u32>,
    neighbors_flat: Vec<u32>,
}

/// Outcome of revising one literal's domain against a support set.
enum Revised {
    Unchanged,
    Shrunk,
    Empty,
}

impl<'a> BitsetSearch<'a> {
    fn new(
        clause: &'a Clause,
        ground: &'a GroundClause,
        cfg: &'a SubsumeConfig,
        prep: &'a Prepared,
    ) -> Self {
        let n = clause.body.len();
        let static_cands = prep.cand_slices();
        let mut lits = Vec::with_capacity(n);
        let mut off = 0usize;
        for cands in &static_cands {
            let width = words_for(cands.len());
            lits.push(LitCsp { off, width });
            off += width;
        }
        let mut dom0 = vec![0u64; off];
        let mut counts0 = vec![0u32; n];
        for (li, cands) in static_cands.iter().enumerate() {
            let l = &lits[li];
            for w in 0..l.width {
                let bits = (cands.len() - w * 64).min(64);
                dom0[l.off + w] = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
            }
            counts0[li] = cands.len() as u32;
        }
        BitsetSearch {
            clause,
            static_cands,
            prep,
            ground,
            lits,
            dom: dom0.clone(),
            dom0,
            counts: counts0.clone(),
            counts0,
            undo_lits: Vec::new(),
            undo_words: Vec::new(),
            trail: Vec::new(),
            active: Vec::new(),
            nodes: 0,
            limit: cfg.node_limit,
            mac: true,
            words: 0,
            orders: Vec::new(),
            queue: Vec::new(),
            in_queue: vec![false; n],
            cause: vec![u32::MAX; n],
            mask_scratch: Vec::new(),
            stamp: vec![0; n],
            stamp_gen: 0,
            neighbors_off: Vec::new(),
            neighbors_flat: Vec::new(),
        }
    }

    /// Builds the propagation-target CSR on first escalation to the
    /// arc-consistency phase — the distinct literals sharing a variable
    /// that is unbound at prepare time (head-bound vars are folded into
    /// the static candidate lists and never propagate). Most tests finish
    /// in the forward-checking pass and never pay for this.
    fn ensure_neighbors(&mut self) {
        if !self.neighbors_off.is_empty() {
            return;
        }
        let n = self.clause.body.len();
        self.neighbors_off.reserve(n + 1);
        let mut stamp: Vec<u32> = vec![u32::MAX; n];
        self.neighbors_off.push(0);
        for (li, lit) in self.clause.body.iter().enumerate() {
            for t in &lit.args {
                if let Term::Var(v) = *t {
                    if self.prep.binding[v.index()].is_some() {
                        continue;
                    }
                    for &lk in self.prep.lits_of_var(v.index()) {
                        if lk as usize != li && stamp[lk as usize] != li as u32 {
                            stamp[lk as usize] = li as u32;
                            self.neighbors_flat.push(lk);
                        }
                    }
                }
            }
            self.neighbors_off.push(self.neighbors_flat.len() as u32);
        }
    }

    /// Resets domains and counts to their pristine (head-bound) state.
    /// The node budget is deliberately *not* reset: for the bitset engine
    /// `node_limit` bounds the work of the whole call (all components, all
    /// restarts, propagation included), which caps the worst-case latency
    /// of refutation-heavy tests. Budget exhaustion still only ever yields
    /// a conservative "not covered".
    fn reset(&mut self) {
        self.dom.copy_from_slice(&self.dom0);
        self.counts.copy_from_slice(&self.counts0);
        self.undo_lits.clear();
        self.undo_words.clear();
        self.trail.clear();
        self.drain_queue();
    }

    /// Empties the AC worklist, clearing membership flags.
    fn drain_queue(&mut self) {
        for &lj in &self.queue {
            self.in_queue[lj as usize] = false;
        }
        self.queue.clear();
    }

    /// Unwinds the targeted-undo log back to `mark`, restoring the saved
    /// domain words and popcounts of every literal intersected since.
    fn unwind(&mut self, mark: usize) {
        while self.undo_lits.len() > mark {
            let (lj, old_count, word_at) = self.undo_lits.pop().expect("non-empty past mark");
            let (off, width) = {
                let l = &self.lits[lj as usize];
                (l.off, l.width)
            };
            let src = word_at as usize;
            self.dom[off..off + width].copy_from_slice(&self.undo_words[src..src + width]);
            self.counts[lj as usize] = old_count;
            self.undo_words.truncate(src);
        }
    }

    /// Shrink-driven arc-consistency propagation (MAC, Django-style): while
    /// some literal's domain has shrunk, prune each unassigned neighbour to
    /// the candidates still compatible with it. Only values with *no*
    /// remaining support are removed, so the solution set is untouched —
    /// this is a pure search-space reduction layered on forward checking,
    /// and it is what keeps refutation-heavy components from thrashing.
    /// Propagation work is charged to the node budget; when the budget
    /// trips, pruning simply stops (sound: the search then notices the
    /// cutoff itself). Returns `false` when a domain empties.
    fn propagate(&mut self, assigned: &[bool]) -> bool {
        while let Some(lj) = self.queue.pop() {
            self.in_queue[lj as usize] = false;
            let skip = self.cause[lj as usize];
            let (a, b) = (
                self.neighbors_off[lj as usize] as usize,
                self.neighbors_off[lj as usize + 1] as usize,
            );
            for slot in a..b {
                let lk = self.neighbors_flat[slot] as usize;
                if assigned[lk] || lk as u32 == skip {
                    continue;
                }
                self.nodes += 1;
                if self.nodes > self.limit {
                    self.drain_queue();
                    return true;
                }
                match self.revise_pair(lj as usize, lk) {
                    Revised::Empty => {
                        self.drain_queue();
                        return false;
                    }
                    Revised::Shrunk => self.maybe_enqueue(lk, lj),
                    Revised::Unchanged => {}
                }
            }
        }
        true
    }

    /// Queues `lk` for propagation after a shrink caused by `from`
    /// (`u32::MAX` for an assignment), folding multiple causes together.
    fn maybe_enqueue(&mut self, lk: usize, from: u32) {
        if self.in_queue[lk] {
            if self.cause[lk] != from {
                self.cause[lk] = u32::MAX;
            }
        } else {
            self.in_queue[lk] = true;
            self.cause[lk] = from;
            self.queue.push(lk as u32);
        }
    }

    /// Extracts the position pairs constrained to be equal by a variable
    /// shared between body literals `li` and `lj`. Tiny arities make this a
    /// handful of comparisons — far cheaper than materializing and caching
    /// compatibility tables, which profiling showed are used ~1.4 times
    /// each before the test ends.
    #[inline]
    fn cons_pairs(clause: &Clause, li: usize, lj: usize) -> ([(u8, u8); 16], usize) {
        let mut cons: [(u8, u8); 16] = [(0, 0); 16];
        let mut n_cons = 0usize;
        for (pi, t) in clause.body[li].args.iter().enumerate() {
            if let Term::Var(v) = *t {
                for (pj, t2) in clause.body[lj].args.iter().enumerate() {
                    if matches!(t2, Term::Var(v2) if *v2 == v) && n_cons < cons.len() {
                        cons[n_cons] = (pi as u8, pj as u8);
                        n_cons += 1;
                    }
                }
            }
        }
        (cons, n_cons)
    }

    /// ANDs `mask` into literal `lk`'s domain, logging undo state on change.
    #[allow(clippy::too_many_arguments)]
    fn apply_mask(
        dom: &mut [u64],
        counts: &mut [u32],
        undo_lits: &mut Vec<(u32, u32, u32)>,
        undo_words: &mut Vec<u64>,
        off: usize,
        width: usize,
        lk: usize,
        mask: &[u64],
    ) -> Revised {
        let mut changed = false;
        let mut count = 0u32;
        for wd in 0..width {
            let nw = dom[off + wd] & mask[wd];
            changed |= nw != dom[off + wd];
            count += nw.count_ones();
        }
        if !changed {
            return Revised::Unchanged;
        }
        undo_lits.push((lk as u32, counts[lk], undo_words.len() as u32));
        undo_words.extend_from_slice(&dom[off..off + width]);
        for wd in 0..width {
            dom[off + wd] &= mask[wd];
        }
        counts[lk] = count;
        if count == 0 {
            Revised::Empty
        } else {
            Revised::Shrunk
        }
    }

    /// Applies the choice `li = ci` to neighbour `lj`'s domain: one
    /// word-parallel AND with the on-the-fly compatibility mask, covering
    /// every variable the two literals share at once. The mask is computed
    /// over `lj`'s *currently set* bits only, so the scan shrinks as the
    /// domain does, and nothing is allocated or cached.
    fn fc_apply(&mut self, li: usize, lj: usize, ci: usize) -> Revised {
        let (cons, n_cons) = Self::cons_pairs(self.clause, li, lj);
        let BitsetSearch {
            static_cands,
            ground,
            lits,
            dom,
            counts,
            undo_lits,
            undo_words,
            mask_scratch,
            words,
            ..
        } = self;
        let (off, width) = (lits[lj].off, lits[lj].width);
        let gvi = &ground.body[static_cands[li][ci] as usize].vals;
        mask_scratch.clear();
        mask_scratch.resize(width, 0);
        for wd in 0..width {
            let mut bits = dom[off + wd];
            let mut keep = 0u64;
            while bits != 0 {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                let cj = wd * 64 + tz as usize;
                let gvj = &ground.body[static_cands[lj][cj] as usize].vals;
                if cons[..n_cons]
                    .iter()
                    .all(|&(pi, pj)| gvi[pi as usize] == gvj[pj as usize])
                {
                    keep |= 1u64 << tz;
                }
            }
            mask_scratch[wd] = keep;
        }
        *words += width as u64;
        Self::apply_mask(
            dom,
            counts,
            undo_lits,
            undo_words,
            off,
            width,
            lj,
            mask_scratch,
        )
    }

    /// Revises `lk` against `lj`: keeps only `lk`-candidates with at least
    /// one supporting candidate in `lj`'s current domain (classic AC-3
    /// revise with first-support early exit, over set bits only).
    fn revise_pair(&mut self, lj: usize, lk: usize) -> Revised {
        let (off_j, width_j) = (self.lits[lj].off, self.lits[lj].width);
        // Singleton source: support can only come from the one candidate —
        // identical to a forward check against it.
        if self.counts[lj] == 1 {
            let wd = (0..width_j)
                .find(|&wd| self.dom[off_j + wd] != 0)
                .expect("count 1 has a set bit");
            let ci = wd * 64 + self.dom[off_j + wd].trailing_zeros() as usize;
            return self.fc_apply(lj, lk, ci);
        }
        let (cons, n_cons) = Self::cons_pairs(self.clause, lj, lk);
        let BitsetSearch {
            static_cands,
            ground,
            lits,
            dom,
            counts,
            undo_lits,
            undo_words,
            mask_scratch,
            words,
            ..
        } = self;
        let (off_k, width_k) = (lits[lk].off, lits[lk].width);
        mask_scratch.clear();
        mask_scratch.resize(width_k, 0);
        for wd_k in 0..width_k {
            let mut bits_k = dom[off_k + wd_k];
            let mut keep = 0u64;
            'target: while bits_k != 0 {
                let tz_k = bits_k.trailing_zeros();
                bits_k &= bits_k - 1;
                let ck = wd_k * 64 + tz_k as usize;
                let gvk = &ground.body[static_cands[lk][ck] as usize].vals;
                for wd_j in 0..width_j {
                    let mut bits_j = dom[off_j + wd_j];
                    while bits_j != 0 {
                        let tz_j = bits_j.trailing_zeros();
                        bits_j &= bits_j - 1;
                        let cj = wd_j * 64 + tz_j as usize;
                        let gvj = &ground.body[static_cands[lj][cj] as usize].vals;
                        if cons[..n_cons]
                            .iter()
                            .all(|&(pj, pk)| gvj[pj as usize] == gvk[pk as usize])
                        {
                            keep |= 1u64 << tz_k;
                            continue 'target;
                        }
                    }
                }
            }
            mask_scratch[wd_k] = keep;
        }
        *words += width_k as u64;
        Self::apply_mask(
            dom,
            counts,
            undo_lits,
            undo_words,
            off_k,
            width_k,
            lk,
            mask_scratch,
        )
    }

    /// Candidate bit-positions of literal `li`'s current domain, in
    /// ascending order, into `out`.
    fn collect_order(&self, li: usize, out: &mut Vec<u32>) {
        out.clear();
        let l = &self.lits[li];
        for w in 0..l.width {
            let mut bits = self.dom[l.off + w];
            while bits != 0 {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                out.push((w * 64) as u32 + tz);
            }
        }
    }

    fn solve(
        &mut self,
        binding: &mut [Option<Const>],
        assigned: &mut [bool],
        depth: usize,
        randomize: bool,
        rng: &mut StdRng,
    ) -> Outcome {
        self.nodes += 1;
        if self.nodes > self.limit {
            return Outcome::Cutoff;
        }
        // MRV over maintained popcounts: integer scan of the active component.
        let mut best: Option<(usize, u32)> = None;
        for &li in &self.active {
            if assigned[li] {
                continue;
            }
            let c = self.counts[li];
            if best.is_none_or(|(_, b)| c < b) {
                best = Some((li, c));
                if c <= 1 {
                    break;
                }
            }
        }
        let Some((li, _)) = best else {
            return Outcome::Found; // all literals assigned
        };
        // One pooled candidate-order buffer per depth, reused across
        // candidates, restarts, and components.
        if self.orders.len() <= depth {
            self.orders.push(Vec::new());
        }
        let mut order = std::mem::take(&mut self.orders[depth]);
        self.collect_order(li, &mut order);
        if order.is_empty() {
            self.orders[depth] = order;
            return Outcome::Exhausted;
        }
        if randomize {
            order.shuffle(rng);
        }

        assigned[li] = true;
        let trail_mark = self.trail.len();
        let mut saw_cutoff = false;
        'cand: for &ci in &order {
            let gi = self.static_cands[li][ci as usize];
            // Extend the binding; the trail (used with mark/truncate across
            // the recursion) remembers which vars we set for undo. Vars
            // already bound are guaranteed consistent by domain maintenance;
            // a variable repeated *within* this literal can still conflict
            // and is checked here.
            {
                let lit = &self.clause.body[li];
                let g = &self.ground.body[gi as usize];
                let mut conflict = false;
                for (t, &gv) in lit.args.iter().zip(g.vals.iter()) {
                    if let Term::Var(v) = *t {
                        match binding[v.index()] {
                            None => {
                                binding[v.index()] = Some(gv);
                                self.trail.push(v);
                            }
                            Some(b) if b == gv => {}
                            Some(_) => {
                                conflict = true;
                                break;
                            }
                        }
                    }
                }
                if conflict {
                    for ti in trail_mark..self.trail.len() {
                        binding[self.trail[ti].index()] = None;
                    }
                    self.trail.truncate(trail_mark);
                    continue 'cand;
                }
            }
            // Forward-check via pair tables: every unassigned neighbour's
            // domain is ANDed with the row of candidates compatible with
            // the choice `li = ci` — one word-parallel operation per
            // target, covering all shared variables at once. The undo
            // log records only the domains actually touched, so
            // backtracking costs O(touched), not a full-state snapshot.
            // Only literals containing a *newly bound* variable are
            // checked: when every variable shared with `li` was bound
            // earlier, both domains were already filtered to that binding
            // when it happened, so the check is provably a no-op. (In
            // particular, a candidate that binds nothing checks nothing.)
            let undo_mark = self.undo_lits.len();
            let mut dead_end = false;
            self.stamp_gen += 1;
            let gen = self.stamp_gen;
            let prep = self.prep;
            'fc: for ti in trail_mark..self.trail.len() {
                let v = self.trail[ti];
                let targets = prep.lits_of_var(v.index());
                for &lj in targets {
                    let lj = lj as usize;
                    if lj == li || assigned[lj] || self.stamp[lj] == gen {
                        continue;
                    }
                    self.stamp[lj] = gen;
                    match self.fc_apply(li, lj, ci as usize) {
                        Revised::Empty => {
                            dead_end = true;
                            break 'fc;
                        }
                        Revised::Shrunk => {
                            if self.mac {
                                self.maybe_enqueue(lj, u32::MAX);
                            }
                        }
                        Revised::Unchanged => {}
                    }
                }
            }
            if dead_end {
                self.drain_queue();
            } else if self.mac {
                dead_end = !self.propagate(assigned);
            }
            if !dead_end {
                match self.solve(binding, assigned, depth + 1, randomize, rng) {
                    Outcome::Found => {
                        self.orders[depth] = order;
                        return Outcome::Found;
                    }
                    Outcome::Cutoff => saw_cutoff = true,
                    Outcome::Exhausted => {}
                }
            }
            self.unwind(undo_mark);
            for ti in trail_mark..self.trail.len() {
                binding[self.trail[ti].index()] = None;
            }
            self.trail.truncate(trail_mark);
            if self.nodes > self.limit {
                assigned[li] = false;
                self.orders[depth] = order;
                return Outcome::Cutoff;
            }
        }
        assigned[li] = false;
        self.orders[depth] = order;
        if saw_cutoff {
            Outcome::Cutoff
        } else {
            Outcome::Exhausted
        }
    }
}

fn bitset_subsumes(
    clause: &Clause,
    ground: &GroundClause,
    cfg: &SubsumeConfig,
    prep: &Prepared,
    rng: &mut StdRng,
) -> bool {
    let mut search = BitsetSearch::new(clause, ground, cfg, prep);
    // Phase structure per component: a cheap forward-checking-only pass
    // first (a small slice of the call budget — most coverage tests are
    // easy and propagation overhead would dominate them), escalating to
    // maintained arc consistency with the full remaining budget only when
    // the component proves hard enough to trip the first-pass slice. Both
    // phases are complete searches, so an `Exhausted` from either is an
    // exact "no θ"; only `Cutoff` escalates.
    const FC_PASS_BUDGET: usize = 256;
    // Binding and assignment buffers, refilled per attempt instead of
    // reallocated (~one attempt per component, components per test).
    let mut b = prep.binding.clone();
    let mut assigned = vec![true; clause.body.len()];
    let mut covered = true;
    'component: for comp in &prep.components {
        search.active.clone_from(comp);
        search.mac = false;
        search.limit = (search.nodes.saturating_add(FC_PASS_BUDGET)).min(cfg.node_limit);
        search.reset();
        b.copy_from_slice(&prep.binding);
        // Literals outside the component are treated as already assigned.
        assigned.fill(true);
        for &li in comp {
            assigned[li] = false;
        }
        let out = search.solve(&mut b, &mut assigned, 0, false, rng);
        match out {
            Outcome::Found => continue 'component,
            Outcome::Exhausted => {
                covered = false; // complete: truly no θ
                break 'component;
            }
            Outcome::Cutoff => {} // escalate to the propagating search
        }
        search.mac = true;
        search.limit = cfg.node_limit;
        search.ensure_neighbors();
        for attempt in 0..=cfg.max_restarts {
            search.reset();
            b.copy_from_slice(&prep.binding);
            assigned.fill(true);
            for &li in comp {
                assigned[li] = false;
            }
            // The first attempt runs in deterministic candidate order;
            // restarts shuffle (the classic randomized-restart recipe).
            let out = search.solve(&mut b, &mut assigned, 0, attempt > 0, rng);
            match out {
                Outcome::Found => continue 'component,
                Outcome::Exhausted => {
                    covered = false; // complete: truly no θ
                    break 'component;
                }
                Outcome::Cutoff => continue, // retry, new random order
            }
        }
        covered = false; // budget exhausted on this component
        break;
    }
    crate::instrument::SUBSUME_DOMAIN_WORDS.add(search.words);
    covered
}

// ---------------------------------------------------------------------------
// Legacy engine: randomized backtracker with candidate-list rescans.
// ---------------------------------------------------------------------------

fn legacy_subsumes(
    clause: &Clause,
    ground: &GroundClause,
    cfg: &SubsumeConfig,
    prep: &Prepared,
    rng: &mut StdRng,
) -> bool {
    let mut search = LegacySearch {
        clause,
        ground,
        cfg,
        static_cands: prep.cand_slices(),
        prep,
        active: Vec::new(),
        nodes: 0,
    };
    'component: for comp in &prep.components {
        search.active.clone_from(comp);
        for _attempt in 0..=cfg.max_restarts {
            search.nodes = 0;
            let mut b = prep.binding.clone();
            let mut assigned = vec![true; clause.body.len()];
            for &li in comp {
                assigned[li] = false;
            }
            // counts[li] = current number of consistent candidates; the
            // static lists already reflect the head binding.
            let mut counts: Vec<usize> = search.static_cands.iter().map(|c| c.len()).collect();
            match search.solve(&mut b, &mut assigned, &mut counts, rng) {
                Outcome::Found => continue 'component,
                Outcome::Exhausted => return false, // complete: truly no θ
                Outcome::Cutoff => continue,        // retry, new random order
            }
        }
        return false; // budget exhausted on this component
    }
    true
}

struct LegacySearch<'a> {
    clause: &'a Clause,
    ground: &'a GroundClause,
    cfg: &'a SubsumeConfig,
    /// Per-literal candidates matching relation, constants, and the head
    /// binding — the search re-filters these by later variable bindings.
    static_cands: Vec<&'a [u32]>,
    /// Prepared state (CSR var → literals map for forward-checking targets).
    prep: &'a Prepared,
    /// Literal indices of the component currently being solved; the MRV
    /// scan only looks at these.
    active: Vec<usize>,
    nodes: usize,
}

impl LegacySearch<'_> {
    /// Candidates of body literal `li` consistent with `binding`.
    fn candidates(&self, li: usize, binding: &[Option<Const>]) -> Vec<u32> {
        let lit = &self.clause.body[li];
        self.static_cands[li]
            .iter()
            .copied()
            .filter(|&gi| self.matches(lit, gi, binding))
            .collect()
    }

    fn count_candidates(&self, li: usize, binding: &[Option<Const>]) -> usize {
        let lit = &self.clause.body[li];
        self.static_cands[li]
            .iter()
            .filter(|&&gi| self.matches(lit, gi, binding))
            .count()
    }

    fn matches(&self, lit: &Literal, gi: u32, binding: &[Option<Const>]) -> bool {
        let g = &self.ground.body[gi as usize];
        debug_assert_eq!(lit.args.len(), g.vals.len());
        lit.args.iter().zip(g.vals.iter()).all(|(t, &gv)| match *t {
            Term::Const(c) => c == gv,
            Term::Var(v) => binding[v.index()].is_none_or(|b| b == gv),
        })
    }

    fn solve<R: Rng>(
        &mut self,
        binding: &mut [Option<Const>],
        assigned: &mut [bool],
        counts: &mut [usize],
        rng: &mut R,
    ) -> Outcome {
        self.nodes += 1;
        if self.nodes > self.cfg.node_limit {
            return Outcome::Cutoff;
        }
        // MRV over maintained counts: integer scan of the active component.
        let mut best: Option<(usize, usize)> = None;
        for &li in &self.active {
            if assigned[li] {
                continue;
            }
            let c = counts[li];
            if best.is_none_or(|(_, b)| c < b) {
                best = Some((li, c));
                if c <= 1 {
                    break;
                }
            }
        }
        let Some((li, _)) = best else {
            return Outcome::Found; // all literals assigned
        };
        let mut cands = self.candidates(li, binding);
        if cands.is_empty() {
            return Outcome::Exhausted;
        }
        cands.shuffle(rng);

        assigned[li] = true;
        let mut saw_cutoff = false;
        'cand: for gi in cands {
            // Extend the binding; remember which vars we set for undo.
            let mut trail: Vec<VarId> = Vec::new();
            {
                let lit = &self.clause.body[li];
                let g = &self.ground.body[gi as usize];
                for (t, &gv) in lit.args.iter().zip(g.vals.iter()) {
                    if let Term::Var(v) = *t {
                        match binding[v.index()] {
                            None => {
                                binding[v.index()] = Some(gv);
                                trail.push(v);
                            }
                            Some(b) if b == gv => {}
                            Some(_) => {
                                for v in trail {
                                    binding[v.index()] = None;
                                }
                                continue 'cand;
                            }
                        }
                    }
                }
            }
            // Forward checking: recompute counts only for unassigned
            // literals touching a newly bound variable.
            let mut count_trail: Vec<(usize, usize)> = Vec::new();
            let mut dead_end = false;
            'fc: for &v in &trail {
                for &ljr in self.prep.lits_of_var(v.index()) {
                    let lj = ljr as usize;
                    if assigned[lj] || count_trail.iter().any(|&(k, _)| k == lj) {
                        continue;
                    }
                    let new_count = self.count_candidates(lj, binding);
                    count_trail.push((lj, counts[lj]));
                    counts[lj] = new_count;
                    if new_count == 0 {
                        dead_end = true;
                        break 'fc;
                    }
                }
            }
            if !dead_end {
                match self.solve(binding, assigned, counts, rng) {
                    Outcome::Found => return Outcome::Found,
                    Outcome::Cutoff => saw_cutoff = true,
                    Outcome::Exhausted => {}
                }
            }
            for (lj, old) in count_trail {
                counts[lj] = old;
            }
            for v in trail {
                binding[v.index()] = None;
            }
            if self.nodes > self.cfg.node_limit {
                assigned[li] = false;
                return Outcome::Cutoff;
            }
        }
        assigned[li] = false;
        if saw_cutoff {
            Outcome::Cutoff
        } else {
            Outcome::Exhausted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom::GroundLiteral;
    use crate::example::Example;
    use relstore::RelId;

    const ENGINES: [SubsumeEngine; 2] = [SubsumeEngine::Bitset, SubsumeEngine::Legacy];

    /// Runs the test body once per engine, asserting both agree.
    fn subsumes_both(clause: &Clause, ground: &GroundClause, cfg: &SubsumeConfig) -> bool {
        let answers: Vec<bool> = ENGINES
            .iter()
            .map(|&e| theta_subsumes_with(e, clause, ground, cfg))
            .collect();
        assert_eq!(answers[0], answers[1], "engines disagree");
        answers[0]
    }

    fn v(n: u32) -> Term {
        Term::Var(VarId(n))
    }

    fn c(n: u32) -> Const {
        Const(n)
    }

    fn glit(rel: u32, vals: &[u32]) -> GroundLiteral {
        GroundLiteral {
            rel: RelId(rel),
            vals: vals.iter().map(|&x| Const(x)).collect(),
        }
    }

    /// ground: head t(1,2); body r(1,10), r(10,2), s(10)
    fn chain_ground() -> GroundClause {
        GroundClause::new(
            Example::new(RelId(9), vec![c(1), c(2)]),
            vec![glit(0, &[1, 10]), glit(0, &[10, 2]), glit(1, &[10])],
        )
    }

    #[test]
    fn subsumes_chain() {
        // t(x,y) ← r(x,z), r(z,y), s(z)  covers the chain.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(0), vec![v(2), v(1)]),
                Literal::new(RelId(1), vec![v(2)]),
            ],
        );
        assert!(subsumes_both(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
    }

    #[test]
    fn rejects_wrong_chain() {
        // t(x,y) ← r(y,z): requires r starting at 2 — absent.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(1), v(2)])],
        );
        assert!(!subsumes_both(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
    }

    #[test]
    fn head_constant_must_match() {
        let clause_ok = Clause::new(
            Literal::new(RelId(9), vec![Term::Const(c(1)), v(0)]),
            vec![],
        );
        let clause_bad = Clause::new(
            Literal::new(RelId(9), vec![Term::Const(c(7)), v(0)]),
            vec![],
        );
        assert!(subsumes_both(
            &clause_ok,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
        assert!(!subsumes_both(
            &clause_bad,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
    }

    #[test]
    fn repeated_head_var_requires_equal_constants() {
        // t(x,x) can't cover example t(1,2).
        let clause = Clause::new(Literal::new(RelId(9), vec![v(0), v(0)]), vec![]);
        assert!(!subsumes_both(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
        // But covers t(1,1).
        let ground = GroundClause::new(Example::new(RelId(9), vec![c(1), c(1)]), vec![]);
        assert!(subsumes_both(&clause, &ground, &SubsumeConfig::default()));
    }

    #[test]
    fn body_constants_must_match_exactly() {
        // t(x,y) ← r(x, 10) covers; r(x, 11) does not.
        let ok = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(0), Term::Const(c(10))])],
        );
        let bad = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(0), Term::Const(c(11))])],
        );
        assert!(subsumes_both(
            &ok,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
        assert!(!subsumes_both(
            &bad,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
    }

    #[test]
    fn non_injective_mappings_are_allowed() {
        // θ-subsumption permits two clause vars mapping to one constant:
        // t(x,y) ← r(x,z), r(w,y) with z = w = 10.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(0), vec![v(3), v(1)]),
            ],
        );
        assert!(subsumes_both(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
    }

    #[test]
    fn two_clause_literals_may_map_to_one_ground_literal() {
        // t(x,y) ← r(x,z), r(x,w): both can map onto r(1,10).
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(0), vec![v(0), v(3)]),
            ],
        );
        assert!(subsumes_both(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
    }

    #[test]
    fn repeated_var_within_one_literal_is_checked() {
        // t(x,y) ← r(z,z): no ground r-literal has equal args.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(2), v(2)])],
        );
        assert!(!subsumes_both(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
        // With r(7,7) present it covers.
        let ground = GroundClause::new(
            Example::new(RelId(9), vec![c(1), c(2)]),
            vec![glit(0, &[1, 10]), glit(0, &[7, 7])],
        );
        assert!(subsumes_both(&clause, &ground, &SubsumeConfig::default()));
    }

    #[test]
    fn wrong_relation_or_arity_in_head_fails_fast() {
        let clause = Clause::new(Literal::new(RelId(8), vec![v(0), v(1)]), vec![]);
        assert!(!subsumes_both(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
        let clause = Clause::new(Literal::new(RelId(9), vec![v(0)]), vec![]);
        assert!(!subsumes_both(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
    }

    #[test]
    fn empty_body_always_covers_matching_head() {
        let clause = Clause::new(Literal::new(RelId(9), vec![v(0), v(1)]), vec![]);
        assert!(subsumes_both(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
    }

    /// A complete (non-cutoff) search answers exactly like brute force on a
    /// moderately tricky instance with multiple candidates per literal.
    #[test]
    fn finds_solution_requiring_backtracking() {
        // ground body: r(1,a) for a in {3,4,5}, s(4).
        // clause: t(x,y) ← r(x,z), s(z). Only z = 4 works; MRV picks s first,
        // but the search may try r's candidates first.
        let ground = GroundClause::new(
            Example::new(RelId(9), vec![c(1), c(2)]),
            vec![
                glit(0, &[1, 3]),
                glit(0, &[1, 4]),
                glit(0, &[1, 5]),
                glit(1, &[4]),
            ],
        );
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(1), vec![v(2)]),
            ],
        );
        assert!(subsumes_both(&clause, &ground, &SubsumeConfig::default()));
    }

    #[test]
    fn absent_constant_refutes_immediately() {
        // A `#`-literal whose constant never occurs in the ground BC makes
        // the static candidate list empty — must answer false without search.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(0), Term::Const(c(777))])],
        );
        let cfg = SubsumeConfig {
            node_limit: 0, // no search budget at all
            max_restarts: 0,
        };
        assert!(!subsumes_both(&clause, &chain_ground(), &cfg));
    }

    #[test]
    fn forward_checking_detects_dead_ends() {
        // r(x,z) with z then required by s(z): binding z to a value with no
        // s-literal must be pruned by forward checking, still finding the
        // valid assignment.
        let ground = GroundClause::new(
            Example::new(RelId(9), vec![c(1), c(2)]),
            vec![
                glit(0, &[1, 3]),
                glit(0, &[1, 4]),
                glit(0, &[1, 5]),
                glit(0, &[1, 6]),
                glit(1, &[6]),
            ],
        );
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(1), vec![v(2)]),
            ],
        );
        assert!(subsumes_both(&clause, &ground, &SubsumeConfig::default()));
    }

    #[test]
    fn shared_variable_across_distant_literals() {
        // The same variable in literals of different relations must stay
        // consistent through the domain-maintenance machinery.
        let good = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(1), vec![v(2)]),
            ],
        );
        assert!(subsumes_both(
            &good,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
    }

    #[test]
    fn tight_budget_gives_up_not_wrong_answer() {
        // With a 1-node limit the search must answer false (approximation),
        // never panic or loop.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(0), vec![v(2), v(1)]),
            ],
        );
        let cfg = SubsumeConfig {
            node_limit: 1,
            max_restarts: 1,
        };
        // Either true (found fast) or false (budget) — just must terminate.
        for e in ENGINES {
            let _ = theta_subsumes_with(e, &clause, &chain_ground(), &cfg);
        }
    }

    /// The answer is a pure function of `(clause, ground, cfg)`: repeated
    /// calls — in any interleaving with other tests — agree. This is the
    /// regression test for the seed-stability gap: the engine used to draw
    /// restart permutations from the *caller's* RNG, so internal ordering
    /// changes shifted every downstream sample.
    #[test]
    fn answers_are_engine_order_independent() {
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(0), vec![v(2), v(1)]),
                Literal::new(RelId(1), vec![v(2)]),
            ],
        );
        let other = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(1), vec![v(2)])],
        );
        let cfg = SubsumeConfig::default();
        for e in ENGINES {
            let alone = theta_subsumes_with(e, &clause, &chain_ground(), &cfg);
            // Interleave unrelated tests; the answer must not move.
            for _ in 0..5 {
                let _ = theta_subsumes_with(e, &other, &chain_ground(), &cfg);
            }
            assert_eq!(
                theta_subsumes_with(e, &clause, &chain_ground(), &cfg),
                alone
            );
        }
    }

    /// Multi-component clause: two independent chains that must both be
    /// witnessed. Decomposition solves them separately; the answer matches
    /// the conjunction.
    #[test]
    fn decomposition_requires_every_component() {
        // t(x,y) ← r(x,z), s(z), r(w,u), s(u): second chain shares no
        // non-head variable with the first.
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(1), vec![v(2)]),
                Literal::new(RelId(0), vec![v(3), v(4)]),
                Literal::new(RelId(1), vec![v(4)]),
            ],
        );
        assert!(subsumes_both(
            &clause,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
        // Remove the s-literal the second chain needs → not covered.
        let ground = GroundClause::new(
            Example::new(RelId(9), vec![c(1), c(2)]),
            vec![glit(0, &[1, 10]), glit(0, &[10, 2])],
        );
        assert!(!subsumes_both(&clause, &ground, &SubsumeConfig::default()));
    }

    #[test]
    fn engine_selection_reads_env() {
        // Not set / unknown → bitset; "legacy" → legacy. (Uses a save/restore
        // rather than a lock: this is the only test in this binary touching
        // AUTOBIAS_SUBSUME.)
        let saved = std::env::var("AUTOBIAS_SUBSUME").ok();
        std::env::remove_var("AUTOBIAS_SUBSUME");
        assert_eq!(subsume_engine(), SubsumeEngine::Bitset);
        std::env::set_var("AUTOBIAS_SUBSUME", "legacy");
        assert_eq!(subsume_engine(), SubsumeEngine::Legacy);
        std::env::set_var("AUTOBIAS_SUBSUME", "bitset");
        assert_eq!(subsume_engine(), SubsumeEngine::Bitset);
        match saved {
            Some(v) => std::env::set_var("AUTOBIAS_SUBSUME", v),
            None => std::env::remove_var("AUTOBIAS_SUBSUME"),
        }
    }

    #[test]
    fn domain_words_counter_moves() {
        let before = crate::instrument::SUBSUME_DOMAIN_WORDS.get();
        let clause = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(1), vec![v(2)]),
            ],
        );
        assert!(theta_subsumes_with(
            SubsumeEngine::Bitset,
            &clause,
            &chain_ground(),
            &SubsumeConfig::default()
        ));
        assert!(crate::instrument::SUBSUME_DOMAIN_WORDS.get() > before);
    }
}
