//! Canonical clause forms for coverage memoization.
//!
//! The coverage cache ([`crate::coverage::CoverageEngine`]) keys its memo
//! table on a *canonical form* of each candidate clause, so α-equivalent
//! candidates — the same clause up to variable renaming and body-literal
//! reordering — share one cache entry. armg produces such duplicates
//! constantly: different beam members generalized toward different sample
//! examples frequently collapse to the same clause, and seeds whose bottom
//! clauses enumerate the same neighbourhood in different orders produce
//! reordered copies.
//!
//! ## The chosen normal form
//!
//! [`canonical_form`] returns an actual [`Clause`] (not just a hash), built
//! in three steps:
//!
//! 1. **Color refinement.** Every variable gets a color. Head variables
//!    start colored by their first head position (the head binding makes
//!    them semantically distinct); body-only variables start uniform.
//!    Colors are then refined Weisfeiler–Leman-style: each round, a
//!    literal's signature is its relation plus the colors/constants at each
//!    argument position, and a variable's new color folds in the sorted
//!    multiset of `(literal signature, position)` pairs it occurs at.
//!    Rounds repeat until the color partition stops splitting.
//! 2. **Individualization.** If a color class still holds several variables
//!    (symmetric occurrences), the class with the smallest color is split by
//!    individualizing the member whose refined result yields the
//!    lexicographically smallest global signature, then re-refining. Each
//!    step makes at least one more variable unique, so at most `V` steps run.
//! 3. **Rewrite.** Body literals are sorted by their final signature and
//!    variables renumbered densely by first occurrence (head first, then the
//!    sorted body).
//!
//! ## Soundness vs. completeness
//!
//! Cache *soundness* needs only one direction: clauses with **equal**
//! canonical forms must have identical coverage. That holds trivially —
//! equal canonical forms are literally the same clause, and coverage is
//! invariant under α-equivalence. The converse (every α-equivalent pair
//! collapsing to one form) is best-effort: color refinement cannot separate
//! some pathological automorphism-free symmetric structures, and an
//! unseparated tie falls back to input order. Such cases cost a cache miss,
//! never a wrong answer. For the head-connected, mostly-tree-shaped clauses
//! armg produces, refinement separates everything in practice.

use crate::clause::{Clause, Term, VarId};
use relstore::FxHashMap;
use std::hash::{Hash, Hasher};

/// SplitMix64-style mix used to combine structural features into colors.
/// Not exposed; only relative equality of colors matters, never stability
/// across processes.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Tag values keeping constants, variables, and structural roles from
/// colliding in the mix.
const TAG_CONST: u64 = 0x5151;
const TAG_VAR: u64 = 0xA7A7;
const TAG_HEAD: u64 = 0xC3C3;
const TAG_INDIV: u64 = 0xD1B5_4A32_D192_ED03;

/// Cap on individualization trials (class-member refinements) per clause.
/// Trial counts are isomorphism-invariant (class sizes are), so α-variants
/// hit — or don't hit — this cap together.
const MAX_INDIV_TRIALS: usize = 64;

/// Occurrences of each variable: `(body literal index, argument position)`.
/// Head occurrences are folded into the initial colors instead.
fn occurrences(clause: &Clause, num_vars: usize) -> Vec<Vec<(u32, u32)>> {
    let mut occ: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_vars];
    for (li, lit) in clause.body.iter().enumerate() {
        for (pos, t) in lit.args.iter().enumerate() {
            if let Term::Var(v) = t {
                occ[v.index()].push((li as u32, pos as u32));
            }
        }
    }
    occ
}

/// Signature of one body literal under the current variable coloring.
fn literal_sig(clause: &Clause, li: usize, colors: &[u64]) -> u64 {
    let lit = &clause.body[li];
    let mut h = mix(TAG_VAR.wrapping_add(1), lit.rel.0 as u64);
    for t in lit.args.iter() {
        h = match *t {
            Term::Const(c) => mix(h, mix(TAG_CONST, c.0 as u64)),
            Term::Var(v) => mix(h, mix(TAG_VAR, colors[v.index()])),
        };
    }
    h
}

/// One full refinement pass to a fixpoint of the color *partition* (values
/// keep churning each round; refinement stops when the grouping of
/// variables into equal-color classes stops changing). The stop condition
/// must be an isomorphism invariant — the number of rounds run feeds the
/// final color values, and α-variants must execute the same count — so
/// partitions are compared as first-occurrence class labelings, never by
/// color-value order.
fn refine(clause: &Clause, colors: &mut [u64], occ: &[Vec<(u32, u32)>], used: &[bool]) {
    let num_vars = colors.len();
    let mut prev_classes = partition_labels(colors, used);
    for _round in 0..num_vars.max(2) {
        let sigs: Vec<u64> = (0..clause.body.len())
            .map(|li| literal_sig(clause, li, colors))
            .collect();
        let mut next = vec![0u64; num_vars];
        for (v, slots) in occ.iter().enumerate() {
            let mut feats: Vec<u64> = slots
                .iter()
                .map(|&(li, pos)| mix(sigs[li as usize], pos as u64))
                .collect();
            feats.sort_unstable();
            let mut h = colors[v];
            for f in feats {
                h = mix(h, f);
            }
            next[v] = h;
        }
        colors.copy_from_slice(&next);
        let classes = partition_labels(colors, used);
        if classes == prev_classes {
            return;
        }
        prev_classes = classes;
    }
}

/// Labels each **used** variable's color class by first occurrence in index
/// order, so two colorings compare equal iff they induce the same
/// *partition* of the clause's variables — independent of the color values
/// themselves (which churn every round) and of unused id-range gaps (which
/// would otherwise make the round count, and thus the final colors, depend
/// on how the input happened to number its variables).
fn partition_labels(colors: &[u64], used: &[bool]) -> Vec<u32> {
    let mut label_of: FxHashMap<u64, u32> = FxHashMap::default();
    colors
        .iter()
        .zip(used)
        .filter(|&(_, &u)| u)
        .map(|(&c, _)| {
            let next = label_of.len() as u32;
            *label_of.entry(c).or_insert(next)
        })
        .collect()
}

/// Global structural signature under a coloring: the sorted body-literal
/// signatures. Used to pick the individualization branch deterministically.
fn global_sig(clause: &Clause, colors: &[u64]) -> Vec<u64> {
    let mut sigs: Vec<u64> = (0..clause.body.len())
        .map(|li| literal_sig(clause, li, colors))
        .collect();
    sigs.sort_unstable();
    sigs
}

/// Returns the canonical form of `clause`: body literals in normal-form
/// order, variables renumbered densely by first occurrence (head variables
/// first). α-equivalent clauses map to equal canonical forms whenever color
/// refinement separates their variables (always, for the clause shapes armg
/// produces); the result is always a genuine α-variant of the input, so
/// using it in place of the input never changes coverage semantics.
pub fn canonical_form(clause: &Clause) -> Clause {
    let num_vars = clause.num_vars() as usize;
    let occ = occurrences(clause, num_vars);
    let mut used = vec![false; num_vars];
    for (v, slots) in occ.iter().enumerate() {
        used[v] = !slots.is_empty();
    }
    for v in clause.head.vars() {
        used[v.index()] = true;
    }

    // Initial colors: head variables by first head position, body-only
    // variables uniform, unused ids parked on a sentinel.
    let mut colors = vec![mix(TAG_VAR, 0); num_vars];
    for (pos, t) in clause.head.args.iter().enumerate() {
        if let Term::Var(v) = t {
            if colors[v.index()] == mix(TAG_VAR, 0) {
                colors[v.index()] = mix(TAG_HEAD, pos as u64);
            }
        }
    }
    refine(clause, &mut colors, &occ, &used);

    // Individualize remaining ties. Each pass makes one more variable
    // unique, so the loop is bounded by the variable count; the trial
    // budget caps pathological all-symmetric clauses (exceeding it only
    // costs canonicalization completeness — a cache miss, never a wrong
    // answer).
    let mut trials = 0usize;
    for _ in 0..num_vars {
        let mut classes: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        for (v, &c) in colors.iter().enumerate() {
            if used[v] {
                classes.entry(c).or_default().push(v);
            }
        }
        let Some((_, members)) = classes
            .into_iter()
            .filter(|(_, m)| m.len() > 1)
            .min_by_key(|&(c, _)| c)
        else {
            break;
        };
        trials += members.len();
        if trials > MAX_INDIV_TRIALS {
            break;
        }
        let mut best: Option<(Vec<u64>, Vec<u64>)> = None;
        for &v in &members {
            let mut trial = colors.clone();
            trial[v] = mix(trial[v], TAG_INDIV);
            refine(clause, &mut trial, &occ, &used);
            let sig = global_sig(clause, &trial);
            if best.as_ref().is_none_or(|(bs, _)| sig < *bs) {
                best = Some((sig, trial));
            }
        }
        colors = best.expect("tied class is non-empty").1;
    }

    // Order body literals by final signature; a stable sort keeps genuine
    // duplicates (and the ultra-rare unresolved tie) in input order.
    let mut order: Vec<usize> = (0..clause.body.len()).collect();
    let sigs: Vec<u64> = (0..clause.body.len())
        .map(|li| literal_sig(clause, li, &colors))
        .collect();
    order.sort_by_key(|&li| sigs[li]);

    // Renumber densely: head argument order first, then sorted-body
    // first-occurrence order.
    let mut map: FxHashMap<VarId, VarId> = FxHashMap::default();
    let mut next = 0u32;
    let mut renamed = |t: &Term, map: &mut FxHashMap<VarId, VarId>| match *t {
        Term::Const(c) => Term::Const(c),
        Term::Var(v) => Term::Var(*map.entry(v).or_insert_with(|| {
            let nv = VarId(next);
            next += 1;
            nv
        })),
    };
    let head = crate::clause::Literal::new(
        clause.head.rel,
        clause
            .head
            .args
            .iter()
            .map(|t| renamed(t, &mut map))
            .collect::<Vec<_>>(),
    );
    let body = order
        .into_iter()
        .map(|li| {
            let lit = &clause.body[li];
            crate::clause::Literal::new(
                lit.rel,
                lit.args
                    .iter()
                    .map(|t| renamed(t, &mut map))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    Clause::new(head, body)
}

/// 64-bit hash of the canonical form — a fingerprint for tests, logging,
/// and quick inequality checks. The memo table itself keys on the full
/// canonical [`Clause`] (hash collisions resolved by `Eq`), so this hash is
/// never trusted for equality.
pub fn canonical_key(clause: &Clause) -> u64 {
    let canon = canonical_form(clause);
    let mut h = relstore::fxhash::FxHasher::default();
    canon.head.hash(&mut h);
    canon.body.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{Literal, Term, VarId};
    use relstore::{Const, RelId};

    fn v(n: u32) -> Term {
        Term::Var(VarId(n))
    }

    fn k(n: u32) -> Term {
        Term::Const(Const(n))
    }

    /// t(x, y) ← r(x, z), s(z, y), u(z)
    fn chain() -> Clause {
        Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(1), vec![v(2), v(1)]),
                Literal::new(RelId(2), vec![v(2)]),
            ],
        )
    }

    #[test]
    fn renamed_variables_hash_equal() {
        // Same clause with every variable id scrambled.
        let renamed = Clause::new(
            Literal::new(RelId(9), vec![v(7), v(3)]),
            vec![
                Literal::new(RelId(0), vec![v(7), v(11)]),
                Literal::new(RelId(1), vec![v(11), v(3)]),
                Literal::new(RelId(2), vec![v(11)]),
            ],
        );
        assert_eq!(canonical_form(&chain()), canonical_form(&renamed));
        assert_eq!(canonical_key(&chain()), canonical_key(&renamed));
    }

    #[test]
    fn reordered_body_hashes_equal() {
        let reordered = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![
                Literal::new(RelId(2), vec![v(2)]),
                Literal::new(RelId(1), vec![v(2), v(1)]),
                Literal::new(RelId(0), vec![v(0), v(2)]),
            ],
        );
        assert_eq!(canonical_form(&chain()), canonical_form(&reordered));
        assert_eq!(canonical_key(&chain()), canonical_key(&reordered));
    }

    #[test]
    fn renamed_and_reordered_hashes_equal() {
        let both = Clause::new(
            Literal::new(RelId(9), vec![v(5), v(2)]),
            vec![
                Literal::new(RelId(1), vec![v(9), v(2)]),
                Literal::new(RelId(2), vec![v(9)]),
                Literal::new(RelId(0), vec![v(5), v(9)]),
            ],
        );
        assert_eq!(canonical_form(&chain()), canonical_form(&both));
    }

    #[test]
    fn different_constants_hash_differently() {
        let with_c1 = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(0), k(10)])],
        );
        let with_c2 = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(0), k(11)])],
        );
        assert_ne!(canonical_form(&with_c1), canonical_form(&with_c2));
        assert_ne!(canonical_key(&with_c1), canonical_key(&with_c2));
    }

    #[test]
    fn different_arity_or_relation_hash_differently() {
        let unary = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(0)])],
        );
        let binary = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(0), v(2)])],
        );
        let other_rel = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(1), vec![v(0)])],
        );
        assert_ne!(canonical_key(&unary), canonical_key(&binary));
        assert_ne!(canonical_key(&unary), canonical_key(&other_rel));
    }

    #[test]
    fn head_variable_roles_are_distinguished() {
        // t(x, y) ← r(x) is NOT α-equivalent to t(x, y) ← r(y): head
        // positions pin the variables.
        let first = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(0)])],
        );
        let second = Clause::new(
            Literal::new(RelId(9), vec![v(0), v(1)]),
            vec![Literal::new(RelId(0), vec![v(1)])],
        );
        assert_ne!(canonical_form(&first), canonical_form(&second));
    }

    #[test]
    fn symmetric_body_variables_are_separated_deterministically() {
        // t(x) ← r(x, a), r(x, b), u(a): a and b start symmetric until u(a)
        // splits them. The two presentation orders must collapse together.
        let one = Clause::new(
            Literal::new(RelId(9), vec![v(0)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(1)]),
                Literal::new(RelId(0), vec![v(0), v(2)]),
                Literal::new(RelId(2), vec![v(1)]),
            ],
        );
        let two = Clause::new(
            Literal::new(RelId(9), vec![v(0)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(5)]),
                Literal::new(RelId(0), vec![v(0), v(4)]),
                Literal::new(RelId(2), vec![v(4)]),
            ],
        );
        assert_eq!(canonical_form(&one), canonical_form(&two));
    }

    #[test]
    fn fully_symmetric_duplicates_collapse() {
        // t(x) ← r(x, a), r(x, b): a and b are truly automorphic; the
        // individualization step must still produce one stable form for
        // both orders.
        let one = Clause::new(
            Literal::new(RelId(9), vec![v(0)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(1)]),
                Literal::new(RelId(0), vec![v(0), v(2)]),
            ],
        );
        let two = Clause::new(
            Literal::new(RelId(9), vec![v(0)]),
            vec![
                Literal::new(RelId(0), vec![v(0), v(8)]),
                Literal::new(RelId(0), vec![v(0), v(3)]),
            ],
        );
        assert_eq!(canonical_form(&one), canonical_form(&two));
    }

    #[test]
    fn canonical_form_is_a_fixpoint_and_alpha_variant() {
        let c = chain();
        let canon = canonical_form(&c);
        // Idempotent.
        assert_eq!(canonical_form(&canon), canon);
        // Same shape: relation multiset and literal count preserved.
        assert_eq!(canon.body.len(), c.body.len());
        let mut rels_a: Vec<u32> = c.body.iter().map(|l| l.rel.0).collect();
        let mut rels_b: Vec<u32> = canon.body.iter().map(|l| l.rel.0).collect();
        rels_a.sort_unstable();
        rels_b.sort_unstable();
        assert_eq!(rels_a, rels_b);
        // Variables are densely renumbered starting from the head.
        assert_eq!(canon.head.args[0], v(0));
        assert_eq!(canon.head.args[1], v(1));
        assert!(canon.num_vars() <= c.num_vars());
    }

    #[test]
    fn ground_literals_and_empty_bodies_work() {
        let ground = Clause::new(
            Literal::new(RelId(9), vec![k(1), k(2)]),
            vec![Literal::new(RelId(0), vec![k(3)])],
        );
        assert_eq!(canonical_form(&ground), ground);
        let empty = Clause::new(Literal::new(RelId(9), vec![v(0), v(1)]), vec![]);
        assert_eq!(canonical_form(&empty), empty);
    }
}
