//! # autobias — scalable relational learning with automatic language bias
//!
//! Reproduction of Picado et al., *Scalable and Usable Relational Learning
//! With Automatic Language Bias* (SIGMOD 2021). The crate provides:
//!
//! - [`bias`] — language-bias representation, the automatic induction of
//!   predicate and mode definitions from database constraints (paper §3),
//!   the Castor/no-constant baselines, and a parser for expert-written bias;
//! - [`bottom`] — bottom-clause construction (Algorithm 2) under four
//!   sampling strategies: full, naïve, random over semi-joins, stratified
//!   (paper §4);
//! - [`subsume`] — randomized-restart θ-subsumption (paper §5);
//! - [`coverage`] — ground-BC reuse for fast coverage testing;
//! - [`generalize`] — the armg operator and beam search (paper §2.3.2);
//! - [`learn`] — the sequential covering learner (Algorithm 1);
//! - [`eval`] — precision/recall/F-measure and k-fold cross validation.
//!
//! ```
//! use autobias::prelude::*;
//! use relstore::Database;
//!
//! // Build a tiny database where advising == co-authorship.
//! let mut db = Database::new();
//! let student = db.add_relation("student", &["stud"]);
//! let professor = db.add_relation("professor", &["prof"]);
//! let publ = db.add_relation("publication", &["title", "person"]);
//! let target = db.add_relation("advisedBy", &["stud", "prof"]);
//! let mut pos = Vec::new();
//! let mut neg = Vec::new();
//! for i in 0..6 {
//!     let (s, p, t) = (format!("s{i}"), format!("f{i}"), format!("paper{i}"));
//!     db.insert(student, &[&s]);
//!     db.insert(professor, &[&p]);
//!     db.insert(publ, &[&t, &s]);
//!     db.insert(publ, &[&t, &p]);
//!     db.insert(target, &[&s, &p]); // target examples live in the db too
//!     let s = db.lookup(&s).unwrap();
//!     let p = db.lookup(&p).unwrap();
//!     let p2 = db.lookup(&format!("f{}", (i + 1) % 6));
//!     pos.push(Example::new(target, vec![s, p]));
//!     if let Some(p2) = p2 { neg.push(Example::new(target, vec![s, p2])); }
//! }
//! db.build_indexes();
//!
//! // Induce the language bias automatically and learn.
//! let (bias, _graph, _stats) =
//!     induce_bias(&db, target, &AutoBiasConfig::default()).unwrap();
//! let learner = Learner::default();
//! let (definition, _) = learner.learn(&db, &bias, &TrainingSet::new(pos, neg));
//! assert!(!definition.is_empty());
//! ```
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod bias;
pub mod bottom;
pub mod canon;
pub mod clause;
pub mod clause_text;
pub mod coverage;
pub mod eval;
pub mod example;
pub mod generalize;
pub mod instrument;
pub mod learn;
pub mod query;
pub mod semijoin_tree;
pub mod subsume;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::bias::aleph::{parse_aleph_bias, render_aleph_bias};
    pub use crate::bias::auto::{induce_bias, AutoBiasConfig, BiasStats, ConstantThreshold};
    pub use crate::bias::baseline::{castor_bias, no_const_bias};
    pub use crate::bias::overlap::overlap_bias;
    pub use crate::bias::parse::parse_bias;
    pub use crate::bias::{ArgMode, LanguageBias, ModeDef, PredDef};
    pub use crate::bottom::{
        build_bottom_clause, BcConfig, BottomClause, GroundClause, GroundLiteral, SamplingStrategy,
    };
    pub use crate::canon::{canonical_form, canonical_key};
    pub use crate::clause::{Clause, Definition, Literal, Term, VarId};
    pub use crate::clause_text::{
        parse_clause, parse_clause_frozen, parse_definition, parse_definition_frozen,
        ClauseParseError,
    };
    pub use crate::coverage::{
        coverage_cache_enabled, worker_threads, Bitset, CoverageEngine, NegCount,
    };
    pub use crate::eval::{cross_validate, evaluate_definition, kfold_splits, CvResult, Metrics};
    pub use crate::example::{parse_arg_tuple, Example, TrainingSet};
    pub use crate::generalize::{
        armg, constraint_pruning_enabled, learn_clause, reduce_clause, ConstraintStore, GenConfig,
    };
    pub use crate::learn::{LearnStats, Learner, LearnerConfig, MinCriterion};
    pub use crate::query::{clause_covers, definition_covers, QueryConfig};
    pub use crate::semijoin_tree::{SemijoinTree, SjNode};
    pub use crate::subsume::{
        subsume_engine, theta_subsumes, theta_subsumes_with, SubsumeConfig, SubsumeEngine,
    };
}
