//! Bottom-clause (BC) construction — paper §2.3.1 (Algorithm 2) and §4.
//!
//! The BC associated with an example `e` is the most specific clause in the
//! hypothesis space covering `e`. Construction BFS-expands from the example's
//! constants: at each of `d` iterations, every mode's `+` attribute is probed
//! with the type-compatible constants discovered in the previous iteration
//! (this is the chain of semi-joins of §4.2.2), and each discovered tuple
//! contributes literals according to the mode definitions.
//!
//! How many tuples each probe keeps is the sampling strategy:
//!
//! - [`SamplingStrategy::Full`] — keep everything (exact Algorithm 2);
//! - [`SamplingStrategy::Naive`] — uniform per-selection sample (§4.1);
//! - [`SamplingStrategy::Random`] — Olken-style accept–reject sampling over
//!   the semi-join, weighting by *existence* of left values rather than
//!   their frequencies (§4.2.3);
//! - [`SamplingStrategy::Stratified`] — Algorithm 4's depth-first stratified
//!   sampling with one stratum per distinct constant-able value (§4.3).

use crate::bias::{ArgMode, LanguageBias};
use crate::clause::{Clause, Literal, Term, VarId};
use crate::example::Example;
use constraints::TypeId;
use rand::seq::SliceRandom;
use rand::Rng;
use relstore::{AttrRef, Const, Database, FxHashMap, FxHashSet, RelId, TupleId};

/// One ground literal: a database tuple as a fact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundLiteral {
    /// Relation symbol.
    pub rel: RelId,
    /// Constant per attribute.
    pub vals: Box<[Const]>,
}

/// A ground bottom clause: the example plus every collected tuple as a ground
/// fact. This is the subsumption target used for coverage testing (paper §5).
#[derive(Debug, Clone)]
pub struct GroundClause {
    /// The example this ground BC belongs to.
    pub example: Example,
    /// Collected ground literals in insertion order.
    pub body: Vec<GroundLiteral>,
    /// Literal indices grouped by relation (built once, used by subsumption).
    by_rel: FxHashMap<RelId, Vec<u32>>,
}

impl GroundClause {
    /// Creates a ground clause and its relation index.
    pub fn new(example: Example, body: Vec<GroundLiteral>) -> Self {
        let mut by_rel: FxHashMap<RelId, Vec<u32>> = FxHashMap::default();
        for (i, lit) in body.iter().enumerate() {
            by_rel.entry(lit.rel).or_default().push(i as u32);
        }
        Self {
            example,
            body,
            by_rel,
        }
    }

    /// Indices of ground literals of relation `rel`.
    pub fn literals_of(&self, rel: RelId) -> &[u32] {
        self.by_rel.get(&rel).map_or(&[], Vec::as_slice)
    }

    /// Number of ground body literals.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}

/// The result of BC construction: the variable-ized clause for generalization
/// and the ground clause for coverage testing, built from one tuple
/// collection pass.
#[derive(Debug, Clone)]
pub struct BottomClause {
    /// The most specific (sampled) clause covering the example.
    pub clause: Clause,
    /// The same collection as ground facts.
    pub ground: GroundClause,
}

/// Tuple-selection strategy during BC construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingStrategy {
    /// Keep every tuple each probe finds (exact Algorithm 2).
    Full,
    /// Uniform random sample of each probe's result (§4.1). The paper's
    /// experiments cap at 20 tuples per mode.
    Naive {
        /// Max tuples kept per (mode, `+`-attribute) probe.
        per_selection: usize,
    },
    /// Accept–reject sampling over the semi-join without materializing it
    /// (§4.2.3, Olken's algorithm adapted to semi-joins).
    Random {
        /// Tuples to accept per probe.
        per_selection: usize,
        /// Attempt budget multiplier: give up after
        /// `per_selection * oversample` draws (the paper's "sufficiently
        /// larger number of samples" guard against rejection chains).
        oversample: usize,
    },
    /// Depth-first stratified sampling (Algorithm 4): one stratum per
    /// distinct value of each constant-able attribute.
    Stratified {
        /// Tuples sampled uniformly per stratum.
        per_stratum: usize,
    },
}

impl SamplingStrategy {
    /// Static regime name, used as the `bc.build` span label.
    pub fn label(&self) -> &'static str {
        match self {
            SamplingStrategy::Full => "full",
            SamplingStrategy::Naive { .. } => "naive",
            SamplingStrategy::Random { .. } => "random",
            SamplingStrategy::Stratified { .. } => "stratified",
        }
    }
}

/// Configuration for BC construction.
#[derive(Debug, Clone, Copy)]
pub struct BcConfig {
    /// Number of expansion iterations `d` (Algorithm 2). Paper Example 2.5
    /// uses `d = 1`; real runs typically use 2–3.
    pub depth: usize,
    /// Tuple-selection strategy.
    pub strategy: SamplingStrategy,
    /// Safety cap on collected tuples — BCs "usually contain hundreds of
    /// literals" (§2.3.2); unrestricted biases (Castor) can explode, which is
    /// exactly the paper's Table 5 "killed by the kernel" row. The cap keeps
    /// the reproduction bounded while preserving the blow-up in time.
    pub max_tuples: usize,
    /// Cap on *body literals* of the variable-ized clause. Each collected
    /// tuple yields one literal per matching mode, so constant-heavy biases
    /// multiply literals well beyond `max_tuples`; generalization over a
    /// clause that large is pointless (armg would drop almost all of it).
    /// Earlier-collected tuples (closest to the example) win.
    pub max_body_literals: usize,
}

impl Default for BcConfig {
    fn default() -> Self {
        Self {
            depth: 2,
            strategy: SamplingStrategy::Naive { per_selection: 20 },
            max_tuples: 5_000,
            max_body_literals: 2_000,
        }
    }
}

/// Internal construction state shared by the strategies.
struct Builder<'a> {
    db: &'a Database,
    bias: &'a LanguageBias,
    cfg: BcConfig,
    /// Collected tuples in insertion order.
    collected: Vec<(RelId, TupleId)>,
    collected_set: FxHashSet<(RelId, TupleId)>,
    /// Constant → its types, accumulated from the attributes it appeared in.
    known: FxHashMap<Const, FxHashSet<TypeId>>,
}

impl<'a> Builder<'a> {
    fn new(db: &'a Database, bias: &'a LanguageBias, cfg: BcConfig) -> Self {
        Self {
            db,
            bias,
            cfg,
            collected: Vec::new(),
            collected_set: FxHashSet::default(),
            known: FxHashMap::default(),
        }
    }

    fn at_capacity(&self) -> bool {
        self.collected.len() >= self.cfg.max_tuples
    }

    /// Records a tuple; returns the constants that gained a *new* type from a
    /// variable-izable attribute (the next BFS frontier contributions).
    fn add_tuple(&mut self, rel: RelId, id: TupleId) -> Vec<(Const, TypeId)> {
        let mut fresh = Vec::new();
        if !self.collected_set.insert((rel, id)) {
            return fresh;
        }
        self.collected.push((rel, id));
        let tuple = self.db.relation(rel).tuple(id).to_vec();
        for (pos, &c) in tuple.iter().enumerate() {
            let attr = AttrRef::new(rel, pos);
            // Only variable-ized constants enter the hash table and drive
            // further expansion (paper §2.3.1).
            if !self.bias.can_be_var(attr) {
                continue;
            }
            let types = self.known.entry(c).or_default();
            for &t in self.bias.types_of(attr) {
                if types.insert(t) {
                    fresh.push((c, t));
                }
            }
        }
        fresh
    }

    /// Seeds the frontier with the example's constants under the target
    /// attribute types.
    fn seed(&mut self, example: &Example) -> Vec<(Const, TypeId)> {
        let mut frontier = Vec::new();
        for (pos, &c) in example.args.iter().enumerate() {
            let attr = AttrRef::new(example.rel, pos);
            let types = self.known.entry(c).or_default();
            for &t in self.bias.types_of(attr) {
                if types.insert(t) {
                    frontier.push((c, t));
                }
            }
        }
        frontier
    }

    /// Probe targets: every (relation, `+` position) pair from the body
    /// modes, deduplicated, in deterministic order.
    fn probe_points(&self) -> Vec<AttrRef> {
        let mut rels: Vec<RelId> = self.bias.body_rels().collect();
        rels.sort_unstable();
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for rel in rels {
            for mode in self.bias.modes_for(rel) {
                for j in mode.plus_positions() {
                    let attr = AttrRef::new(rel, j);
                    if seen.insert(attr) {
                        out.push(attr);
                    }
                }
            }
        }
        out
    }

    /// Frontier constants whose types make them candidates for `attr`.
    fn matching_values(&self, frontier: &[(Const, TypeId)], attr: AttrRef) -> Vec<Const> {
        let attr_types = self.bias.types_of(attr);
        let mut vals: Vec<Const> = frontier
            .iter()
            .filter(|(_, t)| attr_types.contains(t))
            .map(|(c, _)| *c)
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

/// Builds the bottom clause for `example` under `bias`.
///
/// Indexes should be built (`db.build_indexes()`) beforehand; the
/// [`SamplingStrategy::Random`] strategy requires them for its frequency
/// statistics and falls back to naive behaviour on unindexed relations.
pub fn build_bottom_clause<R: Rng>(
    db: &Database,
    bias: &LanguageBias,
    example: &Example,
    cfg: &BcConfig,
    rng: &mut R,
) -> BottomClause {
    crate::instrument::BOTTOM_CLAUSES_BUILT.bump();
    let mut sp = obs::span!("bc.build", cfg.strategy.label());
    let mut walk = WalkStats::default();
    let mut b = Builder::new(db, bias, *cfg);
    let mut frontier = b.seed(example);
    let probes = b.probe_points();

    match cfg.strategy {
        SamplingStrategy::Stratified { per_stratum } => {
            stratified_collect(&mut b, example, per_stratum);
        }
        strategy => {
            for _ in 0..cfg.depth {
                if frontier.is_empty() || b.at_capacity() {
                    break;
                }
                let mut next_frontier = Vec::new();
                for &attr in &probes {
                    if b.at_capacity() {
                        break;
                    }
                    let vals = b.matching_values(&frontier, attr);
                    if vals.is_empty() {
                        continue;
                    }
                    let picked = match strategy {
                        SamplingStrategy::Full => select_all(&b, attr, &vals),
                        SamplingStrategy::Naive { per_selection } => {
                            let mut ids = select_all(&b, attr, &vals);
                            if ids.len() > per_selection {
                                ids.shuffle(rng);
                                ids.truncate(per_selection);
                            }
                            ids
                        }
                        SamplingStrategy::Random {
                            per_selection,
                            oversample,
                        } => olken_semijoin_sample(
                            &b,
                            attr,
                            &vals,
                            per_selection,
                            oversample,
                            rng,
                            &mut walk,
                        ),
                        SamplingStrategy::Stratified { .. } => unreachable!(),
                    };
                    for id in picked {
                        if b.at_capacity() {
                            break;
                        }
                        next_frontier.extend(b.add_tuple(attr.rel, id));
                    }
                }
                frontier = next_frontier;
            }
        }
    }

    let bc = emit(&b, example);
    if sp.is_active() {
        sp.note("tuples", b.collected.len() as u64);
        sp.note("body_literals", bc.clause.body.len() as u64);
        if walk.draws > 0 {
            sp.note("walk_draws", walk.draws);
            sp.note("walk_accepted", walk.accepted);
        }
    }
    crate::instrument::BC_WALK_DRAWS.add(walk.draws);
    crate::instrument::BC_WALK_ACCEPTED.add(walk.accepted);
    bc
}

/// Accept–reject walk tally for one bottom clause (exported as span notes
/// and the `autobias_core_bc_walk_*` counters; rejected = draws − accepted,
/// counting empty-lookup draws as rejections).
#[derive(Debug, Clone, Copy, Default)]
struct WalkStats {
    draws: u64,
    accepted: u64,
}

/// σ_{attr ∈ vals}: all matching tuple ids (Full / Naive path).
fn select_all(b: &Builder<'_>, attr: AttrRef, vals: &[Const]) -> Vec<TupleId> {
    let set: FxHashSet<Const> = vals.iter().copied().collect();
    relstore::algebra::select_in(b.db, attr, &set)
}

/// The §4.2.3 accept–reject sampler over the semi-join `{vals} ⋊ R`:
/// pick a value `a` uniformly from the distinct left values, pick a tuple
/// uniformly among those with `R[B] = a`, accept with probability
/// `m(a) / M`. Repeats until `want` tuples are accepted or the attempt
/// budget (`want × oversample`) is exhausted.
fn olken_semijoin_sample<R: Rng>(
    b: &Builder<'_>,
    attr: AttrRef,
    vals: &[Const],
    want: usize,
    oversample: usize,
    rng: &mut R,
    walk: &mut WalkStats,
) -> Vec<TupleId> {
    let rel = b.db.relation(attr.rel);
    let Some(idx) = rel.index(attr.pos as usize) else {
        // No statistics available: degrade to naive uniform sampling.
        let mut ids = select_all(b, attr, vals);
        if ids.len() > want {
            ids.shuffle(rng);
            ids.truncate(want);
        }
        return ids;
    };
    let max_freq = idx.max_freq();
    if max_freq == 0 || vals.is_empty() {
        return Vec::new();
    }
    let budget = want.saturating_mul(oversample.max(1)).max(want);
    let mut out = Vec::with_capacity(want);
    let mut seen = FxHashSet::default();
    for _ in 0..budget {
        if out.len() >= want {
            break;
        }
        walk.draws += 1;
        let a = vals[rng.random_range(0..vals.len())];
        let ts = idx.lookup(a);
        if ts.is_empty() {
            continue;
        }
        let t = ts[rng.random_range(0..ts.len())];
        // Accept with probability m(a)/M — this corrects for having selected
        // the *value* uniformly, yielding a uniform sample of the semi-join
        // result (Proposition 4.2).
        let accept = ts.len() as f64 / max_freq as f64;
        if rng.random_range(0.0..1.0) < accept && seen.insert(t) {
            walk.accepted += 1;
            out.push(t);
        }
    }
    out
}

/// Algorithm 4: depth-first stratified collection. The recursion keeps, at
/// every level, only the parent tuples that join the sampled child tuples,
/// and unions the child samples themselves into the result (the union is
/// implicit in the paper's pseudocode).
fn stratified_collect(b: &mut Builder<'_>, example: &Example, per_stratum: usize) {
    // Deterministic xorshift for stratum sampling; Algorithm 4 does not need
    // statistics, and determinism here makes tests reproducible.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let probes = b.probe_points();
    for (pos, &c) in example.args.iter().enumerate() {
        let attr = AttrRef::new(example.rel, pos);
        let types: Vec<TypeId> = b.bias.types_of(attr).to_vec();
        for &probe in &probes {
            let probe_types = b.bias.types_of(probe);
            if !types.iter().any(|t| probe_types.contains(t)) {
                continue;
            }
            let mut vals = FxHashSet::default();
            vals.insert(c);
            strat_rec(b, &probes, probe, &vals, 1, per_stratum, &mut next);
        }
    }
}

/// Recursive step of Algorithm 4. Returns the tuple ids of `probe.rel` kept
/// at this level (already recorded in the builder).
fn strat_rec(
    b: &mut Builder<'_>,
    probes: &[AttrRef],
    probe: AttrRef,
    values: &FxHashSet<Const>,
    depth: usize,
    per_stratum: usize,
    rng: &mut impl FnMut() -> u64,
) -> Vec<TupleId> {
    if b.at_capacity() || values.is_empty() {
        return Vec::new();
    }
    let i_r = relstore::algebra::select_in(b.db, probe, values);
    if i_r.is_empty() {
        return Vec::new();
    }

    let kept: Vec<TupleId> = if depth >= b.cfg.depth.max(1) {
        sample_strata(b, probe.rel, &i_r, per_stratum, rng)
    } else {
        let arity = b.db.catalog().schema(probe.rel).arity();
        let mut kept = FxHashSet::default();
        let mut expanded = false;
        for out_pos in 0..arity {
            if out_pos == probe.pos as usize {
                continue;
            }
            let out_attr = AttrRef::new(probe.rel, out_pos);
            if !b.bias.can_be_var(out_attr) {
                continue;
            }
            let out_types = b.bias.types_of(out_attr);
            let out_vals: FxHashSet<Const> = i_r
                .iter()
                .map(|&id| b.db.relation(probe.rel).tuple(id)[out_pos])
                .collect();
            for &child in probes {
                if child == probe {
                    continue;
                }
                let child_types = b.bias.types_of(child);
                if !out_types.iter().any(|t| child_types.contains(t)) {
                    continue;
                }
                expanded = true;
                let child_kept =
                    strat_rec(b, probes, child, &out_vals, depth + 1, per_stratum, rng);
                if child_kept.is_empty() {
                    continue;
                }
                // Values of the child's join attribute among its kept tuples.
                let joined: FxHashSet<Const> = child_kept
                    .iter()
                    .map(|&id| b.db.relation(child.rel).tuple(id)[child.pos as usize])
                    .collect();
                for &id in &i_r {
                    if joined.contains(&b.db.relation(probe.rel).tuple(id)[out_pos]) {
                        kept.insert(id);
                    }
                }
            }
        }
        if !expanded {
            sample_strata(b, probe.rel, &i_r, per_stratum, rng)
        } else if kept.is_empty() {
            // Children sampled nothing joinable; keep a stratum sample of
            // this level so the example's own neighbourhood is represented.
            sample_strata(b, probe.rel, &i_r, per_stratum, rng)
        } else {
            let mut v: Vec<TupleId> = kept.into_iter().collect();
            v.sort_unstable();
            v
        }
    };

    for &id in &kept {
        if b.at_capacity() {
            break;
        }
        b.add_tuple(probe.rel, id);
    }
    kept
}

/// Samples `per_stratum` tuples from every stratum of `ids`: one stratum per
/// distinct value of each constant-able attribute, or a single stratum when
/// the relation has none (§4.3.2).
fn sample_strata(
    b: &Builder<'_>,
    rel: RelId,
    ids: &[TupleId],
    per_stratum: usize,
    rng: &mut impl FnMut() -> u64,
) -> Vec<TupleId> {
    let arity = b.db.catalog().schema(rel).arity();
    let const_positions: Vec<usize> = (0..arity)
        .filter(|&p| b.bias.can_be_const(AttrRef::new(rel, p)))
        .collect();

    let mut uniform = |pool: &[TupleId], want: usize, out: &mut Vec<TupleId>| {
        if pool.len() <= want {
            out.extend_from_slice(pool);
        } else {
            // Floyd-style distinct sampling with the xorshift stream.
            let mut picked = FxHashSet::default();
            while picked.len() < want {
                picked.insert(pool[(rng() % pool.len() as u64) as usize]);
            }
            out.extend(picked);
        }
    };

    let mut out = Vec::new();
    if const_positions.is_empty() {
        uniform(ids, per_stratum, &mut out);
    } else {
        for &p in &const_positions {
            let mut strata: FxHashMap<Const, Vec<TupleId>> = FxHashMap::default();
            for &id in ids {
                strata
                    .entry(b.db.relation(rel).tuple(id)[p])
                    .or_default()
                    .push(id);
            }
            let mut keys: Vec<Const> = strata.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                uniform(&strata[&k], per_stratum, &mut out);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Turns the collected tuples into the variable-ized clause and the ground
/// clause.
fn emit(b: &Builder<'_>, example: &Example) -> BottomClause {
    let mut var_of: FxHashMap<Const, VarId> = FxHashMap::default();
    let mut next_var = 0u32;
    let mut var = |c: Const, var_of: &mut FxHashMap<Const, VarId>| {
        *var_of.entry(c).or_insert_with(|| {
            let v = VarId(next_var);
            next_var += 1;
            v
        })
    };

    // Head: every example constant becomes a variable (repeated constants
    // share one).
    let head_args: Vec<Term> = example
        .args
        .iter()
        .map(|&c| Term::Var(var(c, &mut var_of)))
        .collect();
    let head = Literal::new(example.rel, head_args);
    let ground_head = example.clone();

    let mut body = Vec::new();
    let mut body_seen = FxHashSet::default();
    let mut ground_body = Vec::new();

    for &(rel, id) in &b.collected {
        let tuple = b.db.relation(rel).tuple(id);
        ground_body.push(GroundLiteral {
            rel,
            vals: tuple.into(),
        });
        if body.len() >= b.cfg.max_body_literals {
            continue;
        }
        for mode in b.bias.modes_for(rel) {
            if body.len() >= b.cfg.max_body_literals {
                break;
            }
            let args: Vec<Term> = tuple
                .iter()
                .zip(&mode.args)
                .map(|(&c, m)| match m {
                    ArgMode::Hash => Term::Const(c),
                    ArgMode::Plus | ArgMode::Minus => Term::Var(var(c, &mut var_of)),
                })
                .collect();
            let lit = Literal::new(rel, args);
            if body_seen.insert(lit.clone()) {
                body.push(lit);
            }
        }
    }

    BottomClause {
        clause: Clause::new(head, body),
        ground: GroundClause::new(ground_head, ground_body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::parse::parse_bias;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use relstore::fixtures::uw_fragment;

    const UW_BIAS: &str = "
pred student(T1)
pred inPhase(T1, T2)
pred professor(T3)
pred hasPosition(T3, T4)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)

mode student(+)
mode inPhase(+, -)
mode inPhase(+, #)
mode professor(+)
mode hasPosition(+, -)
mode publication(-, +)
";

    fn setup() -> (Database, RelId, LanguageBias, Example) {
        let mut db = uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        let juan = db.intern("juan");
        let sarita = db.intern("sarita");
        db.build_indexes();
        let bias = parse_bias(&db, target, UW_BIAS).unwrap();
        let example = Example::new(target, vec![juan, sarita]);
        (db, target, bias, example)
    }

    /// Reproduces Example 2.5 exactly: with d = 1 and the Table 3 bias, the
    /// BC for advisedBy(juan, sarita) has precisely the 7 literals the paper
    /// prints.
    #[test]
    fn example_2_5_bottom_clause() {
        let (db, _, bias, example) = setup();
        let cfg = BcConfig {
            depth: 1,
            strategy: SamplingStrategy::Full,
            max_body_literals: 100_000,
            max_tuples: 1000,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let bc = build_bottom_clause(&db, &bias, &example, &cfg, &mut rng);

        let rendered: Vec<String> = bc.clause.body.iter().map(|l| l.render(&db)).collect();
        let expected_count = 7;
        assert_eq!(
            bc.clause.len(),
            expected_count,
            "got literals: {rendered:?}"
        );
        // Structural spot checks matching the paper's clause.
        assert!(rendered.contains(&"student(x)".to_string()));
        assert!(rendered.contains(&"professor(y)".to_string()));
        assert!(rendered
            .iter()
            .any(|l| l.starts_with("inPhase(x, post_quals")));
        // Co-authorship: the same publication variable links x and y.
        let pub_lits: Vec<&String> = rendered
            .iter()
            .filter(|l| l.starts_with("publication("))
            .collect();
        assert_eq!(pub_lits.len(), 2);
        let var_of = |s: &str| {
            s["publication(".len()..]
                .split(',')
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(var_of(pub_lits[0]), var_of(pub_lits[1]));
    }

    #[test]
    fn ground_clause_matches_collection() {
        let (db, _, bias, example) = setup();
        let cfg = BcConfig {
            depth: 1,
            strategy: SamplingStrategy::Full,
            max_body_literals: 100_000,
            max_tuples: 1000,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let bc = build_bottom_clause(&db, &bias, &example, &cfg, &mut rng);
        // 6 tuples: student(juan), professor(sarita), inPhase(juan,·),
        // hasPosition(sarita,·), publication(p1,juan), publication(p1,sarita).
        assert_eq!(bc.ground.len(), 6);
        let publ = db.rel_id("publication").unwrap();
        assert_eq!(bc.ground.literals_of(publ).len(), 2);
    }

    #[test]
    fn depth_2_reaches_coauthors() {
        // At d = 2 the expansion crosses publication to reach john? No:
        // p1's authors are juan and sarita only; john is on p2, unreachable.
        // But inPhase(john, post_quals) IS reachable? No — post_quals is in a
        // `-`/`#` attribute of type T2, and no + mode probes T2. The
        // reachable set at d = 2 equals d = 1 here except via publication
        // titles: publication(-,+) probes person only, so p1 (type T5)
        // cannot be probed either. The BC is stable.
        let (db, _, bias, example) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let d1 = build_bottom_clause(
            &db,
            &bias,
            &example,
            &BcConfig {
                depth: 1,
                strategy: SamplingStrategy::Full,
                max_body_literals: 100_000,
                max_tuples: 1000,
            },
            &mut rng,
        );
        let d2 = build_bottom_clause(
            &db,
            &bias,
            &example,
            &BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_body_literals: 100_000,
                max_tuples: 1000,
            },
            &mut rng,
        );
        assert_eq!(d1.ground.len(), d2.ground.len());
    }

    #[test]
    fn title_probing_mode_extends_reach() {
        // Adding mode publication(+, -) lets the expansion hop p1 → sarita
        // (already present) and, crucially, probe titles.
        let (db, target, _, example) = setup();
        let bias =
            parse_bias(&db, target, &format!("{UW_BIAS}\nmode publication(+, -)\n")).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let bc = build_bottom_clause(
            &db,
            &bias,
            &example,
            &BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_body_literals: 100_000,
                max_tuples: 1000,
            },
            &mut rng,
        );
        assert_eq!(bc.ground.len(), 6); // same tuples, found via both directions
    }

    #[test]
    fn naive_sampling_caps_selection() {
        let (db, _, bias, example) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let bc = build_bottom_clause(
            &db,
            &bias,
            &example,
            &BcConfig {
                depth: 1,
                strategy: SamplingStrategy::Naive { per_selection: 1 },
                max_body_literals: 100_000,
                max_tuples: 1000,
            },
            &mut rng,
        );
        // publication probe may keep only 1 of its 2 tuples.
        let publ = db.rel_id("publication").unwrap();
        assert!(bc.ground.literals_of(publ).len() <= 1);
    }

    #[test]
    fn random_sampling_stays_within_reachable_set() {
        let (db, _, bias, example) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let full = build_bottom_clause(
            &db,
            &bias,
            &example,
            &BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_body_literals: 100_000,
                max_tuples: 1000,
            },
            &mut rng,
        );
        let full_set: FxHashSet<GroundLiteral> = full.ground.body.iter().cloned().collect();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let sampled = build_bottom_clause(
                &db,
                &bias,
                &example,
                &BcConfig {
                    depth: 2,
                    strategy: SamplingStrategy::Random {
                        per_selection: 2,
                        oversample: 10,
                    },
                    max_body_literals: 100_000,
                    max_tuples: 1000,
                },
                &mut rng,
            );
            for lit in &sampled.ground.body {
                assert!(full_set.contains(lit), "sampled a non-reachable tuple");
            }
        }
    }

    #[test]
    fn stratified_covers_every_constant_stratum() {
        // inPhase[phase] is constant-able; the stratified sample must keep at
        // least one tuple per distinct reachable phase value.
        let (db, _, bias, example) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let bc = build_bottom_clause(
            &db,
            &bias,
            &example,
            &BcConfig {
                depth: 1,
                strategy: SamplingStrategy::Stratified { per_stratum: 1 },
                max_body_literals: 100_000,
                max_tuples: 1000,
            },
            &mut rng,
        );
        let phase_rel = db.rel_id("inPhase").unwrap();
        // juan's only phase tuple must be present (one stratum: post_quals).
        assert_eq!(bc.ground.literals_of(phase_rel).len(), 1);
        // And the co-authorship tuples survive stratification.
        let publ = db.rel_id("publication").unwrap();
        assert!(!bc.ground.literals_of(publ).is_empty());
    }

    #[test]
    fn max_tuples_caps_collection() {
        let (db, _, bias, example) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let bc = build_bottom_clause(
            &db,
            &bias,
            &example,
            &BcConfig {
                depth: 3,
                strategy: SamplingStrategy::Full,
                max_body_literals: 100_000,
                max_tuples: 2,
            },
            &mut rng,
        );
        assert!(bc.ground.len() <= 2);
    }

    #[test]
    fn repeated_example_constants_share_head_variable() {
        let (db, target, bias, _) = setup();
        let juan = db.lookup("juan").unwrap();
        let example = Example::new(target, vec![juan, juan]);
        let mut rng = StdRng::seed_from_u64(0);
        let bc = build_bottom_clause(&db, &bias, &example, &BcConfig::default(), &mut rng);
        assert_eq!(bc.clause.head.args[0], bc.clause.head.args[1]);
    }
}
