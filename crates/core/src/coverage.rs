//! Coverage testing (paper §5): ground bottom clauses are built **once** per
//! training example (with the same sampling strategy as BC construction) and
//! reused for every candidate clause during generalization, replacing
//! hundred-join SQL queries with θ-subsumption tests.
//!
//! On top of the raw per-example tests sits the **coverage cache and
//! monotone scoring layer** (DESIGN.md §10):
//!
//! - every batch entry point ([`CoverageEngine::covered_pos_mask`],
//!   [`CoverageEngine::count_neg_budget`], …) first rewrites the candidate to
//!   its canonical form ([`crate::canon`]) so α-equivalent armg duplicates
//!   share one memo entry — and, crucially, one *answer*: θ-subsumption is
//!   approximate and its randomized search depends on literal order, so two
//!   α-variants could otherwise get different answers. Canonicalizing on the
//!   cached **and** uncached paths makes `AUTOBIAS_COVERAGE_CACHE=0` a true
//!   no-op on learned output;
//! - positive coverage is tracked per clause as a lazily-filled [`Bitset`]
//!   pair (`known`, `covered`): only the requested-but-unknown examples are
//!   tested, and a fully-known request is a pure cache hit;
//! - negative counting is *monotone*: [`CoverageEngine::count_neg_budget`]
//!   accepts a cutoff and stops (in fixed 256-example chunks, so the tested
//!   prefix is independent of the worker-thread count) as soon as the count
//!   provably exceeds it, recording a [`NegCount::AtLeast`] lower bound.

use crate::bias::LanguageBias;
use crate::bottom::{build_bottom_clause, BcConfig, BottomClause, GroundClause};
use crate::clause::Clause;
use crate::example::TrainingSet;
use crate::instrument;
use crate::subsume::{theta_subsumes, SubsumeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relstore::{Database, FxHashMap};
use std::sync::Mutex;

/// A fixed-length bit vector over example indices, backed by `u64` blocks.
/// Replaces the `Vec<usize>` index lists previously threaded through
/// `CoverageEngine`/`learn_clause`: set membership is one shift+mask, and
/// the covering loop's "remove covered" update is a blockwise `&= !`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    len: usize,
    blocks: Vec<u64>,
}

impl Bitset {
    /// An all-zeros bitset over `len` indices.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            blocks: vec![0; len.div_ceil(64)],
        }
    }

    /// A bitset over `len` indices with exactly `indices` set.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut s = Self::new(len);
        for &i in indices {
            s.set(i);
        }
        s
    }

    /// Number of indices the bitset ranges over (not the number set).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset ranges over zero indices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.blocks[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterates set indices in increasing order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    return None;
                }
                let tz = b.trailing_zeros() as usize;
                b &= b - 1;
                Some(bi * 64 + tz)
            })
        })
    }

    /// `self ∧ ¬other`, as a new bitset.
    pub fn and_not(&self, other: &Bitset) -> Bitset {
        debug_assert_eq!(self.len, other.len);
        Bitset {
            len: self.len,
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// `self ∧ other`, as a new bitset.
    pub fn intersect(&self, other: &Bitset) -> Bitset {
        debug_assert_eq!(self.len, other.len);
        Bitset {
            len: self.len,
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }
}

/// Result of a budgeted negative count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegCount {
    /// The exact number of negatives covered.
    Exact(usize),
    /// Counting stopped early: **at least** this many negatives are covered
    /// (always strictly above the cutoff that stopped it).
    AtLeast(usize),
}

impl NegCount {
    /// Whether this count proves the clause covers **more** than `cutoff`
    /// negatives. `AtLeast` results only ever arise from a crossed cutoff,
    /// so they always answer `true` for the cutoff that produced them.
    pub fn exceeds(self, cutoff: Option<usize>) -> bool {
        match (self, cutoff) {
            (NegCount::Exact(n), Some(c)) => n > c,
            (NegCount::AtLeast(_), Some(_)) => true,
            (_, None) => false,
        }
    }

    /// The counted value: exact, or the lower bound for `AtLeast`.
    pub fn value(self) -> usize {
        match self {
            NegCount::Exact(n) | NegCount::AtLeast(n) => n,
        }
    }
}

/// Per-canonical-clause memoized coverage results.
#[derive(Debug)]
struct MemoEntry {
    /// Positive examples whose coverage has been computed.
    pos_known: Bitset,
    /// Positive examples known to be covered (⊆ `pos_known`).
    pos_covered: Bitset,
    /// Memoized negative count, if any.
    neg: Option<NegCount>,
}

/// Hard cap on memo entries. Entries are a few hundred bytes (two bitsets
/// over the positives plus the canonical clause), so the table tops out in
/// the tens of MB; when full, new keys are evaluated uncached rather than
/// evicting (beam search re-visits recent duplicates, so FIFO/LRU churn
/// would buy little).
const MEMO_MAX_ENTRIES: usize = 65_536;

/// Clauses above this body size bypass canonicalization (and therefore the
/// memo): color refinement on a many-thousand-literal bottom clause costs
/// more than it saves, and such clauses are never duplicated anyway. The
/// threshold must not depend on the cache toggle — the canonical rewrite
/// changes which α-variant is handed to the (approximate) subsumption test,
/// so it must be applied identically with the cache on and off.
const CANON_MAX_LITERALS: usize = 512;

/// Negative counting proceeds in fixed chunks of this many examples between
/// cutoff checks. A fixed chunk (rather than "one chunk per worker") keeps
/// the set of examples actually tested — and therefore every observable
/// count — independent of `AUTOBIAS_THREADS`.
const NEG_CHUNK: usize = 256;

#[derive(Debug, Default)]
struct CoverageMemo {
    map: FxHashMap<Clause, MemoEntry>,
}

impl CoverageMemo {
    /// The entry for `canon`, creating it when the table has room. Returns
    /// `None` when the key is absent and the table is full.
    fn get_or_insert(&mut self, canon: &Clause, pos_len: usize) -> Option<&mut MemoEntry> {
        if !self.map.contains_key(canon) {
            if self.map.len() >= MEMO_MAX_ENTRIES {
                return None;
            }
            self.map.insert(
                canon.clone(),
                MemoEntry {
                    pos_known: Bitset::new(pos_len),
                    pos_covered: Bitset::new(pos_len),
                    neg: None,
                },
            );
        }
        self.map.get_mut(canon)
    }
}

/// Ground BCs for every training example plus the subsumption budget.
#[derive(Debug)]
pub struct CoverageEngine {
    /// Full bottom clauses (variable-ized + ground) for the positives; the
    /// variable-ized clause of positive `i` seeds `LearnClause`.
    pub pos: Vec<BottomClause>,
    /// Ground BCs for the negatives (their variable-ized form is never needed).
    pub neg: Vec<GroundClause>,
    scfg: SubsumeConfig,
    /// Canonical-clause memo table; `None` when `AUTOBIAS_COVERAGE_CACHE=0`
    /// (read once at build time).
    memo: Option<Mutex<CoverageMemo>>,
}

impl CoverageEngine {
    /// Builds ground BCs for every example in `train`, in parallel.
    pub fn build(
        db: &Database,
        bias: &LanguageBias,
        train: &TrainingSet,
        bc_cfg: &BcConfig,
        scfg: SubsumeConfig,
        seed: u64,
    ) -> Self {
        let pos = parallel_map(&train.pos, |i, e| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
            build_bottom_clause(db, bias, e, bc_cfg, &mut rng)
        });
        let neg = parallel_map(&train.neg, |i, e| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ 0xdead_beef ^ (i as u64).wrapping_mul(0x9e37_79b9));
            build_bottom_clause(db, bias, e, bc_cfg, &mut rng).ground
        });
        let memo = coverage_cache_enabled().then(|| Mutex::new(CoverageMemo::default()));
        Self {
            pos,
            neg,
            scfg,
            memo,
        }
    }

    /// Subsumption budget in use.
    pub fn subsume_config(&self) -> &SubsumeConfig {
        &self.scfg
    }

    /// Whether the coverage memo is active (see `AUTOBIAS_COVERAGE_CACHE`).
    pub fn cache_enabled(&self) -> bool {
        self.memo.is_some()
    }

    /// Number of canonical clauses currently memoized.
    pub fn memo_len(&self) -> usize {
        self.memo
            .as_ref()
            .map_or(0, |m| m.lock().expect("coverage memo poisoned").map.len())
    }

    /// The canonical form used as the memo key — and as the clause actually
    /// handed to the subsumption search by every batch entry point, cached
    /// or not (see the module docs for why that must not differ). Oversized
    /// clauses pass through unchanged.
    pub fn canonical(&self, clause: &Clause) -> Clause {
        if clause.body.len() > CANON_MAX_LITERALS {
            clause.clone()
        } else {
            crate::canon::canonical_form(clause)
        }
    }

    /// Whether `clause` covers positive example `i`. Raw single-example
    /// test: no canonicalization, no memo — armg's prefix probes land here
    /// and are effectively never repeated. The subsumption engine derives
    /// its own restart RNG from `(clause, example)`, so the answer is a pure
    /// function of the inputs — no per-call RNG to thread.
    pub fn covers_pos(&self, clause: &Clause, i: usize) -> bool {
        theta_subsumes(clause, &self.pos[i].ground, &self.scfg)
    }

    /// Whether `clause` covers negative example `i` (raw, like
    /// [`CoverageEngine::covers_pos`]).
    pub fn covers_neg(&self, clause: &Clause, i: usize) -> bool {
        theta_subsumes(clause, &self.neg[i], &self.scfg)
    }

    /// Positives among `candidates` covered by `clause`, as a bitset over
    /// all positives. Canonicalizes, then consults/fills the memo so only
    /// requested-but-unknown examples are tested.
    pub fn covered_pos_mask(&self, clause: &Clause, candidates: &Bitset) -> Bitset {
        let canon = self.canonical(clause);
        let mut counts = [0usize];
        let mut masks = self.batch_pos_masks(std::slice::from_ref(&canon), candidates, &mut counts);
        masks.pop().expect("one mask per input clause")
    }

    /// Indices among `candidates` of positives covered by `clause`
    /// (in `candidates` order).
    pub fn covered_pos_subset(&self, clause: &Clause, candidates: &[usize]) -> Vec<usize> {
        let mask = Bitset::from_indices(self.pos.len(), candidates);
        let covered = self.covered_pos_mask(clause, &mask);
        candidates
            .iter()
            .copied()
            .filter(|&i| covered.get(i))
            .collect()
    }

    /// Positive-coverage counts for a batch of candidate clauses over one
    /// candidate set, evaluated as a **single** parallel map over the
    /// `(candidate × example)` pairs the memo cannot answer — so a narrow
    /// beam with one expensive clause no longer serializes scoring.
    /// `clauses` are canonicalized internally; returns one count per clause.
    pub fn batch_covered_pos(&self, clauses: &[Clause], candidates: &[usize]) -> Vec<usize> {
        let cand_mask = Bitset::from_indices(self.pos.len(), candidates);
        let canons: Vec<Clause> = clauses.iter().map(|c| self.canonical(c)).collect();
        let mut counts = vec![0usize; clauses.len()];
        self.batch_pos_masks(&canons, &cand_mask, &mut counts);
        counts
    }

    /// Shared positive-coverage core: for each (already canonical) clause,
    /// answers `covered ∧ candidates` from the memo where known and tests
    /// the rest in one parallel map over `(clause, example)` pairs. Fills
    /// `counts[ci]` with the per-clause covered count and returns the masks.
    fn batch_pos_masks(
        &self,
        canons: &[Clause],
        candidates: &Bitset,
        counts: &mut [usize],
    ) -> Vec<Bitset> {
        debug_assert_eq!(candidates.len(), self.pos.len());
        let mut sp = obs::span!("coverage.theta", "pos");
        let mut covered: Vec<Bitset> = Vec::with_capacity(canons.len());
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        match &self.memo {
            Some(m) => {
                let mut memo = m.lock().expect("coverage memo poisoned");
                for (ci, canon) in canons.iter().enumerate() {
                    match memo.get_or_insert(canon, self.pos.len()) {
                        Some(e) => {
                            let missing = candidates.and_not(&e.pos_known);
                            if missing.count_ones() == 0 {
                                instrument::COVERAGE_CACHE_HITS.bump();
                            } else {
                                instrument::COVERAGE_CACHE_MISSES.bump();
                                pairs.extend(missing.ones().map(|i| (ci, i)));
                            }
                            covered.push(e.pos_covered.intersect(candidates));
                        }
                        None => {
                            // Table full and key absent: evaluate uncached.
                            instrument::COVERAGE_CACHE_MISSES.bump();
                            pairs.extend(candidates.ones().map(|i| (ci, i)));
                            covered.push(Bitset::new(self.pos.len()));
                        }
                    }
                }
            }
            None => {
                for (ci, _) in canons.iter().enumerate() {
                    pairs.extend(candidates.ones().map(|i| (ci, i)));
                    covered.push(Bitset::new(self.pos.len()));
                }
            }
        }
        sp.note("examples", pairs.len() as u64);
        if pairs.is_empty() {
            for (ci, mask) in covered.iter().enumerate() {
                counts[ci] = mask.count_ones();
            }
            return covered;
        }
        let hits = parallel_map(&pairs, |_, &(ci, i)| self.covers_pos(&canons[ci], i));
        for (&(ci, i), &hit) in pairs.iter().zip(hits.iter()) {
            if hit {
                covered[ci].set(i);
            }
        }
        if let Some(m) = &self.memo {
            let mut memo = m.lock().expect("coverage memo poisoned");
            for (&(ci, i), &hit) in pairs.iter().zip(hits.iter()) {
                if let Some(e) = memo.map.get_mut(&canons[ci]) {
                    e.pos_known.set(i);
                    if hit {
                        e.pos_covered.set(i);
                    }
                }
            }
        }
        for (ci, mask) in covered.iter().enumerate() {
            counts[ci] = mask.count_ones();
        }
        covered
    }

    /// Number of negatives covered by `clause` (parallel, exact).
    pub fn count_neg(&self, clause: &Clause) -> usize {
        self.count_neg_budget(clause, None).value()
    }

    /// Negative count with a monotone cutoff: with `Some(c)`, counting stops
    /// once the count provably exceeds `c` and a [`NegCount::AtLeast`] lower
    /// bound is returned; with `None` the count is exact. Counting proceeds
    /// in fixed 256-example (`NEG_CHUNK`) chunks, so which examples get tested —
    /// and every value this can return — is a pure function of the clause
    /// and cutoff, independent of thread count and cache state.
    pub fn count_neg_budget(&self, clause: &Clause, cutoff: Option<usize>) -> NegCount {
        let canon = self.canonical(clause);
        if let Some(m) = &self.memo {
            let mut memo = m.lock().expect("coverage memo poisoned");
            if let Some(e) = memo.map.get_mut(&canon) {
                match e.neg {
                    // An exact count answers any query.
                    Some(n @ NegCount::Exact(_)) => {
                        instrument::COVERAGE_CACHE_HITS.bump();
                        return n;
                    }
                    // A lower bound answers only cutoffs it already exceeds.
                    Some(n @ NegCount::AtLeast(lb)) if cutoff.is_some_and(|c| lb > c) => {
                        instrument::COVERAGE_CACHE_HITS.bump();
                        return n;
                    }
                    _ => {}
                }
            }
            instrument::COVERAGE_CACHE_MISSES.bump();
        }
        let result = self.neg_count_raw(&canon, cutoff);
        if let Some(m) = &self.memo {
            let mut memo = m.lock().expect("coverage memo poisoned");
            if let Some(e) = memo.get_or_insert(&canon, self.pos.len()) {
                e.neg = Some(match (e.neg, result) {
                    // Never replace an exact count, never lower a bound.
                    (Some(n @ NegCount::Exact(_)), _) => n,
                    (_, n @ NegCount::Exact(_)) => n,
                    (Some(NegCount::AtLeast(a)), NegCount::AtLeast(b)) => {
                        NegCount::AtLeast(a.max(b))
                    }
                    (None, n) => n,
                });
            }
        }
        result
    }

    /// Chunked negative counting over `0..neg.len()` driven directly over
    /// the index range (no per-call index `Vec`), with the early exit.
    fn neg_count_raw(&self, canon: &Clause, cutoff: Option<usize>) -> NegCount {
        let mut sp = obs::span!("coverage.theta", "neg");
        let total = self.neg.len();
        let mut count = 0usize;
        let mut start = 0usize;
        while start < total {
            let end = (start + NEG_CHUNK).min(total);
            count += parallel_map_range(start, end, |i| self.covers_neg(canon, i))
                .into_iter()
                .filter(|&b| b)
                .count();
            start = end;
            if cutoff.is_some_and(|c| count > c) {
                instrument::NEG_TESTS_SKIPPED.add((total - end) as u64);
                sp.note("examples", end as u64);
                return NegCount::AtLeast(count);
            }
        }
        sp.note("examples", total as u64);
        NegCount::Exact(count)
    }

    /// The clause score used by generalization: positives covered (among
    /// `pos_candidates`) minus negatives covered (paper §2.3.2).
    pub fn score(&self, clause: &Clause, pos_candidates: &[usize]) -> (i64, usize, usize) {
        let p = self.covered_pos_subset(clause, pos_candidates).len();
        let n = self.count_neg(clause);
        (p as i64 - n as i64, p, n)
    }
}

/// Whether the coverage memo is enabled: the `AUTOBIAS_COVERAGE_CACHE`
/// environment variable, where `0` disables it (the escape hatch used by CI
/// to keep the uncached path green). Read at engine build time.
pub fn coverage_cache_enabled() -> bool {
    std::env::var("AUTOBIAS_COVERAGE_CACHE").map_or(true, |v| v.trim() != "0")
}

/// Worker threads used by the crate's parallel map: the `AUTOBIAS_THREADS`
/// environment variable when set to a positive integer (clamped to ≥1, no
/// upper bound — deliberate, so operators can oversubscribe or pin to 1 for
/// deterministic profiling), otherwise `available_parallelism` capped at 8.
/// Read per call so a resident server picks up changes without restart.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("AUTOBIAS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Maps `f` over `items` with indices, in parallel when the collection is
/// large enough to amortize thread spawn cost.
pub(crate) fn parallel_map<T: Sync, U: Send>(
    items: &[T],
    f: impl Fn(usize, &T) -> U + Sync,
) -> Vec<U> {
    let threads = worker_threads();
    if threads <= 1 || items.len() < 16 {
        return items.iter().enumerate().map(|(i, e)| f(i, e)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    crossbeam::thread::scope(|s| {
        for (ti, (items_chunk, out_chunk)) in
            items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let f = &f;
            s.spawn(move |_| {
                for (j, (item, slot)) in items_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(ti * chunk + j, item));
                }
            });
        }
    })
    .expect("coverage worker panicked");
    out.into_iter().map(|o| o.expect("slot filled")).collect()
}

/// Maps `f` over the index range `start..end` in parallel — the rangewise
/// sibling of [`parallel_map`], so callers counting over `0..n` no longer
/// allocate an index `Vec` per call.
pub(crate) fn parallel_map_range<U: Send>(
    start: usize,
    end: usize,
    f: impl Fn(usize) -> U + Sync,
) -> Vec<U> {
    let len = end.saturating_sub(start);
    let threads = worker_threads();
    if threads <= 1 || len < 16 {
        return (start..end).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    crossbeam::thread::scope(|s| {
        for (ti, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            let base = start + ti * chunk;
            s.spawn(move |_| {
                for (j, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + j));
                }
            });
        }
    })
    .expect("coverage worker panicked");
    out.into_iter().map(|o| o.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::parse::parse_bias;
    use crate::bottom::SamplingStrategy;
    use crate::example::Example;
    use relstore::fixtures::uw_fragment;

    fn engine() -> (Database, CoverageEngine, LanguageBias) {
        let mut db = uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        let juan = db.intern("juan");
        let sarita = db.intern("sarita");
        let john = db.intern("john");
        let mary = db.intern("mary");
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred student(T1)
pred inPhase(T1, T2)
pred professor(T3)
pred hasPosition(T3, T4)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)
mode student(+)
mode inPhase(+, -)
mode professor(+)
mode hasPosition(+, -)
mode publication(-, +)
",
        )
        .unwrap();
        let train = TrainingSet::new(
            vec![
                Example::new(target, vec![juan, sarita]),
                Example::new(target, vec![john, mary]),
            ],
            vec![
                Example::new(target, vec![juan, mary]),
                Example::new(target, vec![john, sarita]),
            ],
        );
        let cfg = BcConfig {
            depth: 2,
            strategy: SamplingStrategy::Full,
            max_body_literals: 100_000,
            max_tuples: 1000,
        };
        let eng = CoverageEngine::build(&db, &bias, &train, &cfg, SubsumeConfig::default(), 1);
        (db, eng, bias)
    }

    #[test]
    fn bottom_clause_covers_its_own_example() {
        let (_, eng, _) = engine();
        for i in 0..eng.pos.len() {
            let clause = eng.pos[i].clause.clone();
            assert!(eng.covers_pos(&clause, i), "BC must cover its example");
        }
    }

    #[test]
    fn coauthor_clause_separates_pos_from_neg() {
        // advisedBy(x,y) ← publication(z,x), publication(z,y):
        // true for (juan,sarita) and (john,mary); false for crossed pairs.
        let (db, eng, _) = engine();
        use crate::clause::{Literal, Term, VarId};
        let publ = db.rel_id("publication").unwrap();
        let adv = db.rel_id("advisedBy").unwrap();
        let v = |n| Term::Var(VarId(n));
        let clause = Clause::new(
            Literal::new(adv, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        );
        assert_eq!(eng.covered_pos_subset(&clause, &[0, 1]), vec![0, 1]);
        assert_eq!(eng.count_neg(&clause), 0);
        assert_eq!(eng.score(&clause, &[0, 1]), (2, 2, 0));
    }

    #[test]
    fn overly_general_clause_covers_everything() {
        let (db, eng, _) = engine();
        use crate::clause::{Literal, Term, VarId};
        let adv = db.rel_id("advisedBy").unwrap();
        let v = |n| Term::Var(VarId(n));
        let clause = Clause::new(Literal::new(adv, vec![v(0), v(1)]), vec![]);
        assert_eq!(eng.covered_pos_subset(&clause, &[0, 1]).len(), 2);
        assert_eq!(eng.count_neg(&clause), 2);
    }

    #[test]
    fn memo_answers_repeat_and_alpha_equivalent_queries() {
        let (db, eng, _) = engine();
        use crate::clause::{Literal, Term, VarId};
        let publ = db.rel_id("publication").unwrap();
        let adv = db.rel_id("advisedBy").unwrap();
        let v = |n| Term::Var(VarId(n));
        let clause = Clause::new(
            Literal::new(adv, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        );
        // α-variant: renamed join variable, reordered body.
        let variant = Clause::new(
            Literal::new(adv, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(7), v(1)]),
                Literal::new(publ, vec![v(7), v(0)]),
            ],
        );
        if !eng.cache_enabled() {
            // Running under AUTOBIAS_COVERAGE_CACHE=0 (CI's uncached pass):
            // there is no memo to assert about, and cache transparency is
            // covered by the integration suites.
            return;
        }
        let hits0 = instrument::COVERAGE_CACHE_HITS.get();
        let first = eng.score(&clause, &[0, 1]);
        assert_eq!(eng.memo_len(), 1);
        let second = eng.score(&variant, &[0, 1]);
        assert_eq!(first, second, "α-equivalent clauses score identically");
        assert_eq!(eng.memo_len(), 1, "one memo entry for both variants");
        assert!(
            instrument::COVERAGE_CACHE_HITS.get() >= hits0 + 2,
            "second score (pos + neg) is answered from the memo"
        );
    }

    #[test]
    fn partial_pos_requests_fill_the_memo_lazily() {
        let (db, eng, _) = engine();
        use crate::clause::{Literal, Term, VarId};
        let adv = db.rel_id("advisedBy").unwrap();
        let v = |n| Term::Var(VarId(n));
        let clause = Clause::new(Literal::new(adv, vec![v(0), v(1)]), vec![]);
        // Ask for example 0 only, then for both: the second call must agree
        // with a fresh full evaluation.
        assert_eq!(eng.covered_pos_subset(&clause, &[0]), vec![0]);
        assert_eq!(eng.covered_pos_subset(&clause, &[0, 1]), vec![0, 1]);
        let mask = eng.covered_pos_mask(&clause, &Bitset::from_indices(eng.pos.len(), &[0, 1]));
        assert_eq!(mask.count_ones(), 2);
    }

    #[test]
    fn count_neg_budget_cutoff_agrees_with_exact_predicate() {
        let (db, eng, _) = engine();
        use crate::clause::{Literal, Term, VarId};
        let adv = db.rel_id("advisedBy").unwrap();
        let v = |n| Term::Var(VarId(n));
        let clause = Clause::new(Literal::new(adv, vec![v(0), v(1)]), vec![]);
        let exact = eng.count_neg(&clause);
        assert_eq!(exact, 2);
        for cutoff in 0..4 {
            let budgeted = eng.count_neg_budget(&clause, Some(cutoff));
            assert_eq!(
                budgeted.exceeds(Some(cutoff)),
                exact > cutoff,
                "cutoff {cutoff}"
            );
            if !budgeted.exceeds(Some(cutoff)) {
                assert_eq!(budgeted, NegCount::Exact(exact));
            }
        }
    }

    #[test]
    fn bitset_ops() {
        let mut a = Bitset::new(130);
        for i in [0, 63, 64, 100, 129] {
            a.set(i);
        }
        assert_eq!(a.count_ones(), 5);
        assert!(a.get(63) && a.get(64) && !a.get(65));
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![0, 63, 64, 100, 129]);
        let b = Bitset::from_indices(130, &[63, 100, 128]);
        assert_eq!(a.and_not(&b).ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(a.intersect(&b).ones().collect::<Vec<_>>(), vec![63, 100]);
        assert_eq!(Bitset::new(0).count_ones(), 0);
        assert!(Bitset::new(0).is_empty());
        assert_eq!(a.len(), 130);
    }

    #[test]
    fn neg_count_exceeds_semantics() {
        assert!(!NegCount::Exact(3).exceeds(Some(3)));
        assert!(NegCount::Exact(4).exceeds(Some(3)));
        assert!(!NegCount::Exact(4).exceeds(None));
        assert!(NegCount::AtLeast(4).exceeds(Some(3)));
        assert_eq!(NegCount::Exact(7).value(), 7);
        assert_eq!(NegCount::AtLeast(7).value(), 7);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_range_matches_sequential() {
        let out = parallel_map_range(10, 310, |i| i * 3);
        assert_eq!(out, (10..310).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(parallel_map_range(5, 5, |i| i), Vec::<usize>::new());
    }

    /// `AUTOBIAS_THREADS` overrides the worker count (clamped to ≥1) and
    /// garbage values fall back to the hardware default. The variable is
    /// read per call, so the override applies immediately.
    #[test]
    fn worker_threads_honours_env_override() {
        let default = {
            std::env::remove_var("AUTOBIAS_THREADS");
            worker_threads()
        };
        assert!((1..=8).contains(&default));

        std::env::set_var("AUTOBIAS_THREADS", "3");
        assert_eq!(worker_threads(), 3);
        // Oversubscription is allowed.
        std::env::set_var("AUTOBIAS_THREADS", "32");
        assert_eq!(worker_threads(), 32);
        // Clamped to at least one worker.
        std::env::set_var("AUTOBIAS_THREADS", "0");
        assert_eq!(worker_threads(), 1);
        // Whitespace tolerated; garbage falls back to the default.
        std::env::set_var("AUTOBIAS_THREADS", " 2 ");
        assert_eq!(worker_threads(), 2);
        std::env::set_var("AUTOBIAS_THREADS", "not-a-number");
        assert_eq!(worker_threads(), default);
        std::env::remove_var("AUTOBIAS_THREADS");

        // parallel_map still works under a forced single thread…
        std::env::set_var("AUTOBIAS_THREADS", "1");
        let items: Vec<usize> = (0..40).collect();
        let seq = parallel_map(&items, |_, &x| x + 1);
        // …and under forced oversubscription.
        std::env::set_var("AUTOBIAS_THREADS", "16");
        let par = parallel_map(&items, |_, &x| x + 1);
        std::env::remove_var("AUTOBIAS_THREADS");
        assert_eq!(seq, par);
    }
}
