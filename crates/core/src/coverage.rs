//! Coverage testing (paper §5): ground bottom clauses are built **once** per
//! training example (with the same sampling strategy as BC construction) and
//! reused for every candidate clause during generalization, replacing
//! hundred-join SQL queries with θ-subsumption tests.

use crate::bias::LanguageBias;
use crate::bottom::{build_bottom_clause, BcConfig, BottomClause, GroundClause};
use crate::clause::Clause;
use crate::example::TrainingSet;
use crate::subsume::{theta_subsumes, SubsumeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relstore::Database;

/// Ground BCs for every training example plus the subsumption budget.
#[derive(Debug)]
pub struct CoverageEngine {
    /// Full bottom clauses (variable-ized + ground) for the positives; the
    /// variable-ized clause of positive `i` seeds `LearnClause`.
    pub pos: Vec<BottomClause>,
    /// Ground BCs for the negatives (their variable-ized form is never needed).
    pub neg: Vec<GroundClause>,
    scfg: SubsumeConfig,
    seed: u64,
}

impl CoverageEngine {
    /// Builds ground BCs for every example in `train`, in parallel.
    pub fn build(
        db: &Database,
        bias: &LanguageBias,
        train: &TrainingSet,
        bc_cfg: &BcConfig,
        scfg: SubsumeConfig,
        seed: u64,
    ) -> Self {
        let pos = parallel_map(&train.pos, |i, e| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
            build_bottom_clause(db, bias, e, bc_cfg, &mut rng)
        });
        let neg = parallel_map(&train.neg, |i, e| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ 0xdead_beef ^ (i as u64).wrapping_mul(0x9e37_79b9));
            build_bottom_clause(db, bias, e, bc_cfg, &mut rng).ground
        });
        Self {
            pos,
            neg,
            scfg,
            seed,
        }
    }

    /// Subsumption budget in use.
    pub fn subsume_config(&self) -> &SubsumeConfig {
        &self.scfg
    }

    /// Whether `clause` covers positive example `i`.
    pub fn covers_pos(&self, clause: &Clause, i: usize) -> bool {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (i as u64) << 1);
        theta_subsumes(clause, &self.pos[i].ground, &self.scfg, &mut rng)
    }

    /// Whether `clause` covers negative example `i`.
    pub fn covers_neg(&self, clause: &Clause, i: usize) -> bool {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xabcd ^ (i as u64) << 1);
        theta_subsumes(clause, &self.neg[i], &self.scfg, &mut rng)
    }

    /// Indices among `candidates` of positives covered by `clause` (parallel).
    pub fn covered_pos_subset(&self, clause: &Clause, candidates: &[usize]) -> Vec<usize> {
        let mut sp = obs::span!("coverage.theta", "pos");
        sp.note("examples", candidates.len() as u64);
        let hits = parallel_map(candidates, |_, &i| (i, self.covers_pos(clause, i)));
        hits.into_iter()
            .filter(|(_, h)| *h)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of negatives covered by `clause` (parallel).
    pub fn count_neg(&self, clause: &Clause) -> usize {
        let mut sp = obs::span!("coverage.theta", "neg");
        sp.note("examples", self.neg.len() as u64);
        let idxs: Vec<usize> = (0..self.neg.len()).collect();
        parallel_map(&idxs, |_, &i| self.covers_neg(clause, i))
            .into_iter()
            .filter(|&b| b)
            .count()
    }

    /// The clause score used by generalization: positives covered (among
    /// `pos_candidates`) minus negatives covered (paper §2.3.2).
    pub fn score(&self, clause: &Clause, pos_candidates: &[usize]) -> (i64, usize, usize) {
        let p = self.covered_pos_subset(clause, pos_candidates).len();
        let n = self.count_neg(clause);
        (p as i64 - n as i64, p, n)
    }
}

/// Worker threads used by the crate's parallel map: the `AUTOBIAS_THREADS`
/// environment variable when set to a positive integer (clamped to ≥1, no
/// upper bound — deliberate, so operators can oversubscribe or pin to 1 for
/// deterministic profiling), otherwise `available_parallelism` capped at 8.
/// Read per call so a resident server picks up changes without restart.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("AUTOBIAS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Maps `f` over `items` with indices, in parallel when the collection is
/// large enough to amortize thread spawn cost.
pub(crate) fn parallel_map<T: Sync, U: Send>(
    items: &[T],
    f: impl Fn(usize, &T) -> U + Sync,
) -> Vec<U> {
    let threads = worker_threads();
    if threads <= 1 || items.len() < 16 {
        return items.iter().enumerate().map(|(i, e)| f(i, e)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    crossbeam::thread::scope(|s| {
        for (ti, (items_chunk, out_chunk)) in
            items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let f = &f;
            s.spawn(move |_| {
                for (j, (item, slot)) in items_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(ti * chunk + j, item));
                }
            });
        }
    })
    .expect("coverage worker panicked");
    out.into_iter().map(|o| o.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::parse::parse_bias;
    use crate::bottom::SamplingStrategy;
    use crate::example::Example;
    use relstore::fixtures::uw_fragment;

    fn engine() -> (Database, CoverageEngine, LanguageBias) {
        let mut db = uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        let juan = db.intern("juan");
        let sarita = db.intern("sarita");
        let john = db.intern("john");
        let mary = db.intern("mary");
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred student(T1)
pred inPhase(T1, T2)
pred professor(T3)
pred hasPosition(T3, T4)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)
mode student(+)
mode inPhase(+, -)
mode professor(+)
mode hasPosition(+, -)
mode publication(-, +)
",
        )
        .unwrap();
        let train = TrainingSet::new(
            vec![
                Example::new(target, vec![juan, sarita]),
                Example::new(target, vec![john, mary]),
            ],
            vec![
                Example::new(target, vec![juan, mary]),
                Example::new(target, vec![john, sarita]),
            ],
        );
        let cfg = BcConfig {
            depth: 2,
            strategy: SamplingStrategy::Full,
            max_body_literals: 100_000,
            max_tuples: 1000,
        };
        let eng = CoverageEngine::build(&db, &bias, &train, &cfg, SubsumeConfig::default(), 1);
        (db, eng, bias)
    }

    #[test]
    fn bottom_clause_covers_its_own_example() {
        let (_, eng, _) = engine();
        for i in 0..eng.pos.len() {
            let clause = eng.pos[i].clause.clone();
            assert!(eng.covers_pos(&clause, i), "BC must cover its example");
        }
    }

    #[test]
    fn coauthor_clause_separates_pos_from_neg() {
        // advisedBy(x,y) ← publication(z,x), publication(z,y):
        // true for (juan,sarita) and (john,mary); false for crossed pairs.
        let (db, eng, _) = engine();
        use crate::clause::{Literal, Term, VarId};
        let publ = db.rel_id("publication").unwrap();
        let adv = db.rel_id("advisedBy").unwrap();
        let v = |n| Term::Var(VarId(n));
        let clause = Clause::new(
            Literal::new(adv, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        );
        assert_eq!(eng.covered_pos_subset(&clause, &[0, 1]), vec![0, 1]);
        assert_eq!(eng.count_neg(&clause), 0);
        assert_eq!(eng.score(&clause, &[0, 1]), (2, 2, 0));
    }

    #[test]
    fn overly_general_clause_covers_everything() {
        let (db, eng, _) = engine();
        use crate::clause::{Literal, Term, VarId};
        let adv = db.rel_id("advisedBy").unwrap();
        let v = |n| Term::Var(VarId(n));
        let clause = Clause::new(Literal::new(adv, vec![v(0), v(1)]), vec![]);
        assert_eq!(eng.covered_pos_subset(&clause, &[0, 1]).len(), 2);
        assert_eq!(eng.count_neg(&clause), 2);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    /// `AUTOBIAS_THREADS` overrides the worker count (clamped to ≥1) and
    /// garbage values fall back to the hardware default. The variable is
    /// read per call, so the override applies immediately.
    #[test]
    fn worker_threads_honours_env_override() {
        let default = {
            std::env::remove_var("AUTOBIAS_THREADS");
            worker_threads()
        };
        assert!((1..=8).contains(&default));

        std::env::set_var("AUTOBIAS_THREADS", "3");
        assert_eq!(worker_threads(), 3);
        // Oversubscription is allowed.
        std::env::set_var("AUTOBIAS_THREADS", "32");
        assert_eq!(worker_threads(), 32);
        // Clamped to at least one worker.
        std::env::set_var("AUTOBIAS_THREADS", "0");
        assert_eq!(worker_threads(), 1);
        // Whitespace tolerated; garbage falls back to the default.
        std::env::set_var("AUTOBIAS_THREADS", " 2 ");
        assert_eq!(worker_threads(), 2);
        std::env::set_var("AUTOBIAS_THREADS", "not-a-number");
        assert_eq!(worker_threads(), default);
        std::env::remove_var("AUTOBIAS_THREADS");

        // parallel_map still works under a forced single thread…
        std::env::set_var("AUTOBIAS_THREADS", "1");
        let items: Vec<usize> = (0..40).collect();
        let seq = parallel_map(&items, |_, &x| x + 1);
        // …and under forced oversubscription.
        std::env::set_var("AUTOBIAS_THREADS", "16");
        let par = parallel_map(&items, |_, &x| x + 1);
        std::env::remove_var("AUTOBIAS_THREADS");
        assert_eq!(seq, par);
    }
}
