//! Lightweight process-wide instrumentation counters.
//!
//! The serving subsystem (`crates/serve`) exports these through its
//! `/metrics` endpoint; the learner and query engine bump them on their hot
//! paths with relaxed atomics, which costs one uncontended cache-line write
//! per test — negligible next to a subsumption search or an SPJ query.

use std::sync::atomic::{AtomicU64, Ordering};

/// θ-subsumption tests started ([`crate::subsume::theta_subsumes`]).
pub static SUBSUMPTION_TESTS: AtomicU64 = AtomicU64::new(0);

/// Direct SPJ coverage queries started ([`crate::query::clause_covers`]).
pub static COVERAGE_QUERIES: AtomicU64 = AtomicU64::new(0);

/// Bottom clauses constructed ([`crate::bottom::build_bottom_clause`]).
pub static BOTTOM_CLAUSES_BUILT: AtomicU64 = AtomicU64::new(0);

/// Bumps a counter; relaxed ordering, monotonic only.
#[inline]
pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time reading of every core counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// θ-subsumption tests started since process start.
    pub subsumption_tests: u64,
    /// Direct coverage queries started since process start.
    pub coverage_queries: u64,
    /// Bottom clauses constructed since process start.
    pub bottom_clauses_built: u64,
}

/// Reads all counters (relaxed; values are monotonic but not a consistent
/// cross-counter snapshot).
pub fn snapshot() -> CoreCounters {
    CoreCounters {
        subsumption_tests: SUBSUMPTION_TESTS.load(Ordering::Relaxed),
        coverage_queries: COVERAGE_QUERIES.load(Ordering::Relaxed),
        bottom_clauses_built: BOTTOM_CLAUSES_BUILT.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serving subsystem shares one `Database` and the learned
    /// definitions across request threads behind `Arc`s; this pins the
    /// Send + Sync bounds so a non-thread-safe field sneaking into these
    /// types becomes a compile error here rather than a trait-bound blowup
    /// in `crates/serve`.
    #[test]
    fn core_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<relstore::Database>();
        assert_send_sync::<crate::clause::Definition>();
        assert_send_sync::<crate::clause::Clause>();
        assert_send_sync::<crate::bias::LanguageBias>();
        assert_send_sync::<crate::learn::Learner>();
        assert_send_sync::<crate::learn::LearnStats>();
        assert_send_sync::<crate::example::TrainingSet>();
        assert_send_sync::<crate::query::QueryConfig>();
    }

    #[test]
    fn counters_are_monotonic() {
        let before = snapshot();
        bump(&SUBSUMPTION_TESTS);
        bump(&COVERAGE_QUERIES);
        bump(&BOTTOM_CLAUSES_BUILT);
        let after = snapshot();
        assert!(after.subsumption_tests > before.subsumption_tests);
        assert!(after.coverage_queries > before.coverage_queries);
        assert!(after.bottom_clauses_built > before.bottom_clauses_built);
    }
}
