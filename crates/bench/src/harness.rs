//! Shared experiment harness: runs one (dataset, method) cell of Table 5 or
//! one (dataset, sampling) cell of Table 6 and formats the tables.

use autobias::bias::auto::{induce_bias, AutoBiasConfig, ConstantThreshold};
use autobias::bias::baseline::{castor_bias, no_const_bias};
use autobias::bias::overlap::overlap_bias;
use autobias::bias::LanguageBias;
use autobias::bottom::{BcConfig, SamplingStrategy};
use autobias::eval::{evaluate_definition, kfold_splits, Metrics};
use autobias::learn::{Learner, LearnerConfig};
use datasets::Dataset;
use foil::{FoilConfig, FoilLearner};
use std::time::{Duration, Instant};

/// The five methods of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Castor baseline: no real bias (universal type, constants everywhere).
    Castor,
    /// Castor without constants.
    NoConst,
    /// Castor with the expert-written bias.
    Manual,
    /// Aleph emulating FOIL, with the expert bias.
    Aleph,
    /// AutoBias: automatically induced bias.
    AutoBias,
    /// Extension (not in the paper's Table 5): McCreath–Sharma overlap
    /// typing \[34\] — same type on any single-value overlap (§7 argues this
    /// under-restricts the space; `table5 --extended` measures it).
    Overlap,
}

impl Method {
    /// All methods in Table 5's column order.
    pub const ALL: [Method; 5] = [
        Method::Castor,
        Method::NoConst,
        Method::Manual,
        Method::Aleph,
        Method::AutoBias,
    ];

    /// Table 5 columns plus the overlap-typing extension.
    pub const EXTENDED: [Method; 6] = [
        Method::Castor,
        Method::NoConst,
        Method::Manual,
        Method::Aleph,
        Method::AutoBias,
        Method::Overlap,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Method::Castor => "Castor",
            Method::NoConst => "No const.",
            Method::Manual => "Manual",
            Method::Aleph => "Aleph",
            Method::AutoBias => "AutoBias",
            Method::Overlap => "Overlap",
        }
    }
}

/// One cell of an experiment table.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Mean precision over folds.
    pub precision: f64,
    /// Mean recall over folds.
    pub recall: f64,
    /// Mean F-measure over folds.
    pub f_measure: f64,
    /// Mean learning time per fold (includes bias induction for AutoBias).
    pub time: Duration,
    /// Whether any fold hit the time budget (rendered like the paper's
    /// `>10h` rows).
    pub timed_out: bool,
    /// Size of the language bias used (predicate + mode definitions).
    pub bias_size: usize,
    /// Time spent inducing / constructing the bias (IND discovery for
    /// AutoBias; ~0 for others).
    pub bias_time: Duration,
}

/// Harness-wide settings.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Cross-validation folds (the paper: 5 for UW, 10 elsewhere; we default
    /// to 5 to keep the default run quick — pass `--folds` to change).
    pub folds: usize,
    /// Per-fold learning time budget.
    pub budget: Duration,
    /// RNG seed.
    pub seed: u64,
    /// BC construction depth.
    pub depth: usize,
    /// Tuples kept per mode probe ("at most 20 tuples per mode", §6.1).
    pub sample_per_mode: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            folds: 5,
            budget: Duration::from_secs(120),
            seed: 7,
            depth: 2,
            sample_per_mode: 20,
        }
    }
}

/// Builds the language bias for a method over a dataset. Returns the bias,
/// its construction time, and its size.
pub fn bias_for(method: Method, ds: &Dataset) -> Result<(LanguageBias, Duration), String> {
    let t0 = Instant::now();
    let bias = match method {
        Method::Castor => castor_bias(&ds.db, ds.target, 2).map_err(|e| e.to_string())?,
        Method::NoConst => no_const_bias(&ds.db, ds.target).map_err(|e| e.to_string())?,
        Method::Manual | Method::Aleph => ds.manual_bias().map_err(|e| e.to_string())?,
        Method::Overlap => overlap_bias(
            &ds.db,
            ds.target,
            ConstantThreshold::Absolute(50),
            AutoBiasConfig::default().max_constant_set_size,
        )
        .map_err(|e| e.to_string())?,
        Method::AutoBias => {
            // The paper tunes the constant-threshold per data (18% relative
            // on their multi-million-tuple datasets). At our synthetic scale
            // a relative threshold misfires on key-like attributes (flight
            // ids, process ids have few distinct values relative to tuple
            // counts), so the harness uses the equivalent absolute setting:
            // attributes with < 50 distinct values may be constants.
            let cfg = AutoBiasConfig {
                constant_threshold: ConstantThreshold::Absolute(50),
                ..AutoBiasConfig::default()
            };
            let (bias, _, _) = induce_bias(&ds.db, ds.target, &cfg).map_err(|e| e.to_string())?;
            bias
        }
    };
    Ok((bias, t0.elapsed()))
}

/// Learner configuration used across Table 5 (naïve sampling per §6.1).
pub fn learner_config(h: &HarnessConfig, budget: Duration) -> LearnerConfig {
    LearnerConfig {
        bc: BcConfig {
            depth: h.depth,
            strategy: SamplingStrategy::Naive {
                per_selection: h.sample_per_mode,
            },
            max_body_literals: 2_000,
            max_tuples: 3_000,
        },
        seed: h.seed,
        time_budget: Some(budget),
        ..LearnerConfig::default()
    }
}

/// Runs one Table 5 cell: k-fold CV of `method` on `ds`.
pub fn run_table5_cell(ds: &Dataset, method: Method, h: &HarnessConfig) -> Result<Cell, String> {
    let (bias, bias_time) = bias_for(method, ds)?;
    let bias_size = bias.size();
    let splits = kfold_splits(&ds.pos, &ds.neg, h.folds, h.seed);

    let mut metrics: Vec<Metrics> = Vec::new();
    let mut times = Vec::new();
    let mut timed_out = false;
    for (train, test) in splits {
        let t0 = Instant::now();
        let (def, learn_timed_out) = match method {
            Method::Aleph => {
                let cfg = FoilConfig {
                    bc: learner_config(h, h.budget).bc,
                    seed: h.seed,
                    time_budget: Some(h.budget),
                    ..FoilConfig::default()
                };
                let (def, stats) = FoilLearner::new(cfg).learn(&ds.db, &bias, &train);
                (def, stats.timed_out)
            }
            _ => {
                let learner = Learner::new(learner_config(h, h.budget));
                let (def, stats) = learner.learn(&ds.db, &bias, &train);
                (def, stats.timed_out)
            }
        };
        times.push(t0.elapsed());
        timed_out |= learn_timed_out;
        metrics.push(evaluate_definition(
            &ds.db, &bias, &def, &test, h.depth, h.seed,
        ));
        if timed_out {
            break; // remaining folds would also blow the budget
        }
    }

    let n = metrics.len().max(1) as f64;
    Ok(Cell {
        precision: metrics.iter().map(Metrics::precision).sum::<f64>() / n,
        recall: metrics.iter().map(Metrics::recall).sum::<f64>() / n,
        f_measure: metrics.iter().map(Metrics::f_measure).sum::<f64>() / n,
        time: times.iter().sum::<Duration>() / times.len().max(1) as u32,
        timed_out,
        bias_size,
        bias_time,
    })
}

/// Runs one Table 6 cell: CV with a given sampling strategy (AutoBias bias),
/// averaged over `repeats` runs for randomized strategies.
pub fn run_table6_cell(
    ds: &Dataset,
    strategy: SamplingStrategy,
    h: &HarnessConfig,
    repeats: usize,
) -> Result<Cell, String> {
    let (bias, bias_time) = bias_for(Method::AutoBias, ds)?;
    let bias_size = bias.size();

    let mut fms = Vec::new();
    let mut precs = Vec::new();
    let mut recalls = Vec::new();
    let mut times = Vec::new();
    let mut timed_out = false;
    for rep in 0..repeats {
        let splits = kfold_splits(&ds.pos, &ds.neg, h.folds, h.seed);
        for (train, test) in splits {
            let mut cfg = learner_config(h, h.budget);
            cfg.bc.strategy = strategy;
            cfg.seed = h.seed ^ (rep as u64) << 32;
            let t0 = Instant::now();
            let learner = Learner::new(cfg);
            let (def, stats) = learner.learn(&ds.db, &bias, &train);
            times.push(t0.elapsed());
            timed_out |= stats.timed_out;
            let m = evaluate_definition(&ds.db, &bias, &def, &test, h.depth, h.seed);
            fms.push(m.f_measure());
            precs.push(m.precision());
            recalls.push(m.recall());
            if timed_out {
                break;
            }
        }
        if timed_out {
            break;
        }
    }

    let n = fms.len().max(1) as f64;
    Ok(Cell {
        precision: precs.iter().sum::<f64>() / n,
        recall: recalls.iter().sum::<f64>() / n,
        f_measure: fms.iter().sum::<f64>() / n,
        time: times.iter().sum::<Duration>() / times.len().max(1) as u32,
        timed_out,
        bias_size,
        bias_time,
    })
}

/// Formats a duration the way the paper's tables do (h/m/s).
pub fn fmt_duration(d: Duration, timed_out: bool) -> String {
    let prefix = if timed_out { ">" } else { "" };
    let s = d.as_secs_f64();
    if s >= 3600.0 {
        format!("{prefix}{:.1}h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{prefix}{:.1}m", s / 60.0)
    } else {
        format!("{prefix}{:.1}s", s)
    }
}

/// Parses `--key value` style arguments shared by the experiment binaries.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--key <v>` parsed into `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.raw
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether the flag `--key` is present.
    pub fn has(&self, key: &str) -> bool {
        self.raw.iter().any(|a| a == key)
    }

    /// Value of `--key <v>` as a string, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }
}

/// Datasets selected by `--dataset NAME` (default: all five).
pub fn selected_datasets(args: &Args, seed: u64) -> Vec<Dataset> {
    let all = Dataset::all_default(seed);
    match args.get_str("--dataset") {
        Some(name) => all
            .into_iter()
            .filter(|d| d.name.eq_ignore_ascii_case(name))
            .collect(),
        None => all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::uw::{generate, UwConfig};

    fn tiny_uw() -> Dataset {
        generate(
            &UwConfig {
                students: 30,
                professors: 10,
                courses: 12,
                advised_pairs: 18,
                negatives: 36,
                evidence_prob: 1.0,
                noise_coauthor_pairs: 0,
                ..UwConfig::default()
            },
            3,
        )
    }

    fn fast_cfg() -> HarnessConfig {
        HarnessConfig {
            folds: 2,
            budget: Duration::from_secs(30),
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn every_method_builds_a_bias() {
        let ds = tiny_uw();
        for m in Method::EXTENDED {
            let (bias, _) = bias_for(m, &ds).unwrap_or_else(|e| panic!("{}: {e}", m.label()));
            assert!(bias.size() > 0, "{}", m.label());
        }
    }

    #[test]
    fn table5_cell_runs_and_scores() {
        let ds = tiny_uw();
        let cell = run_table5_cell(&ds, Method::Manual, &fast_cfg()).unwrap();
        assert!(cell.f_measure > 0.5, "FM {}", cell.f_measure);
        assert!(!cell.timed_out);
        assert!(cell.bias_size > 0);
    }

    #[test]
    fn table6_cell_runs_for_each_strategy() {
        let ds = tiny_uw();
        for strategy in [
            SamplingStrategy::Naive { per_selection: 10 },
            SamplingStrategy::Random {
                per_selection: 10,
                oversample: 5,
            },
            SamplingStrategy::Stratified { per_stratum: 2 },
        ] {
            let cell = run_table6_cell(&ds, strategy, &fast_cfg(), 1).unwrap();
            assert!(cell.f_measure > 0.3, "{strategy:?}: FM {}", cell.f_measure);
        }
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.34), false), "2.3s");
        assert_eq!(fmt_duration(Duration::from_secs(90), false), "1.5m");
        assert_eq!(fmt_duration(Duration::from_secs(7200), false), "2.0h");
        assert_eq!(fmt_duration(Duration::from_secs(30), true), ">30.0s");
    }

    #[test]
    fn aleph_uses_foil_learner() {
        let ds = tiny_uw();
        let cell = run_table5_cell(&ds, Method::Aleph, &fast_cfg()).unwrap();
        // Top-down greedy search is weak on tiny training sets (the paper's
        // Aleph row on the real UW is 0.27); just require the pipeline ran.
        assert!(!cell.timed_out);
        assert!(cell.bias_size > 0);
    }
}
