//! # autobias-bench — experiment harness regenerating every table and figure
//!
//! Binaries (run with `--release`):
//!
//! - `table5` — Table 5: language-bias methods × datasets;
//! - `table6` — Table 6: sampling techniques × datasets;
//! - `ind_times` — §6.1's IND-extraction preprocessing times;
//! - `figure1` — Figure 1's type graph (plus the induced Table 3 bias) for UW.
//!
//! - `bench_json` — `BENCH_<dataset>.json` perf-trajectory files;
//! - `bench_compare` — perf-regression gate diffing a fresh trajectory
//!   against a committed baseline (`bench/baselines/`).
//!
//! Criterion microbenches live in `benches/`.
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod compare;
pub mod harness;
