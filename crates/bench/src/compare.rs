//! Perf-regression comparison between two `BENCH_<dataset>.json` trajectory
//! files (as written by the `bench_json` binary): a committed baseline and a
//! fresh run. Used by the `bench_compare` binary as a CI gate.
//!
//! A regression is flagged when, for any method present in the baseline:
//!
//! - end-to-end `time_secs` exceeds `baseline × time_tolerance`;
//! - any phase with a baseline `total_secs` above `min_phase_secs` exceeds
//!   `baseline × phase_tolerance` (tiny phases are pure noise);
//! - `f_measure` drops more than `quality_margin` below the baseline — a
//!   speedup that loses recall is not a win;
//! - a gated counter (currently the coverage-cache hit counter) is positive
//!   in the baseline but zero or missing in the fresh run — the phase
//!   tolerances assume the memo is engaged, so a silently disabled cache
//!   must fail loudly rather than eat the whole timing budget;
//! - a serving-benchmark throughput metric (`predictions_per_sec`,
//!   `achieved_rps`, `speedup`) falls below `baseline / time_tolerance`, or a
//!   latency metric (`p99_us`, `p999_us`) exceeds `baseline ×
//!   time_tolerance` — only gated when the baseline carries the key, so
//!   learning trajectories are unaffected;
//! - a method or gated phase disappears from the fresh run (a structural
//!   change that should come with a baseline refresh).
//!
//! Tolerances are deliberately ratio-based: baselines are recorded on
//! whatever machine ran them, so only relative slowdowns are meaningful, and
//! CI runners warrant generous ratios (the workflow uses ≥ 2×).

use obs::json::Json;

/// Counters gated by [`compare`]: positive in the baseline ⇒ must stay
/// positive in the fresh run. Deliberately a "still engaged" check, not a
/// ratio — counter magnitudes shift with legitimate search-order changes.
const GATED_COUNTERS: [&str; 7] = [
    "autobias_core_coverage_cache_hits_total",
    "autobias_plan_compiled_total",
    "autobias_http_keepalive_reuses_total",
    // A baseline that observed per-operator q-errors means the plan-stats
    // pipeline was on; a fresh run where it reads zero has silently lost
    // EXPLAIN ANALYZE (and the estimate-accuracy feedback loop with it).
    "autobias_plan_estimate_qerror_count",
    // The bitset subsumption engine and the constraint-driven beam pruner
    // (DESIGN.md §15): a baseline that exercised them but a fresh run that
    // reads zero means the run silently fell back to the legacy engine or
    // lost pruning — the coverage.theta phase tolerance assumes both.
    "autobias_core_subsume_domain_words_total",
    "autobias_core_subsume_components_split_total",
    "autobias_core_candidates_pruned_by_constraint_total",
];

/// Serving-benchmark throughput metrics (`BENCH_serve_*.json`): a fresh
/// value below `baseline / time_tolerance` is a regression. Learning
/// baselines don't carry these keys, so they gate nothing there.
const FLOOR_METRICS: [&str; 3] = ["predictions_per_sec", "achieved_rps", "speedup"];

/// Serving-benchmark latency metrics: a fresh value above
/// `baseline × time_tolerance` is a regression.
const CEILING_METRICS: [&str; 2] = ["p99_us", "p999_us"];

/// Thresholds for [`compare`]. Ratios are multiplicative (2.0 = "may take
/// twice as long"), the quality margin is absolute in F-measure points.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Allowed `fresh / baseline` ratio for end-to-end `time_secs`.
    pub time_tolerance: f64,
    /// Allowed `fresh / baseline` ratio for per-phase `total_secs`.
    pub phase_tolerance: f64,
    /// Phases whose baseline `total_secs` is below this are not gated.
    pub min_phase_secs: f64,
    /// Allowed absolute drop in `f_measure`.
    pub quality_margin: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        Self {
            time_tolerance: 2.0,
            phase_tolerance: 2.0,
            min_phase_secs: 0.01,
            quality_margin: 0.05,
        }
    }
}

/// One failed check.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Method label (`"Manual"`, `"AutoBias"`, ...).
    pub method: String,
    /// What regressed: `time_secs`, `f_measure`, or `phase:<name>`.
    pub what: String,
    /// Baseline value.
    pub baseline: f64,
    /// Fresh value (NaN when the metric is missing from the fresh run).
    pub fresh: f64,
    /// The limit the fresh value violated.
    pub limit: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.fresh.is_nan() {
            write!(
                f,
                "{}/{}: missing from fresh run (baseline {:.4})",
                self.method, self.what, self.baseline
            )
        } else {
            write!(
                f,
                "{}/{}: {:.4} exceeds limit {:.4} (baseline {:.4})",
                self.method, self.what, self.fresh, self.limit, self.baseline
            )
        }
    }
}

/// Result of comparing a fresh trajectory file against a baseline.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Checks evaluated (time, quality, and gated phases per method).
    pub checks: usize,
    /// Checks that failed.
    pub regressions: Vec<Regression>,
    /// Human-readable `ok`-or-`FAIL` line per check, in evaluation order.
    pub lines: Vec<String>,
}

impl Outcome {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn method_names(doc: &Json) -> Result<Vec<String>, String> {
    Ok(doc
        .get("methods")
        .and_then(Json::as_obj)
        .ok_or("no \"methods\" object")?
        .iter()
        .map(|(name, _)| name.clone())
        .collect())
}

/// Compares `fresh` against `baseline`, both parsed `BENCH_*.json` documents.
/// Errors on structurally unusable input; regressions are data, not errors.
pub fn compare(baseline: &Json, fresh: &Json, cfg: &CompareConfig) -> Result<Outcome, String> {
    let mut out = Outcome::default();
    let base_ds = baseline.get("dataset").and_then(Json::as_str);
    let fresh_ds = fresh.get("dataset").and_then(Json::as_str);
    if base_ds != fresh_ds {
        return Err(format!(
            "dataset mismatch: baseline {base_ds:?} vs fresh {fresh_ds:?}"
        ));
    }
    for method in method_names(baseline)? {
        let base = baseline
            .path(&["methods", method.as_str()])
            .expect("listed method");
        if base.get("error").is_some() {
            // The baseline recorded a failure for this method; nothing to gate.
            continue;
        }
        let fresh_m = match fresh.path(&["methods", method.as_str()]) {
            Some(m) if m.get("error").is_none() => m,
            _ => {
                out.checks += 1;
                out.fail(&method, "methods", 0.0, f64::NAN, 0.0);
                continue;
            }
        };

        let metric = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_f64);
        if let Some(base_t) = metric(base, "time_secs") {
            out.check_ceiling(
                &method,
                "time_secs",
                base_t,
                metric(fresh_m, "time_secs"),
                base_t * cfg.time_tolerance,
            );
        }
        if let Some(base_f) = metric(base, "f_measure") {
            // A floor, not a ceiling: flip both sides' signs.
            out.check_ceiling(
                &method,
                "f_measure",
                base_f,
                metric(fresh_m, "f_measure").map(|v| -v),
                -(base_f - cfg.quality_margin),
            );
        }
        for name in FLOOR_METRICS {
            if let Some(base_v) = metric(base, name) {
                // Same negation trick as f_measure: floor via ceiling.
                out.check_ceiling(
                    &method,
                    name,
                    -base_v,
                    metric(fresh_m, name).map(|v| -v),
                    -(base_v / cfg.time_tolerance),
                );
            }
        }
        for name in CEILING_METRICS {
            if let Some(base_v) = metric(base, name) {
                out.check_ceiling(
                    &method,
                    name,
                    base_v,
                    metric(fresh_m, name),
                    base_v * cfg.time_tolerance,
                );
            }
        }
        let base_phases = base.get("phases").and_then(Json::as_obj);
        for (phase, entry) in base_phases.unwrap_or(&[]) {
            let base_t = match entry.get("total_secs").and_then(Json::as_f64) {
                Some(t) if t >= cfg.min_phase_secs => t,
                _ => continue,
            };
            let fresh_t = fresh_m
                .path(&["phases", phase.as_str()])
                .and_then(|p| p.get("total_secs"))
                .and_then(Json::as_f64);
            out.check_ceiling(
                &method,
                &format!("phase:{phase}"),
                base_t,
                fresh_t,
                base_t * cfg.phase_tolerance,
            );
        }
        let base_counters = base.get("counters").and_then(Json::as_obj);
        for (name, entry) in base_counters.unwrap_or(&[]) {
            if !GATED_COUNTERS.contains(&name.as_str()) {
                continue;
            }
            let base_v = match entry.as_f64() {
                Some(v) if v > 0.0 => v,
                _ => continue,
            };
            let fresh_v = fresh_m
                .path(&["counters", name.as_str()])
                .and_then(Json::as_f64);
            // A floor at 1: negate both sides of the ceiling check.
            out.check_ceiling(
                &method,
                &format!("counter:{name}"),
                -base_v,
                fresh_v.map(|v| -v),
                -1.0,
            );
        }
    }
    if out.checks == 0 {
        return Err("baseline has no usable methods to compare".to_string());
    }
    Ok(out)
}

impl Outcome {
    /// Records one `fresh <= limit` check; a missing fresh value fails it.
    /// Negated inputs turn the ceiling into a floor (see the f_measure call).
    fn check_ceiling(
        &mut self,
        method: &str,
        what: &str,
        baseline: f64,
        fresh: Option<f64>,
        limit: f64,
    ) {
        self.checks += 1;
        match fresh {
            Some(v) if v <= limit => self.lines.push(format!(
                "ok   {method}/{what}: {:.4} within {:.4} (baseline {:.4})",
                v.abs(),
                limit.abs(),
                baseline.abs()
            )),
            Some(v) => self.fail(method, what, baseline.abs(), v.abs(), limit.abs()),
            None => self.fail(method, what, baseline.abs(), f64::NAN, limit.abs()),
        }
    }

    fn fail(&mut self, method: &str, what: &str, baseline: f64, fresh: f64, limit: f64) {
        let r = Regression {
            method: method.to_string(),
            what: what.to_string(),
            baseline,
            fresh,
            limit,
        };
        self.lines.push(format!("FAIL {r}"));
        self.regressions.push(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(time: f64, fm: f64, theta_secs: f64) -> Json {
        Json::parse(&format!(
            r#"{{"dataset": "UW", "folds": 2, "methods": {{
                "Manual": {{
                    "f_measure": {fm}, "time_secs": {time},
                    "phases": {{
                        "coverage.theta": {{"count": 10, "total_secs": {theta_secs}, "max_us": 9}},
                        "tiny.phase": {{"count": 1, "total_secs": 0.0001, "max_us": 1}}
                    }}
                }}
            }}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_runs_pass_every_check() {
        let base = doc(10.0, 0.9, 4.0);
        let out = compare(&base, &base, &CompareConfig::default()).unwrap();
        assert!(out.passed(), "{:?}", out.regressions);
        // time + quality + one gated phase; the sub-threshold phase is skipped.
        assert_eq!(out.checks, 3);
        assert!(
            out.lines.iter().all(|l| l.starts_with("ok")),
            "{:?}",
            out.lines
        );
    }

    #[test]
    fn slowdowns_and_quality_drops_are_flagged() {
        let base = doc(10.0, 0.9, 4.0);
        let fresh = doc(25.0, 0.7, 9.0); // 2.5× slower, −0.2 F, 2.25× phase
        let out = compare(&base, &fresh, &CompareConfig::default()).unwrap();
        let whats: Vec<&str> = out.regressions.iter().map(|r| r.what.as_str()).collect();
        assert_eq!(
            whats,
            vec!["time_secs", "f_measure", "phase:coverage.theta"],
            "{:?}",
            out.regressions
        );
        // Generous tolerances wave the same run through.
        let lax = CompareConfig {
            time_tolerance: 3.0,
            phase_tolerance: 3.0,
            quality_margin: 0.25,
            ..CompareConfig::default()
        };
        assert!(compare(&base, &fresh, &lax).unwrap().passed());
    }

    #[test]
    fn missing_method_or_phase_fails_instead_of_passing_vacuously() {
        let base = doc(10.0, 0.9, 4.0);
        let gone = Json::parse(r#"{"dataset": "UW", "methods": {}}"#).unwrap();
        let out = compare(&base, &gone, &CompareConfig::default()).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].fresh.is_nan());

        let renamed = Json::parse(
            r#"{"dataset": "UW", "methods": {"Manual": {
                "f_measure": 0.9, "time_secs": 10.0, "phases": {}
            }}}"#,
        )
        .unwrap();
        let out = compare(&base, &renamed, &CompareConfig::default()).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].what, "phase:coverage.theta");
    }

    fn doc_with_counters(cache_hits: u64) -> Json {
        Json::parse(&format!(
            r#"{{"dataset": "UW", "folds": 2, "methods": {{
                "AutoBias": {{
                    "f_measure": 0.9, "time_secs": 10.0,
                    "phases": {{}},
                    "counters": {{
                        "autobias_core_coverage_cache_hits_total": {cache_hits},
                        "autobias_core_subsumption_tests_total": 5000
                    }}
                }}
            }}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn disabled_cache_fails_the_counter_gate() {
        let base = doc_with_counters(1200);
        // Engaged cache passes, whatever the magnitude.
        let out = compare(&base, &doc_with_counters(3), &CompareConfig::default()).unwrap();
        assert!(out.passed(), "{:?}", out.regressions);
        // A zero or missing hit counter fails.
        let out = compare(&base, &doc_with_counters(0), &CompareConfig::default()).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(
            out.regressions[0].what,
            "counter:autobias_core_coverage_cache_hits_total"
        );
        let stripped = Json::parse(
            r#"{"dataset": "UW", "methods": {"AutoBias": {
                "f_measure": 0.9, "time_secs": 10.0, "phases": {}
            }}}"#,
        )
        .unwrap();
        let out = compare(&base, &stripped, &CompareConfig::default()).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].fresh.is_nan());
        // Ungated counters never gate: a baseline without cache hits makes
        // no counter checks at all.
        let out = compare(
            &doc_with_counters(0),
            &doc_with_counters(0),
            &CompareConfig::default(),
        )
        .unwrap();
        assert!(out.passed());
        assert_eq!(out.checks, 2); // time + quality only
    }

    #[test]
    fn silently_disabled_subsume_engine_or_pruner_fails_the_counter_gate() {
        let doc = |words: u64, pruned: u64| {
            Json::parse(&format!(
                r#"{{"dataset": "UW", "methods": {{
                    "AutoBias": {{
                        "f_measure": 0.9, "time_secs": 10.0, "phases": {{}},
                        "counters": {{
                            "autobias_core_subsume_domain_words_total": {words},
                            "autobias_core_subsume_components_split_total": {words},
                            "autobias_core_candidates_pruned_by_constraint_total": {pruned}
                        }}
                    }}
                }}}}"#
            ))
            .unwrap()
        };
        let base = doc(27_000_000, 54);
        // Magnitudes may move freely as long as both stay engaged.
        assert!(compare(&base, &doc(9, 1), &CompareConfig::default())
            .unwrap()
            .passed());
        // Legacy-engine fallback: domain-word and component counters at zero.
        let out = compare(&base, &doc(0, 54), &CompareConfig::default()).unwrap();
        let whats: Vec<&str> = out.regressions.iter().map(|r| r.what.as_str()).collect();
        assert_eq!(
            whats,
            vec![
                "counter:autobias_core_subsume_domain_words_total",
                "counter:autobias_core_subsume_components_split_total",
            ],
            "{:?}",
            out.regressions
        );
        // Pruning off: the constraint-store counter reads zero.
        let out = compare(&base, &doc(5, 0), &CompareConfig::default()).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(
            out.regressions[0].what,
            "counter:autobias_core_candidates_pruned_by_constraint_total"
        );
    }

    #[test]
    fn silently_disabled_plan_stats_fail_the_qerror_gate() {
        let doc = |observations: u64| {
            Json::parse(&format!(
                r#"{{"dataset": "UW", "methods": {{
                    "http": {{
                        "achieved_rps": 900.0, "phases": {{}},
                        "counters": {{
                            "autobias_plan_estimate_qerror_count": {observations},
                            "autobias_plan_variant_selections_total": 0
                        }}
                    }}
                }}}}"#
            ))
            .unwrap()
        };
        let base = doc(480);
        // Any positive observation count passes — magnitudes track traffic.
        assert!(compare(&base, &doc(7), &CompareConfig::default())
            .unwrap()
            .passed());
        // Zero means AUTOBIAS_PLAN_STATS was (accidentally) off under load.
        let out = compare(&base, &doc(0), &CompareConfig::default()).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(
            out.regressions[0].what,
            "counter:autobias_plan_estimate_qerror_count"
        );
        // Variant selections are recorded but never gated: a single-variant
        // plan legitimately reads zero.
        let out = compare(&doc(0), &doc(0), &CompareConfig::default()).unwrap();
        assert!(out.passed());
    }

    fn serve_doc(pps: f64, speedup: f64, p99: f64) -> Json {
        Json::parse(&format!(
            r#"{{"dataset": "UW", "methods": {{
                "compiled": {{
                    "predictions_per_sec": {pps}, "speedup": {speedup},
                    "phases": {{}}
                }},
                "http": {{
                    "achieved_rps": 900.0, "p99_us": {p99}, "p999_us": {p99},
                    "phases": {{}}
                }}
            }}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn serve_throughput_floors_and_latency_ceilings_gate() {
        let base = serve_doc(1_000_000.0, 40.0, 800.0);
        let out = compare(&base, &base, &CompareConfig::default()).unwrap();
        assert!(out.passed(), "{:?}", out.regressions);
        // compiled: pps + speedup; http: rps + p99 + p999.
        assert_eq!(out.checks, 5);

        // Halved tolerance-adjusted throughput and tripled tail latency fail.
        let slow = serve_doc(400_000.0, 15.0, 2500.0);
        let out = compare(&base, &slow, &CompareConfig::default()).unwrap();
        let whats: Vec<&str> = out.regressions.iter().map(|r| r.what.as_str()).collect();
        assert_eq!(
            whats,
            vec!["predictions_per_sec", "speedup", "p99_us", "p999_us"],
            "{:?}",
            out.regressions
        );

        // Within the 2× ratio band in both directions: passes.
        let ok = serve_doc(600_000.0, 25.0, 1500.0);
        assert!(compare(&base, &ok, &CompareConfig::default())
            .unwrap()
            .passed());

        // Missing serve metrics in the fresh run fail instead of vacuously
        // passing.
        let stripped = Json::parse(
            r#"{"dataset": "UW", "methods": {
                "compiled": {"phases": {}}, "http": {"phases": {}}
            }}"#,
        )
        .unwrap();
        let out = compare(&base, &stripped, &CompareConfig::default()).unwrap();
        assert_eq!(out.regressions.len(), 5);
        assert!(out.regressions.iter().all(|r| r.fresh.is_nan()));
    }

    #[test]
    fn structural_mismatches_are_errors_not_regressions() {
        let base = doc(10.0, 0.9, 4.0);
        let other = Json::parse(r#"{"dataset": "IMDB", "methods": {}}"#).unwrap();
        assert!(compare(&base, &other, &CompareConfig::default()).is_err());
        let empty = Json::parse(r#"{"dataset": "UW", "methods": {}}"#).unwrap();
        assert!(compare(&empty, &empty, &CompareConfig::default()).is_err());
        let errored =
            Json::parse(r#"{"dataset": "UW", "methods": {"Manual": {"error": "boom"}}}"#).unwrap();
        assert!(
            compare(&errored, &errored, &CompareConfig::default()).is_err(),
            "a baseline of only errors gates nothing"
        );
    }
}
