//! CI perf-regression gate: compares a fresh `BENCH_<dataset>.json` (from
//! `bench_json`) against a committed baseline and exits non-zero if any
//! method got materially slower or worse.
//!
//! Usage:
//!   bench_compare --baseline FILE --fresh FILE
//!                 [--tolerance 2.0] [--phase-tolerance 2.0]
//!                 [--min-phase-secs 0.01] [--quality-margin 0.05]
//!
//! Tolerances are ratios against the baseline (2.0 = "may take twice as
//! long"); CI runners are noisy, so keep them generous and treat this as a
//! tripwire for order-of-magnitude regressions, not a microbenchmark.

#![allow(clippy::unwrap_used)] // CLI/bench harness: fail fast

use autobias_bench::compare::{compare, CompareConfig};
use autobias_bench::harness::Args;
use obs::json::Json;
use std::process::ExitCode;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &Args) -> Result<bool, String> {
    let baseline_path = args
        .get_str("--baseline")
        .ok_or("missing --baseline FILE")?;
    let fresh_path = args.get_str("--fresh").ok_or("missing --fresh FILE")?;
    let cfg = CompareConfig {
        time_tolerance: args.get("--tolerance", 2.0),
        phase_tolerance: args.get("--phase-tolerance", 2.0),
        min_phase_secs: args.get("--min-phase-secs", 0.01),
        quality_margin: args.get("--quality-margin", 0.05),
    };
    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;
    let outcome = compare(&baseline, &fresh, &cfg)?;
    println!(
        "comparing {fresh_path} against {baseline_path} \
         (time ≤ {}×, phases ≥ {:.3}s ≤ {}×, f-measure drop ≤ {}):",
        cfg.time_tolerance, cfg.min_phase_secs, cfg.phase_tolerance, cfg.quality_margin
    );
    for line in &outcome.lines {
        println!("  {line}");
    }
    if outcome.passed() {
        println!("{} check(s) passed", outcome.checks);
    } else {
        println!(
            "{} of {} check(s) regressed",
            outcome.regressions.len(),
            outcome.checks
        );
    }
    Ok(outcome.passed())
}

fn main() -> ExitCode {
    match run(&Args::parse()) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
