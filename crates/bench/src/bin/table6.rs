//! Regenerates **Table 6** of the paper: F-measure and learning time of the
//! three sampling techniques (naïve, random over semi-joins, stratified) over
//! the five datasets, with the AutoBias-induced bias.
//!
//! ```text
//! cargo run -p autobias-bench --bin table6 --release
//!   [--dataset NAME] [--folds K] [--budget SECS] [--seed N] [--repeats R]
//! ```
//!
//! The paper runs random and stratified 5 times and averages; `--repeats`
//! controls that (default 3 to keep the default run quick).

#![allow(clippy::unwrap_used)] // CLI/bench harness: fail fast

use autobias::bottom::SamplingStrategy;
use autobias_bench::harness::{
    fmt_duration, run_table6_cell, selected_datasets, Args, HarnessConfig,
};
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let h = HarnessConfig {
        folds: args.get("--folds", 5),
        budget: Duration::from_secs(args.get("--budget", 120)),
        seed: args.get("--seed", 7),
        ..HarnessConfig::default()
    };
    let repeats = args.get("--repeats", 3usize);
    let datasets = selected_datasets(&args, h.seed);

    let strategies = [
        (
            "Naive",
            SamplingStrategy::Naive {
                per_selection: h.sample_per_mode,
            },
            1,
        ),
        (
            "Random",
            SamplingStrategy::Random {
                per_selection: h.sample_per_mode,
                oversample: 10,
            },
            repeats,
        ),
        (
            "Stratified",
            SamplingStrategy::Stratified { per_stratum: 2 },
            repeats,
        ),
    ];

    println!("Table 6: Results of different sampling techniques");
    println!(
        "(reproduction; {} folds, randomized strategies averaged over {repeats} runs)\n",
        h.folds
    );
    println!(
        "{:<6} {:<8} {:>10} {:>10} {:>10}",
        "Data", "Measure", "Naive", "Random", "Stratified"
    );

    for ds in &datasets {
        eprintln!("# {}", ds.summary());
        let cells: Vec<_> = strategies
            .iter()
            .map(|(name, s, reps)| {
                eprintln!("#   running {name} ...");
                run_table6_cell(ds, *s, &h, *reps)
            })
            .collect();
        println!("{:<6}", ds.name);
        let mut fm_line = format!("{:<6} {:<8}", "", "FM");
        let mut t_line = format!("{:<6} {:<8}", "", "Time");
        for c in &cells {
            match c {
                Ok(c) => {
                    // Partial (budget-clipped) results keep their F-measure;
                    // the ">" on the time row marks the clip.
                    let fm = if c.timed_out && c.f_measure == 0.0 {
                        "-".into()
                    } else {
                        format!("{:.2}", c.f_measure)
                    };
                    fm_line.push_str(&format!(" {fm:>10}"));
                    t_line.push_str(&format!(" {:>10}", fmt_duration(c.time, c.timed_out)));
                }
                Err(e) => {
                    fm_line.push_str(&format!(" err:{e:.6}"));
                    t_line.push_str(" -");
                }
            }
        }
        println!("{fm_line}");
        println!("{t_line}\n");
    }
}
