//! Internal profiling helper: one fold of AutoBias on UW with stage timings.
#![allow(clippy::unwrap_used)] // profiling harness: fail fast

use autobias::bias::auto::{induce_bias, AutoBiasConfig, ConstantThreshold};
use autobias::bottom::{build_bottom_clause, BcConfig, SamplingStrategy};
use autobias::eval::kfold_splits;
use autobias::learn::{Learner, LearnerConfig};
use datasets::uw::{generate, UwConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let ds = generate(&UwConfig::default(), 7);
    // Mirror the harness: absolute constant-threshold (DESIGN.md §7a).
    let cfg = AutoBiasConfig {
        constant_threshold: ConstantThreshold::Absolute(50),
        ..AutoBiasConfig::default()
    };
    let (bias, _, _) = induce_bias(&ds.db, ds.target, &cfg).unwrap();
    let bc = BcConfig {
        depth: 2,
        strategy: SamplingStrategy::Naive { per_selection: 20 },
        max_body_literals: 100_000,
        max_tuples: 3000,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let b = build_bottom_clause(&ds.db, &bias, &ds.pos[0], &bc, &mut rng);
    println!(
        "AutoBias BC: {} body literals, {} ground literals",
        b.clause.len(),
        b.ground.len()
    );
    let mb = ds.manual_bias().unwrap();
    let b2 = build_bottom_clause(&ds.db, &mb, &ds.pos[0], &bc, &mut rng);
    println!(
        "Manual   BC: {} body literals, {} ground literals",
        b2.clause.len(),
        b2.ground.len()
    );

    let splits = kfold_splits(&ds.pos, &ds.neg, 5, 7);
    let (train, _) = &splits[0];
    let cfg = LearnerConfig {
        bc,
        seed: 7,
        ..LearnerConfig::default()
    };
    let t0 = Instant::now();
    let (def, stats) = Learner::new(cfg).learn(&ds.db, &bias, train);
    println!(
        "learn total {:?}: bc_time {:?}, search_time {:?}, clauses {}, rejected {}, ground_lits {}",
        t0.elapsed(),
        stats.bc_time,
        stats.search_time,
        def.len(),
        stats.rejected_clauses,
        stats.ground_literals
    );
    println!("{}", def.render(&ds.db));
}
