//! `bench_serve` — serving benchmark with latency SLO gates, writing a
//! `BENCH_serve_<dataset>.json` trajectory file for `bench_compare`.
//!
//! Two measurements over the same dataset + model:
//!
//! 1. **Engine comparison** (in-process): batch predictions per second
//!    through the compiled plans vs. the interpreter, on the same example
//!    pool in the same process — the `speedup` ratio is the headline number
//!    the plan compiler exists for.
//! 2. **HTTP load** (open loop): boots the real server in-process, drives
//!    batch `/predict` over `--connections` keep-alive connections at a
//!    fixed target rate, and reports achieved throughput and p50/p99/p999
//!    latency. Requests are claimed from a global tick counter and latency
//!    is measured from each tick's *scheduled* time, so a stalled server
//!    accrues the queueing delay it caused (no coordinated omission).
//!
//! Usage:
//!   bench_serve --data DIR --models DIR [--model NAME] [--rate RPS]
//!               [--duration-secs S] [--connections C] [--batch B]
//!               [--threads T] [--out FILE] [--measure-secs S]
//!               [--min-speedup X] [--max-p99-ms MS]
//!
//! Exits non-zero when an SLO is violated: `speedup < --min-speedup`
//! (default 10×) or `p99 > --max-p99-ms` (default 50 ms).

#![allow(clippy::unwrap_used)] // bench harness: fail fast on broken setup

use autobias::query::{clause_covers_args, definition_covers_args, EvalScratch, QueryConfig};
use autobias_bench::harness::Args;
use autobias_serve::http::read_response_head;
use autobias_serve::{serve, ServeConfig};
use obs::chrome::json_escape;
use relstore::Const;
use std::fmt::Write as _;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One-shot request on a fresh `Connection: close` socket — used for setup
/// and teardown so it never pins a pool worker the way a held keep-alive
/// connection does.
fn oneshot(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).unwrap();
    conn.write_all(body.as_bytes()).unwrap();
    conn.flush().unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// One keep-alive connection issuing sequential `/predict` requests.
struct Client {
    write_half: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_nodelay(true).ok();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let read_half = conn.try_clone().expect("clone socket");
        Self {
            write_half: conn,
            reader: BufReader::new(read_half),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.write_half.write_all(head.as_bytes())?;
        self.write_half.write_all(body.as_bytes())?;
        self.write_half.flush()?;
        let (status, headers) = read_response_head(&mut self.reader)
            .map_err(|e| std::io::Error::other(format!("response head: {e}")))?;
        let len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .expect("content-length on fixed responses");
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok((status, String::from_utf8(body).unwrap()))
    }

    /// Issues the request, transparently reconnecting once if the server
    /// rotated the connection (it closes keep-alive connections after
    /// `MAX_REQUESTS_PER_CONN` requests). The reconnect cost lands in this
    /// request's measured latency, as it would for any real client.
    fn request(&mut self, addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        match self.try_request(method, path, body) {
            Ok(r) => r,
            Err(_) => {
                *self = Client::connect(addr);
                self.try_request(method, path, body)
                    .expect("request after reconnect")
            }
        }
    }
}

/// `q`-th percentile (0..1) of sorted `lat` (µs).
fn percentile(lat: &[u64], q: f64) -> u64 {
    if lat.is_empty() {
        return 0;
    }
    let idx = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len()) - 1;
    lat[idx]
}

/// Runs `eval` over the whole pool repeatedly until `measure_secs` of wall
/// clock have elapsed (whole passes only, at least one); returns
/// (predictions, elapsed).
fn measure_passes(pool_len: usize, measure_secs: f64, mut eval: impl FnMut()) -> (usize, Duration) {
    let t0 = Instant::now();
    let mut n = 0usize;
    loop {
        eval();
        n += pool_len;
        if t0.elapsed().as_secs_f64() >= measure_secs {
            return (n, t0.elapsed());
        }
    }
}

fn metrics_sample(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map_or(0, |v| v as u64)
}

fn main() -> ExitCode {
    let args = Args::parse();
    let data = PathBuf::from(args.get_str("--data").expect("--data DIR is required"));
    let models = PathBuf::from(args.get_str("--models").expect("--models DIR is required"));
    let model = args.get_str("--model").unwrap_or("coauthor").to_string();
    let rate: f64 = args.get("--rate", 500.0);
    let duration_secs: f64 = args.get("--duration-secs", 10.0);
    let connections: usize = args.get("--connections", 4);
    let batch: usize = args.get("--batch", 64);
    let threads: usize = args.get("--threads", 4);
    let measure_secs: f64 = args.get("--measure-secs", 1.0);
    let min_speedup: f64 = args.get("--min-speedup", 10.0);
    let max_p99_ms: f64 = args.get("--max-p99-ms", 50.0);
    let out = PathBuf::from(args.get_str("--out").unwrap_or("BENCH_serve_uw.json"));

    // --- shared setup: dataset, model, example pool -----------------------
    let ds = datasets::io::load_dataset(&data).expect("load dataset");
    let model_text =
        std::fs::read_to_string(models.join(format!("{model}.model"))).expect("read model file");
    let (definition, _unknown) =
        autobias::clause_text::parse_definition_frozen(&ds.db, &model_text).expect("parse model");
    let rel = definition
        .clauses
        .first()
        .map(|c| c.head.rel)
        .unwrap_or(ds.target);
    let pool: Vec<Vec<Const>> = ds
        .pos
        .iter()
        .chain(ds.neg.iter())
        .map(|e| e.args.to_vec())
        .collect();
    assert!(!pool.is_empty(), "dataset has no examples to predict on");
    println!(
        "pool: {} tuples; model {model}: {} clause(s)",
        pool.len(),
        definition.len()
    );

    // --- phase 1: compiled vs. interpreted engine throughput --------------
    let plans = plan::compile_definition(&ds.db, &definition, &plan::CompileConfig::default());
    println!(
        "plan: {} compiled, {} declined",
        plans.num_compiled(),
        plans.num_declined()
    );
    let qcfg = QueryConfig::default();

    let mut scratch = EvalScratch::default();
    let (n_int, t_int) = measure_passes(pool.len(), measure_secs, || {
        for args in &pool {
            std::hint::black_box(definition_covers_args(
                &ds.db,
                &definition,
                rel,
                args,
                &qcfg,
                &mut scratch,
            ));
        }
    });
    let interpreted_pps = n_int as f64 / t_int.as_secs_f64();

    // The exact /predict recipe: compiled disjunction first, interpreter
    // only for clauses the compiler declined.
    let mut exec = plan::ExecScratch::default();
    let (n_cmp, t_cmp) = measure_passes(pool.len(), measure_secs, || {
        for args in &pool {
            let mut covered = plans.covers_compiled_with(&ds.db, args, &mut exec);
            if !covered && !plans.is_fully_compiled() {
                covered = plans.declined().iter().any(|&(i, _)| {
                    clause_covers_args(
                        &ds.db,
                        &definition.clauses[i],
                        rel,
                        args,
                        &qcfg,
                        &mut scratch,
                    )
                });
            }
            std::hint::black_box(covered);
        }
    });
    let compiled_pps = n_cmp as f64 / t_cmp.as_secs_f64();
    let speedup = compiled_pps / interpreted_pps;
    println!(
        "engine: interpreted {interpreted_pps:.0}/s ({n_int} preds), \
         compiled {compiled_pps:.0}/s ({n_cmp} preds), speedup {speedup:.1}x"
    );

    // --- phase 2: open-loop HTTP load over keep-alive connections ---------
    // Each held keep-alive connection occupies one pool worker for its
    // lifetime, so the server needs at least one worker per load connection.
    let threads = threads.max(connections);
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: data.clone(),
        models_dir: models.clone(),
        threads,
        access_log: None,
        // The HTTP phase measures the untraced fast path (one relaxed load
        // per span site), so the bench_compare gate against the committed
        // baseline holds request tracing to zero overhead when off.
        request_trace: false,
    };
    let (handle, report) = serve(&cfg).expect("server boots");
    assert!(
        report.loaded.contains(&model),
        "model {model} not loaded (loaded: {:?})",
        report.loaded
    );
    let addr = handle.addr();

    let mut body = format!("model {model}\n");
    for i in 0..batch {
        let args = &pool[i % pool.len()];
        let fields: Vec<&str> = args.iter().map(|&c| ds.db.const_name(c)).collect();
        body.push_str(&fields.join(","));
        body.push('\n');
    }
    // Warm-up / sanity: the batch answers with one verdict per tuple.
    let (status, first) = oneshot(addr, "POST", "/predict", &body);
    assert_eq!(status, 200, "predict failed: {first}");
    assert_eq!(first.lines().count(), batch);

    let total_ticks = (rate * duration_secs).ceil() as usize;
    let next_tick = AtomicUsize::new(0);
    let start = Instant::now() + Duration::from_millis(50);
    let t_load = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                let body = &body;
                let next_tick = &next_tick;
                s.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut lat = Vec::new();
                    loop {
                        let i = next_tick.fetch_add(1, Ordering::Relaxed);
                        if i >= total_ticks {
                            break;
                        }
                        let sched = start + Duration::from_secs_f64(i as f64 / rate);
                        std::thread::sleep(sched.saturating_duration_since(Instant::now()));
                        let (status, _) = client.request(addr, "POST", "/predict", body);
                        assert_eq!(status, 200);
                        // From the *scheduled* tick, not the send: queueing
                        // delay behind a slow server counts against it.
                        lat.push(sched.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load worker"))
            .collect()
    });
    let elapsed = t_load.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let requests = latencies.len();
    let achieved_rps = requests as f64 / elapsed;
    let (p50, p99, p999) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        percentile(&latencies, 0.999),
    );
    println!(
        "http: {requests} requests in {elapsed:.2}s (target {rate:.0}/s, achieved \
         {achieved_rps:.0}/s), p50 {p50}us p99 {p99}us p999 {p999}us"
    );

    let (status, metrics) = oneshot(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let plan_compiled = metrics_sample(&metrics, "autobias_plan_compiled_total");
    let keepalive_reuses = metrics_sample(&metrics, "autobias_http_keepalive_reuses_total");
    let predict_tuples = metrics_sample(&metrics, "autobias_predict_tuples_total");
    // Plan-observability counters: q-error observations prove the per-op
    // stats pipeline stayed engaged under load; variant selections only move
    // on multi-variant plans, so they are recorded but not gated.
    let qerror_observations = metrics_sample(&metrics, "autobias_plan_estimate_qerror_count");
    let variant_selections = metrics_sample(&metrics, "autobias_plan_variant_selections_total");
    let (status, _) = oneshot(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join();

    // --- trajectory file ---------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    writeln!(json, "  \"dataset\": \"{}\",", json_escape(ds.name)).unwrap();
    writeln!(json, "  \"model\": \"{}\",", json_escape(&model)).unwrap();
    writeln!(json, "  \"pool_tuples\": {},", pool.len()).unwrap();
    writeln!(json, "  \"batch\": {batch},").unwrap();
    writeln!(json, "  \"connections\": {connections},").unwrap();
    writeln!(json, "  \"threads\": {threads},").unwrap();
    writeln!(json, "  \"target_rps\": {rate:.1},").unwrap();
    writeln!(json, "  \"duration_secs\": {duration_secs:.1},").unwrap();
    json.push_str("  \"methods\": {\n");
    writeln!(json, "    \"interpreted\": {{").unwrap();
    writeln!(json, "      \"predictions_per_sec\": {interpreted_pps:.1},").unwrap();
    writeln!(json, "      \"predictions\": {n_int},").unwrap();
    writeln!(json, "      \"phases\": {{}}").unwrap();
    writeln!(json, "    }},").unwrap();
    writeln!(json, "    \"compiled\": {{").unwrap();
    writeln!(json, "      \"predictions_per_sec\": {compiled_pps:.1},").unwrap();
    writeln!(json, "      \"predictions\": {n_cmp},").unwrap();
    writeln!(json, "      \"speedup\": {speedup:.2},").unwrap();
    writeln!(json, "      \"phases\": {{}}").unwrap();
    writeln!(json, "    }},").unwrap();
    writeln!(json, "    \"http\": {{").unwrap();
    writeln!(json, "      \"request_trace\": false,").unwrap();
    writeln!(json, "      \"achieved_rps\": {achieved_rps:.1},").unwrap();
    writeln!(json, "      \"requests\": {requests},").unwrap();
    writeln!(json, "      \"p50_us\": {p50},").unwrap();
    writeln!(json, "      \"p99_us\": {p99},").unwrap();
    writeln!(json, "      \"p999_us\": {p999},").unwrap();
    writeln!(json, "      \"phases\": {{}},").unwrap();
    writeln!(json, "      \"counters\": {{").unwrap();
    writeln!(
        json,
        "        \"autobias_plan_compiled_total\": {plan_compiled},"
    )
    .unwrap();
    writeln!(
        json,
        "        \"autobias_http_keepalive_reuses_total\": {keepalive_reuses},"
    )
    .unwrap();
    writeln!(
        json,
        "        \"autobias_predict_tuples_total\": {predict_tuples},"
    )
    .unwrap();
    writeln!(
        json,
        "        \"autobias_plan_estimate_qerror_count\": {qerror_observations},"
    )
    .unwrap();
    writeln!(
        json,
        "        \"autobias_plan_variant_selections_total\": {variant_selections}"
    )
    .unwrap();
    writeln!(json, "      }}").unwrap();
    writeln!(json, "    }}").unwrap();
    json.push_str("  }\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("wrote {}", out.display());

    // --- SLO gates ---------------------------------------------------------
    let mut failed = false;
    if speedup < min_speedup {
        eprintln!("SLO VIOLATION: compiled/interpreted speedup {speedup:.1}x < {min_speedup}x");
        failed = true;
    }
    let p99_ms = p99 as f64 / 1000.0;
    if p99_ms > max_p99_ms {
        eprintln!("SLO VIOLATION: p99 {p99_ms:.2}ms > {max_p99_ms}ms");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("SLOs met: speedup {speedup:.1}x >= {min_speedup}x, p99 {p99_ms:.2}ms <= {max_p99_ms}ms");
        ExitCode::SUCCESS
    }
}
