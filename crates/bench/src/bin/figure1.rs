//! Regenerates **Figure 1** (the UW type graph with exact and approximate
//! IND edges) and the induced predicate/mode definitions of Table 3's shape.
//!
//! The figure's key property is printed and checked: `publication[person]`
//! inherits both the student type and the professor type through approximate
//! INDs, while `student[stud]` and `professor[prof]` keep distinct types.
//!
//! ```text
//! cargo run -p autobias-bench --bin figure1 --release [--seed N]
//! ```

#![allow(clippy::unwrap_used)] // CLI/bench harness: fail fast

use autobias::bias::auto::{induce_bias, AutoBiasConfig};
use autobias_bench::harness::Args;
use datasets::uw::{self, UwConfig};
use relstore::AttrRef;

fn main() {
    let args = Args::parse();
    let ds = uw::generate(&UwConfig::default(), args.get("--seed", 7));

    println!("Figure 1: type graph for the UW data");
    println!("(solid = exact INDs, dashed = approximate INDs)\n");

    let (bias, graph, stats) =
        induce_bias(&ds.db, ds.target, &AutoBiasConfig::default()).expect("bias induction");

    // Print only edges touching the Figure 1 attributes to keep it readable;
    // pass --full for the whole graph.
    let focus = ["student", "professor", "publication", "inPhase", "ta"];
    let full = args.has("--full");
    for e in &graph.edges {
        let from = ds.db.catalog().attr_name(e.from);
        let to = ds.db.catalog().attr_name(e.to);
        if full
            || focus.iter().any(|f| from.starts_with(f)) && focus.iter().any(|f| to.starts_with(f))
        {
            let style = if e.is_exact() {
                "──exact──▶"
            } else {
                "┄┄approx┄▶"
            };
            println!("  {from:<24} {style} {to}");
        }
    }

    println!("\nType assignments (focus attributes):");
    let attr = |rel: &str, a: &str| {
        let r = ds.db.rel_id(rel).unwrap();
        AttrRef::new(r, ds.db.catalog().schema(r).attr_pos(a).unwrap())
    };
    for (rel, a) in [
        ("student", "stud"),
        ("professor", "prof"),
        ("inPhase", "stud"),
        ("ta", "stud"),
        ("publication", "title"),
        ("publication", "person"),
        ("advisedBy", "stud"),
        ("advisedBy", "prof"),
    ] {
        let ar = attr(rel, a);
        let labels: Vec<String> = graph.types_of(ar).iter().map(|t| t.label()).collect();
        println!("  types({}[{}]) = {{{}}}", rel, a, labels.join(", "));
    }

    // The property Figure 1 illustrates:
    let author = attr("publication", "person");
    let stud = attr("student", "stud");
    let prof = attr("professor", "prof");
    println!("\nFigure 1 checks:");
    println!(
        "  publication[person] joinable with student[stud]:   {}",
        graph.share_type(author, stud)
    );
    println!(
        "  publication[person] joinable with professor[prof]: {}",
        graph.share_type(author, prof)
    );
    println!(
        "  student[stud] joinable with professor[prof]:       {}",
        graph.share_type(stud, prof)
    );

    println!("\nInduced bias statistics (Table 3 analogue):");
    println!("  exact INDs:      {}", stats.exact_inds);
    println!("  approximate INDs:{}", stats.approx_inds);
    println!("  types:           {}", stats.num_types);
    println!("  predicate defs:  {}", stats.num_preds);
    println!("  mode defs:       {}", stats.num_modes);
    println!("  IND time:        {:?}", stats.ind_time);

    if args.has("--bias") {
        println!("\nFull induced bias:\n{}", bias.render(&ds.db));
    }
}
