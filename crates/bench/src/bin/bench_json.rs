//! Emits `BENCH_<dataset>.json` trajectory files: one Table-5 style cell per
//! method plus per-phase wall-clock timings from the obs recorder, so the
//! JSON output tracks phase-level (not just end-to-end) performance.
//!
//! Usage:
//!   bench_json [--dataset NAME] [--folds N] [--out-dir DIR]
//!
//! Each file holds, per method, the quality/time cell, a `"phases"` map
//! keyed by span name (`learn`, `learn.bc_build`, `bc.build`,
//! `learn.clause_search`, `coverage.theta`, ...) with count / total / mean /
//! max timings aggregated over all folds of that method's run, and a
//! `"counters"` map of registered-counter deltas over the run (cache hits,
//! skipped negative tests, deduped candidates, ...) so `bench_compare` can
//! gate on the caching machinery staying engaged, not just on wall-clock.

#![allow(clippy::unwrap_used)] // bench harness: fail fast on bad JSON

use autobias_bench::harness::{run_table5_cell, selected_datasets, Args, HarnessConfig, Method};
use obs::chrome::json_escape;
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let h = HarnessConfig {
        folds: args.get("--folds", 2),
        ..HarnessConfig::default()
    };
    let out_dir = std::path::PathBuf::from(args.get_str("--out-dir").unwrap_or("."));
    obs::enable_at_least(obs::Mode::Summary);

    for ds in selected_datasets(&args, h.seed) {
        let mut json = String::new();
        json.push_str("{\n");
        writeln!(json, "  \"dataset\": \"{}\",", json_escape(ds.name)).unwrap();
        writeln!(json, "  \"folds\": {},", h.folds).unwrap();
        writeln!(json, "  \"seed\": {},", h.seed).unwrap();
        json.push_str("  \"methods\": {\n");
        let methods = [Method::Manual, Method::AutoBias];
        for (i, m) in methods.iter().enumerate() {
            obs::reset();
            // Counter snapshot before the run: the per-method "counters" map
            // holds deltas, so methods don't see each other's work.
            let before: Vec<(&'static str, u64)> = obs::metrics::registered()
                .iter()
                .map(|c| (c.name(), c.get()))
                .collect();
            match run_table5_cell(&ds, *m, &h) {
                Ok(c) => {
                    writeln!(json, "    \"{}\": {{", json_escape(m.label())).unwrap();
                    writeln!(json, "      \"precision\": {:.4},", c.precision).unwrap();
                    writeln!(json, "      \"recall\": {:.4},", c.recall).unwrap();
                    writeln!(json, "      \"f_measure\": {:.4},", c.f_measure).unwrap();
                    writeln!(json, "      \"time_secs\": {:.6},", c.time.as_secs_f64()).unwrap();
                    writeln!(
                        json,
                        "      \"bias_time_secs\": {:.6},",
                        c.bias_time.as_secs_f64()
                    )
                    .unwrap();
                    writeln!(json, "      \"bias_size\": {},", c.bias_size).unwrap();
                    writeln!(json, "      \"timed_out\": {},", c.timed_out).unwrap();
                    json.push_str("      \"phases\": {\n");
                    let phases = obs::phase_snapshot();
                    for (j, p) in phases.iter().enumerate() {
                        write!(
                            json,
                            "        \"{}\": {{\"count\": {}, \"total_secs\": {:.6}, \
                             \"mean_us\": {}, \"max_us\": {}}}",
                            json_escape(p.name),
                            p.count,
                            p.total_secs(),
                            p.mean_us(),
                            p.max_us
                        )
                        .unwrap();
                        json.push_str(if j + 1 < phases.len() { ",\n" } else { "\n" });
                    }
                    json.push_str("      },\n");
                    // Registered-counter deltas over this method's run (zero
                    // deltas elided). Counters registered mid-run count from 0.
                    let deltas: Vec<(&'static str, u64)> = obs::metrics::registered()
                        .iter()
                        .map(|c| {
                            let prev = before
                                .iter()
                                .find(|(n, _)| *n == c.name())
                                .map_or(0, |&(_, v)| v);
                            (c.name(), c.get().saturating_sub(prev))
                        })
                        .filter(|&(_, d)| d != 0)
                        .collect();
                    json.push_str("      \"counters\": {\n");
                    for (j, (name, delta)) in deltas.iter().enumerate() {
                        write!(json, "        \"{}\": {}", json_escape(name), delta).unwrap();
                        json.push_str(if j + 1 < deltas.len() { ",\n" } else { "\n" });
                    }
                    json.push_str("      }\n");
                    json.push_str("    }");
                }
                Err(e) => {
                    write!(
                        json,
                        "    \"{}\": {{\"error\": \"{}\"}}",
                        json_escape(m.label()),
                        json_escape(&e)
                    )
                    .unwrap();
                }
            }
            json.push_str(if i + 1 < methods.len() { ",\n" } else { "\n" });
        }
        json.push_str("  }\n}\n");
        let path = out_dir.join(format!("BENCH_{}.json", ds.name));
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
}
