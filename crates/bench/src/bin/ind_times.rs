//! Regenerates the §6.1 preprocessing claim: "The preprocessing step to
//! extract INDs takes 1.2 seconds, 1.4 minutes, 7.8 minutes, 1 minute, and
//! 2.8 minutes over the UW, HIV, IMDb, FLT, and SYS respectively."
//!
//! Our datasets are scaled down, so absolute numbers are smaller; the shape
//! to check is the *ordering* (UW ≪ FLT < HIV/SYS < IMDb-ish, driven by
//! tuple count × attribute count).
//!
//! ```text
//! cargo run -p autobias-bench --bin ind_times --release [--dataset NAME]
//! ```

#![allow(clippy::unwrap_used)] // CLI/bench harness: fail fast

use autobias_bench::harness::{fmt_duration, selected_datasets, Args};
use constraints::{discover_inds, IndConfig};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let datasets = selected_datasets(&args, args.get("--seed", 7));

    println!("IND-extraction preprocessing times (paper §6.1)\n");
    println!(
        "{:<6} {:>10} {:>8} {:>12} {:>12} {:>12}",
        "Data", "tuples", "attrs", "exact INDs", "approx INDs", "time"
    );
    for ds in &datasets {
        let t0 = Instant::now();
        let inds = discover_inds(&ds.db, &IndConfig::default());
        let elapsed = t0.elapsed();
        let exact = inds.iter().filter(|i| i.is_exact()).count();
        let approx = inds.len() - exact;
        println!(
            "{:<6} {:>10} {:>8} {:>12} {:>12} {:>12}",
            ds.name,
            ds.db.total_tuples(),
            ds.db.catalog().all_attrs().len(),
            exact,
            approx,
            fmt_duration(elapsed, false)
        );
    }
}
