//! Quick end-to-end smoke run: one dataset, a couple of methods.
#![allow(clippy::unwrap_used)] // CLI/bench harness: fail fast

use autobias_bench::harness::{
    fmt_duration, run_table5_cell, selected_datasets, Args, HarnessConfig, Method,
};

fn main() {
    let args = Args::parse();
    let h = HarnessConfig {
        folds: args.get("--folds", 3),
        ..HarnessConfig::default()
    };
    for ds in selected_datasets(&args, h.seed) {
        println!("{}", ds.summary());
        for m in [Method::Manual, Method::AutoBias] {
            let t0 = std::time::Instant::now();
            match run_table5_cell(&ds, m, &h) {
                Ok(c) => println!(
                    "  {:<10} P={:.2} R={:.2} FM={:.2} time={} bias={} wall={:?}",
                    m.label(),
                    c.precision,
                    c.recall,
                    c.f_measure,
                    fmt_duration(c.time, c.timed_out),
                    c.bias_size,
                    t0.elapsed()
                ),
                Err(e) => println!("  {:<10} ERROR: {e}", m.label()),
            }
        }
    }
}
