//! Regenerates **Table 5** of the paper: precision / recall / F-measure /
//! learning time for the five language-bias methods over the five datasets.
//!
//! ```text
//! cargo run -p autobias-bench --bin table5 --release
//!   [--dataset UW|HIV|IMDb|FLT|SYS]   run a single dataset
//!   [--folds K]                       CV folds        (default 5)
//!   [--budget SECS]                   per-fold budget (default 120)
//!   [--seed N]                        RNG seed        (default 7)
//! ```
//!
//! Also prints the bias-size comparison from §6.2 (AutoBias generates ~30%
//! more definitions than the expert on IMDb).

#![allow(clippy::unwrap_used)] // CLI/bench harness: fail fast

use autobias_bench::harness::{
    fmt_duration, run_table5_cell, selected_datasets, Args, HarnessConfig, Method,
};
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let h = HarnessConfig {
        folds: args.get("--folds", 5),
        budget: Duration::from_secs(args.get("--budget", 120)),
        seed: args.get("--seed", 7),
        ..HarnessConfig::default()
    };
    let datasets = selected_datasets(&args, h.seed);
    let methods: &[Method] = if args.has("--extended") {
        &Method::EXTENDED
    } else {
        &Method::ALL
    };

    println!("Table 5: Results of different methods of setting language bias");
    println!(
        "(reproduction; per-fold budget {}s, {} folds)\n",
        h.budget.as_secs(),
        h.folds
    );
    {
        let mut header = format!("{:<6} {:<8}", "Data", "Measure");
        for m in methods {
            header.push_str(&format!(" {:>10}", m.label()));
        }
        println!("{header}");
    }

    for ds in &datasets {
        eprintln!("# {}", ds.summary());
        let cells: Vec<_> = methods
            .iter()
            .map(|&m| {
                eprintln!("#   running {} ...", m.label());
                run_table5_cell(ds, m, &h)
            })
            .collect();

        // A timed-out cell still reports the partial definition's quality
        // (the ">" on the time row marks the clip); "-" is reserved for
        // cells that produced nothing at all, like the paper's killed runs.
        let fmt_num = |v: f64, timed_out: bool| {
            if timed_out && v == 0.0 {
                "-".to_string()
            } else {
                format!("{v:.2}")
            }
        };
        let row = |measure: &str, f: &dyn Fn(&autobias_bench::harness::Cell) -> String| {
            let mut line = format!("{:<6} {:<8}", "", measure);
            for c in &cells {
                let s = match c {
                    Ok(c) => f(c),
                    Err(e) => format!("err:{e:.8}"),
                };
                line.push_str(&format!(" {s:>10}"));
            }
            line
        };
        println!("{:<6}", ds.name);
        println!("{}", row("Prec.", &|c| fmt_num(c.precision, c.timed_out)));
        println!("{}", row("Recall", &|c| fmt_num(c.recall, c.timed_out)));
        println!("{}", row("FM", &|c| fmt_num(c.f_measure, c.timed_out)));
        println!("{}", row("Time", &|c| fmt_duration(c.time, c.timed_out)));

        // §6.2: bias sizes (manual vs induced).
        if let (Ok(manual), Ok(auto)) = (&cells[2], &cells[4]) {
            println!(
                "{:<6} bias-size manual={} autobias={} ({:+.0}%)  ind+bias time={}",
                "",
                manual.bias_size,
                auto.bias_size,
                100.0 * (auto.bias_size as f64 - manual.bias_size as f64) / manual.bias_size as f64,
                fmt_duration(auto.bias_time, false),
            );
        }
        println!();
    }
}
