//! Bench: bottom-clause construction time under the four sampling strategies
//! (paper §4 — the motivation for sampling is that full BC construction is
//! linear in the database and too slow on large data).

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias::bottom::{build_bottom_clause, BcConfig, SamplingStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::uw::{generate, UwConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let ds = generate(&UwConfig::default(), 42);
    let bias = ds.manual_bias().expect("bias");
    let example = ds.pos[0].clone();

    let mut group = c.benchmark_group("bc_construction/strategy");
    let strategies = [
        ("full", SamplingStrategy::Full),
        ("naive", SamplingStrategy::Naive { per_selection: 20 }),
        (
            "random",
            SamplingStrategy::Random {
                per_selection: 20,
                oversample: 10,
            },
        ),
        (
            "stratified",
            SamplingStrategy::Stratified { per_stratum: 2 },
        ),
    ];
    for (name, strategy) in strategies {
        let cfg = BcConfig {
            depth: 2,
            strategy,
            max_body_literals: 100_000,
            max_tuples: 10_000,
        };
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                black_box(build_bottom_clause(
                    &ds.db,
                    &bias,
                    black_box(&example),
                    &cfg,
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // How full vs naive construction scales with database size.
    let mut group = c.benchmark_group("bc_construction/db_size");
    group.sample_size(20);
    for scale in [1usize, 4, 16] {
        let cfg_ds = UwConfig {
            students: 150 * scale,
            professors: 45 * scale,
            courses: 60 * scale,
            advised_pairs: 102,
            noise_publications: 60 * scale,
            ..UwConfig::default()
        };
        let ds = generate(&cfg_ds, 42);
        let bias = ds.manual_bias().expect("bias");
        let example = ds.pos[0].clone();
        for (name, strategy) in [
            ("full", SamplingStrategy::Full),
            ("naive", SamplingStrategy::Naive { per_selection: 20 }),
        ] {
            let cfg = BcConfig {
                depth: 2,
                strategy,
                max_body_literals: 100_000,
                max_tuples: 100_000,
            };
            group.bench_with_input(
                BenchmarkId::new(name, ds.db.total_tuples()),
                &ds,
                |b, ds| {
                    let mut rng = StdRng::seed_from_u64(1);
                    b.iter(|| {
                        black_box(build_bottom_clause(&ds.db, &bias, &example, &cfg, &mut rng))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_scaling);
criterion_main!(benches);
