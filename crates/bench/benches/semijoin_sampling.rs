//! Bench: the §4.2.3 question — sampling a semi-join by materialize-then-
//! sample vs Olken-style accept–reject using the index statistics.
//!
//! On skewed data the accept–reject sampler touches O(k · M/m̄) tuples
//! instead of the whole semi-join result, which is the paper's argument for
//! not materializing `I_e`.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use relstore::{algebra, AttrRef, Const, Database, FxHashSet, TupleId};
use std::hint::black_box;

/// Builds a skewed binary relation: `n` tuples over `values` distinct join
/// keys with a Zipf-ish distribution (a few very hot keys).
fn skewed_db(n: usize, values: usize, seed: u64) -> (Database, Vec<Const>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let r = db.add_relation("edges", &["key", "payload"]);
    for i in 0..n {
        // Quadratic skew: low keys are much more frequent.
        let u: f64 = rng.random_range(0.0..1.0);
        let key = ((u * u) * values as f64) as usize;
        db.insert(r, &[&format!("k{key}"), &format!("p{i}")]);
    }
    db.build_indexes();
    let keys: Vec<Const> = (0..values)
        .filter_map(|k| db.lookup(&format!("k{k}")))
        .collect();
    (db, keys)
}

fn materialize_then_sample(
    db: &Database,
    attr: AttrRef,
    left: &FxHashSet<Const>,
    k: usize,
    rng: &mut StdRng,
) -> Vec<TupleId> {
    let mut all = algebra::select_in(db, attr, left);
    // Partial Fisher–Yates for the first k.
    let take = k.min(all.len());
    for i in 0..take {
        let j = rng.random_range(i..all.len());
        all.swap(i, j);
    }
    all.truncate(take);
    all
}

fn olken_sample(
    db: &Database,
    attr: AttrRef,
    left: &[Const],
    k: usize,
    rng: &mut StdRng,
) -> Vec<TupleId> {
    let idx = db
        .relation(attr.rel)
        .index(attr.pos as usize)
        .expect("index");
    let max = idx.max_freq();
    let mut out = Vec::with_capacity(k);
    let mut seen = FxHashSet::default();
    let budget = k * 20;
    for _ in 0..budget {
        if out.len() >= k {
            break;
        }
        let a = left[rng.random_range(0..left.len())];
        let ts = idx.lookup(a);
        if ts.is_empty() {
            continue;
        }
        let t = ts[rng.random_range(0..ts.len())];
        if rng.random_range(0.0..1.0) < ts.len() as f64 / max as f64 && seen.insert(t) {
            out.push(t);
        }
    }
    out
}

fn bench_semijoin(c: &mut Criterion) {
    let mut group = c.benchmark_group("semijoin_sampling");
    group.sample_size(30);
    for n in [10_000usize, 100_000] {
        let (db, keys) = skewed_db(n, 500, 9);
        let attr = AttrRef::new(db.rel_id("edges").unwrap(), 0);
        let left_set: FxHashSet<Const> = keys.iter().copied().collect();
        group.bench_with_input(
            BenchmarkId::new("materialize_then_sample", n),
            &db,
            |b, db| {
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| black_box(materialize_then_sample(db, attr, &left_set, 20, &mut rng)))
            },
        );
        group.bench_with_input(BenchmarkId::new("olken_accept_reject", n), &db, |b, db| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(olken_sample(db, attr, &keys, 20, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_semijoin);
criterion_main!(benches);
