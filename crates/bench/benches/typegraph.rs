//! Bench: Algorithm 3 (type-graph construction + propagation) vs schema
//! width and IND density.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use constraints::{build_type_graph, Ind, IndConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::uw::{generate, UwConfig};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use relstore::{AttrRef, Database, RelId};
use std::hint::black_box;

/// Synthetic wide schema with `rels` binary relations and random INDs.
fn synthetic(rels: usize, inds_per_attr: usize, seed: u64) -> (Database, Vec<Ind>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for i in 0..rels {
        db.add_relation(&format!("r{i}"), &["a", "b"]);
    }
    let attrs: Vec<AttrRef> = (0..rels)
        .flat_map(|i| {
            [
                AttrRef::new(RelId(i as u32), 0),
                AttrRef::new(RelId(i as u32), 1),
            ]
        })
        .collect();
    let mut inds = Vec::new();
    for &from in &attrs {
        for _ in 0..inds_per_attr {
            let to = attrs[rng.random_range(0..attrs.len())];
            if to != from {
                let error = if rng.random_range(0.0..1.0) < 0.5 {
                    0.0
                } else {
                    0.3
                };
                inds.push(Ind { from, to, error });
            }
        }
    }
    (db, inds)
}

fn bench_schema_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("typegraph/schema_width");
    for rels in [10usize, 50, 200] {
        let (db, inds) = synthetic(rels, 3, 13);
        group.bench_with_input(BenchmarkId::from_parameter(rels), &db, |b, db| {
            b.iter(|| black_box(build_type_graph(db, &inds)))
        });
    }
    group.finish();
}

fn bench_ind_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("typegraph/ind_density");
    for density in [1usize, 4, 16] {
        let (db, inds) = synthetic(50, density, 13);
        group.bench_with_input(BenchmarkId::from_parameter(inds.len()), &db, |b, db| {
            b.iter(|| black_box(build_type_graph(db, &inds)))
        });
    }
    group.finish();
}

fn bench_uw_end_to_end(c: &mut Criterion) {
    let ds = generate(&UwConfig::default(), 42);
    let inds = constraints::discover_inds(&ds.db, &IndConfig::default());
    c.bench_function("typegraph/uw", |b| {
        b.iter(|| black_box(build_type_graph(&ds.db, &inds)))
    });
}

criterion_group!(
    benches,
    bench_schema_width,
    bench_ind_density,
    bench_uw_end_to_end
);
criterion_main!(benches);
