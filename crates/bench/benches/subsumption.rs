//! Bench: θ-subsumption cost vs clause length and ground-BC size, and the
//! restart-budget ablation (paper §5 — coverage testing dominates learning).

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias::bottom::{GroundClause, GroundLiteral};
use autobias::clause::{Clause, Literal, Term, VarId};
use autobias::example::Example;
use autobias::subsume::{theta_subsumes, SubsumeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use relstore::{Const, RelId};
use std::hint::black_box;

/// Builds a chain-structured ground BC: head t(0, n); body r(i, i+1) edges of
/// a random graph over `n` nodes with `edges` edges, guaranteeing a path
/// 0 → 1 → … → n.
fn chain_ground(n: u32, extra_edges: usize, seed: u64) -> GroundClause {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = Vec::new();
    for i in 0..n {
        body.push(GroundLiteral {
            rel: RelId(0),
            vals: vec![Const(i), Const(i + 1)].into(),
        });
    }
    for _ in 0..extra_edges {
        let a = rng.random_range(0..=n);
        let b = rng.random_range(0..=n);
        body.push(GroundLiteral {
            rel: RelId(0),
            vals: vec![Const(a), Const(b)].into(),
        });
    }
    GroundClause::new(Example::new(RelId(9), vec![Const(0), Const(n)]), body)
}

/// A clause asking for a length-`k` chain from the head's first argument.
fn chain_clause(k: u32) -> Clause {
    let head = Literal::new(RelId(9), vec![Term::Var(VarId(0)), Term::Var(VarId(1))]);
    let mut body = Vec::new();
    let mut prev = VarId(0);
    for i in 0..k {
        let next = VarId(i + 2);
        body.push(Literal::new(
            RelId(0),
            vec![Term::Var(prev), Term::Var(next)],
        ));
        prev = next;
    }
    Clause::new(head, body)
}

fn bench_clause_length(c: &mut Criterion) {
    let ground = chain_ground(64, 128, 7);
    let mut group = c.benchmark_group("subsumption/clause_len");
    for k in [2u32, 8, 16, 32] {
        let clause = chain_clause(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &clause, |b, clause| {
            b.iter(|| {
                black_box(theta_subsumes(
                    black_box(clause),
                    &ground,
                    &SubsumeConfig::default(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_ground_size(c: &mut Criterion) {
    let clause = chain_clause(8);
    let mut group = c.benchmark_group("subsumption/ground_size");
    for n in [32u32, 128, 512] {
        let ground = chain_ground(n, (n * 2) as usize, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(ground.len()),
            &ground,
            |b, ground| {
                b.iter(|| black_box(theta_subsumes(&clause, ground, &SubsumeConfig::default())))
            },
        );
    }
    group.finish();
}

fn bench_restarts_ablation(c: &mut Criterion) {
    // An unsatisfiable instance: the chain must end on a constant that is
    // absent, forcing exhaustive search — where the node cutoff + restarts
    // trade completeness for time.
    let ground = chain_ground(48, 192, 11);
    let mut clause = chain_clause(10);
    // Demand the chain ends at a non-existent constant.
    clause.body.push(Literal::new(
        RelId(0),
        vec![Term::Var(VarId(11)), Term::Const(Const(9999))],
    ));

    let mut group = c.benchmark_group("subsumption/restarts");
    group.sample_size(10);
    for (name, cfg) in [
        (
            "cutoff_1k_restarts_3",
            SubsumeConfig {
                node_limit: 1_000,
                max_restarts: 3,
            },
        ),
        (
            "cutoff_20k_restarts_3",
            SubsumeConfig {
                node_limit: 20_000,
                max_restarts: 3,
            },
        ),
        (
            "cutoff_200k_restarts_0",
            SubsumeConfig {
                node_limit: 200_000,
                max_restarts: 0,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(theta_subsumes(&clause, &ground, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_clause_length,
    bench_ground_size,
    bench_restarts_ablation
);
criterion_main!(benches);
