//! Bench: the armg operator (paper §2.3.2) — blocking-atom search strategy
//! ablation (binary search vs linear scan) and armg cost vs bottom-clause
//! size.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias::bias::parse::parse_bias;
use autobias::bottom::{BcConfig, SamplingStrategy};
use autobias::coverage::CoverageEngine;
use autobias::example::TrainingSet;
use autobias::generalize::{armg, blocking_atom, blocking_atom_linear};
use autobias::subsume::SubsumeConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::uw::{generate, UwConfig};
use std::hint::black_box;

fn engine_with(per_selection: usize) -> (CoverageEngine, usize) {
    let ds = generate(
        &UwConfig {
            evidence_prob: 1.0,
            noise_coauthor_pairs: 0,
            ..UwConfig::default()
        },
        42,
    );
    let bias = parse_bias(&ds.db, ds.target, &ds.manual_bias_text).expect("bias");
    let train = TrainingSet::new(ds.pos.clone(), ds.neg.clone());
    let cfg = BcConfig {
        depth: 2,
        strategy: SamplingStrategy::Naive { per_selection },
        max_tuples: 3_000,
        max_body_literals: 100_000,
    };
    let engine = CoverageEngine::build(&ds.db, &bias, &train, &cfg, SubsumeConfig::default(), 1);
    // Find a positive the seed BC does not cover (armg has work to do).
    let seed_clause = engine.pos[0].clause.clone();
    let target = (1..engine.pos.len())
        .find(|&i| !engine.covers_pos(&seed_clause, i))
        .unwrap_or(1);
    (engine, target)
}

fn bench_blocking_atom(c: &mut Criterion) {
    let (engine, target) = engine_with(20);
    let clause = engine.pos[0].clause.clone();
    let mut group = c.benchmark_group("generalization/blocking_atom");
    group.sample_size(20);
    group.bench_function("binary_search", |b| {
        b.iter(|| black_box(blocking_atom(black_box(&clause), &engine, target)))
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| black_box(blocking_atom_linear(black_box(&clause), &engine, target)))
    });
    group.finish();
}

fn bench_armg_vs_bc_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("generalization/armg_bc_size");
    group.sample_size(10);
    for per_selection in [5usize, 20, 60] {
        let (engine, target) = engine_with(per_selection);
        let clause = engine.pos[0].clause.clone();
        group.bench_with_input(
            BenchmarkId::new(format!("bc_{}_lits", clause.len()), per_selection),
            &clause,
            |b, clause| b.iter(|| black_box(armg(black_box(clause), &engine, target))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_blocking_atom, bench_armg_vs_bc_size);
criterion_main!(benches);
