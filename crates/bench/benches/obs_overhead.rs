//! Bench: span-recording overhead across recorder modes.
//!
//! The obs layer's budget is "Off mode costs one relaxed atomic load per
//! span event" — instrumentation must be free when nobody is looking. This
//! bench runs the same small learn under `Mode::Off`, `Mode::Summary`, and
//! `Mode::Full` so the three wall-clocks can be compared directly; they
//! should agree within measurement noise.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias::example::TrainingSet;
use autobias::learn::Learner;
use autobias_bench::harness::{learner_config, HarnessConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::uw::{generate, UwConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_modes(c: &mut Criterion) {
    let ds = generate(
        &UwConfig {
            students: 30,
            professors: 10,
            courses: 12,
            advised_pairs: 18,
            negatives: 36,
            evidence_prob: 1.0,
            noise_coauthor_pairs: 0,
            ..UwConfig::default()
        },
        3,
    );
    let bias = ds.manual_bias().expect("bias");
    let train = TrainingSet::new(ds.pos.clone(), ds.neg.clone());
    let h = HarnessConfig {
        depth: 1,
        ..HarnessConfig::default()
    };
    let learner = Learner::new(learner_config(&h, Duration::from_secs(30)));

    let mut group = c.benchmark_group("obs/span_overhead");
    group.sample_size(10);
    for (label, mode) in [
        ("learn_off", obs::Mode::Off),
        ("learn_summary", obs::Mode::Summary),
        ("learn_full", obs::Mode::Full),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                obs::set_mode(mode);
                obs::reset();
                let (def, _stats) = learner.learn(black_box(&ds.db), &bias, &train);
                black_box(def)
            })
        });
    }
    obs::set_mode(obs::Mode::Off);
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
