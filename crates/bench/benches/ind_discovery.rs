//! Bench: Binder-style IND discovery vs data size, bucket count, and error
//! threshold (paper §3.1 / §6.1's preprocessing step).

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use constraints::{discover_inds, IndConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::uw::{generate, UwConfig};
use std::hint::black_box;

fn bench_data_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ind_discovery/db_size");
    group.sample_size(20);
    for scale in [1usize, 4, 16] {
        let ds = generate(
            &UwConfig {
                students: 150 * scale,
                professors: 45 * scale,
                courses: 60 * scale,
                noise_publications: 60 * scale,
                ..UwConfig::default()
            },
            42,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(ds.db.total_tuples()),
            &ds,
            |b, ds| b.iter(|| black_box(discover_inds(&ds.db, &IndConfig::default()))),
        );
    }
    group.finish();
}

fn bench_buckets(c: &mut Criterion) {
    let ds = generate(&UwConfig::default(), 42);
    let mut group = c.benchmark_group("ind_discovery/buckets");
    for buckets in [1usize, 16, 256] {
        let cfg = IndConfig {
            buckets,
            ..IndConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(buckets), &cfg, |b, cfg| {
            b.iter(|| black_box(discover_inds(&ds.db, cfg)))
        });
    }
    group.finish();
}

fn bench_exact_vs_approx(c: &mut Criterion) {
    let ds = generate(&UwConfig::default(), 42);
    let mut group = c.benchmark_group("ind_discovery/error_threshold");
    for (name, max_error) in [("exact_only", 0.0), ("alpha_0.5", 0.5), ("alpha_1.0", 1.0)] {
        let cfg = IndConfig {
            max_error,
            ..IndConfig::default()
        };
        group.bench_function(name, |b| b.iter(|| black_box(discover_inds(&ds.db, &cfg))));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_data_size,
    bench_buckets,
    bench_exact_vs_approx
);
criterion_main!(benches);
