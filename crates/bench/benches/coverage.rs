//! Bench: coverage testing via reusable ground bottom clauses (paper §5)
//! vs rebuilding the ground BC for every test, and sampled vs full ground
//! BCs — the two design decisions §5 argues for.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias::bottom::{build_bottom_clause, BcConfig, SamplingStrategy};
use autobias::coverage::CoverageEngine;
use autobias::example::TrainingSet;
use autobias::subsume::{theta_subsumes, SubsumeConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::uw::{generate, UwConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_reuse_vs_rebuild(c: &mut Criterion) {
    let ds = generate(&UwConfig::default(), 42);
    let bias = ds.manual_bias().expect("bias");
    let cfg = BcConfig {
        depth: 2,
        strategy: SamplingStrategy::Naive { per_selection: 20 },
        max_body_literals: 100_000,
        max_tuples: 3_000,
    };
    let train = TrainingSet::new(ds.pos.clone(), ds.neg.clone());
    let engine = CoverageEngine::build(&ds.db, &bias, &train, &cfg, SubsumeConfig::default(), 1);
    // A realistic candidate clause: the co-authorship rule.
    let clause = {
        let mut rng = StdRng::seed_from_u64(1);
        let bc = build_bottom_clause(&ds.db, &bias, &ds.pos[0], &cfg, &mut rng);
        bc.clause
    };

    let mut group = c.benchmark_group("coverage/reuse_vs_rebuild");
    group.sample_size(20);
    group.bench_function("reuse_ground_bcs", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..20 {
                if engine.covers_pos(black_box(&clause), i) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("rebuild_per_test", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..20 {
                let mut rng = StdRng::seed_from_u64(i as u64);
                let ground = build_bottom_clause(&ds.db, &bias, &ds.pos[i], &cfg, &mut rng).ground;
                if theta_subsumes(&clause, &ground, &SubsumeConfig::default()) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    // The paper's §5 strawman: translate the clause to a Select-Project-Join
    // query and run it against the full database for every test.
    group.bench_function("spj_query_per_test", |b| {
        let qcfg = autobias::query::QueryConfig::default();
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..20 {
                if autobias::query::clause_covers(&ds.db, black_box(&clause), &ds.pos[i], &qcfg) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_sampled_vs_full_ground(c: &mut Criterion) {
    let ds = generate(&UwConfig::default(), 42);
    let bias = ds.manual_bias().expect("bias");
    let train = TrainingSet::new(ds.pos.clone(), ds.neg.clone());
    let sampled_cfg = BcConfig {
        depth: 2,
        strategy: SamplingStrategy::Naive { per_selection: 20 },
        max_body_literals: 100_000,
        max_tuples: 3_000,
    };
    let full_cfg = BcConfig {
        depth: 2,
        strategy: SamplingStrategy::Full,
        max_body_literals: 100_000,
        max_tuples: 100_000,
    };
    let clause = {
        let mut rng = StdRng::seed_from_u64(1);
        build_bottom_clause(&ds.db, &bias, &ds.pos[0], &sampled_cfg, &mut rng).clause
    };

    let mut group = c.benchmark_group("coverage/ground_bc_kind");
    group.sample_size(10);
    for (name, cfg) in [("sampled", sampled_cfg), ("full", full_cfg)] {
        let engine =
            CoverageEngine::build(&ds.db, &bias, &train, &cfg, SubsumeConfig::default(), 1);
        group.bench_function(name, |b| {
            b.iter(|| {
                let idxs: Vec<usize> = (0..engine.pos.len()).collect();
                black_box(engine.covered_pos_subset(black_box(&clause), &idxs).len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reuse_vs_rebuild,
    bench_sampled_vs_full_ground
);
criterion_main!(benches);
