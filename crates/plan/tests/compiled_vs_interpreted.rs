//! Differential oracle for the plan compiler: on randomly generated
//! databases, a compiled clause's [`plan::CompiledClause::covers`] must
//! agree with the interpreter (`autobias::query::clause_covers`) on every
//! example — and at the definition level, the compiled disjunction plus
//! interpreter fallback for declined clauses must agree with
//! `definition_covers`. The clause generator deliberately produces shapes
//! the unit tests don't: disconnected bodies, repeated variables, body
//! constants, unbound ("free") variables, and self-joins.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point
#![cfg(not(miri))] // proptest-heavy: hundreds of cases, far too slow under miri

use autobias::clause::{Clause, Definition, Literal, Term, VarId};
use autobias::example::Example;
use autobias::query::{
    clause_covers, clause_covers_args, definition_covers, EvalScratch, QueryConfig,
};
use plan::{compile_clause, compile_definition, CompileConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::{Const, Database, RelId};

struct World {
    db: Database,
    examples: Vec<Example>,
    clauses: Vec<Clause>,
    seed: u64,
}

#[derive(Clone, Copy)]
struct Rels {
    r: RelId,
    s: RelId,
    u: RelId,
    t: RelId,
}

fn build_world(seed: u64, n_consts: usize, n_r: usize, n_s: usize) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let r = db.add_relation("r", &["a", "b"]);
    let s = db.add_relation("s", &["a", "b"]);
    let u = db.add_relation("u", &["a"]);
    let t = db.add_relation("t", &["a", "b"]);
    let rels = Rels { r, s, u, t };

    let names: Vec<String> = (0..n_consts).map(|i| format!("c{i}")).collect();
    // Intern every constant so examples and body constants can name it.
    for name in &names {
        db.insert(t, &[name, name]);
    }
    let pick = |rng: &mut StdRng| rng.random_range(0..n_consts);
    for _ in 0..n_r {
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        db.insert(r, &[&names[a], &names[b]]);
    }
    for _ in 0..n_s {
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        db.insert(s, &[&names[a], &names[b]]);
    }
    for name in &names {
        if rng.random_range(0..2u32) == 0 {
            db.insert(u, &[name]);
        }
    }
    db.build_indexes();

    let consts: Vec<Const> = names.iter().map(|n| db.lookup(n).unwrap()).collect();
    let examples: Vec<Example> = (0..6)
        .map(|_| {
            let (a, b) = (rng.random_range(0..n_consts), rng.random_range(0..n_consts));
            Example::new(t, vec![consts[a], consts[b]])
        })
        .collect();
    let clauses: Vec<Clause> = (0..6)
        .map(|_| random_clause(&mut rng, rels, &consts))
        .collect();
    World {
        db,
        examples,
        clauses,
        seed,
    }
}

/// A random clause with *no* language-bias discipline: any term of any body
/// literal is a variable drawn from a small pool (head vars included, so
/// some bodies connect to the head and some don't) or, occasionally, a
/// constant. This exercises disconnected components, free variables,
/// self-joins, and constant probes — everything the compiler's component
/// decomposition and op classification must get right.
fn random_clause(rng: &mut StdRng, rels: Rels, consts: &[Const]) -> Clause {
    let term = |rng: &mut StdRng| {
        if rng.random_range(0..5u32) == 0 {
            Term::Const(consts[rng.random_range(0..consts.len())])
        } else {
            // A pool of 5 variables over ≤4 body literals: collisions
            // (joins) are common, as are variables used exactly once.
            Term::Var(VarId(rng.random_range(0..5u32)))
        }
    };
    let mut body = Vec::new();
    for _ in 0..rng.random_range(0..=4usize) {
        match rng.random_range(0..3u32) {
            0 => {
                let (a, b) = (term(rng), term(rng));
                body.push(Literal::new(rels.r, vec![a, b]));
            }
            1 => {
                let (a, b) = (term(rng), term(rng));
                body.push(Literal::new(rels.s, vec![a, b]));
            }
            _ => {
                let a = term(rng);
                body.push(Literal::new(rels.u, vec![a]));
            }
        }
    }
    // Head is always t(V0, V1); body variables 2..5 are non-head.
    Clause::new(
        Literal::new(rels.t, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]),
        body,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-clause equivalence: every compilable random clause answers
    /// exactly like the interpreter on every example.
    #[test]
    fn compiled_clause_agrees_with_interpreter(
        seed in 0u64..u64::MAX / 2,
        n_consts in 3usize..9,
        n_r in 0usize..16,
        n_s in 0usize..16,
    ) {
        let world = build_world(seed, n_consts, n_r, n_s);
        let qcfg = QueryConfig::default();
        let mut compiled = 0usize;
        for clause in &world.clauses {
            let Ok(p) = compile_clause(&world.db, clause, &CompileConfig::default()) else {
                // These worlds are small; nothing here should decline.
                panic!("seed {}: unexpectedly declined {}", world.seed, clause.render(&world.db));
            };
            compiled += 1;
            for example in &world.examples {
                prop_assert_eq!(
                    p.covers(&world.db, &example.args),
                    clause_covers(&world.db, clause, example, &qcfg),
                    "seed {} disagrees on {} for {}",
                    world.seed,
                    example.render(&world.db),
                    clause.render(&world.db)
                );
            }
        }
        prop_assert!(compiled > 0 || world.clauses.is_empty());
    }

    /// Definition-level equivalence, the exact /predict evaluation recipe:
    /// compiled disjunction first, interpreter for declined clauses on the
    /// tuples no compiled clause covered.
    #[test]
    fn compiled_definition_agrees_with_interpreter(
        seed in 0u64..u64::MAX / 2,
        n_consts in 3usize..9,
        n_r in 0usize..16,
        n_s in 0usize..16,
    ) {
        let world = build_world(seed, n_consts, n_r, n_s);
        let definition = Definition {
            clauses: world.clauses.clone(),
        };
        // Tight limits force some clauses to decline, exercising the
        // mixed compiled-plus-interpreted path.
        let tight = CompileConfig {
            max_slots: 4,
            ..CompileConfig::default()
        };
        let qcfg = QueryConfig::default();
        for cfg in [CompileConfig::default(), tight] {
            let plans = compile_definition(&world.db, &definition, &cfg);
            let mut scratch = EvalScratch::default();
            for example in &world.examples {
                let mut covered = plans.covers_compiled(&world.db, &example.args);
                if !covered && !plans.is_fully_compiled() {
                    covered = plans.declined().iter().any(|&(i, _)| {
                        clause_covers_args(
                            &world.db,
                            &definition.clauses[i],
                            example.rel,
                            &example.args,
                            &qcfg,
                            &mut scratch,
                        )
                    });
                }
                prop_assert_eq!(
                    covered,
                    definition_covers(&world.db, &definition, example, &qcfg),
                    "seed {} disagrees on {} (declined {}/{})",
                    world.seed,
                    example.render(&world.db),
                    plans.num_declined(),
                    definition.len()
                );
            }
        }
    }
}

/// Directed companion so the property can't pass vacuously: a fixed world
/// where coverage is known by construction, checked through the compiled
/// engine.
#[test]
fn compiled_engine_agrees_on_known_world() {
    let mut db = Database::new();
    let r = db.add_relation("r", &["a", "b"]);
    let s = db.add_relation("s", &["a", "b"]);
    let u = db.add_relation("u", &["a"]);
    let t = db.add_relation("t", &["a", "b"]);
    db.insert(r, &["x", "m"]);
    db.insert(s, &["m", "y"]);
    db.insert(u, &["m"]);
    db.insert(r, &["x2", "m2"]); // chain with no u(m2)
    db.insert(s, &["m2", "y2"]);
    db.insert(t, &["x", "y"]); // intern example constants
    db.insert(t, &["x2", "y2"]);
    db.build_indexes();

    let v = |n| Term::Var(VarId(n));
    // t(a, b) ← r(a, z), s(z, b), u(z)
    let clause = Clause::new(
        Literal::new(t, vec![v(0), v(1)]),
        vec![
            Literal::new(r, vec![v(0), v(2)]),
            Literal::new(s, vec![v(2), v(1)]),
            Literal::new(u, vec![v(2)]),
        ],
    );
    let plan = compile_clause(&db, &clause, &CompileConfig::default()).unwrap();
    let x = db.lookup("x").unwrap();
    let y = db.lookup("y").unwrap();
    let x2 = db.lookup("x2").unwrap();
    let y2 = db.lookup("y2").unwrap();
    let cases = [
        ([x, y], true),    // full chain with u
        ([x2, y2], false), // chain but no u(m2)
        ([x, y2], false),  // chains don't cross
    ];
    for (args, expected) in &cases {
        assert_eq!(plan.covers(&db, args), *expected, "wrong on {args:?}");
    }
}
