//! Property suite for the plan-observability layer: on randomized worlds,
//! (1) the EXPLAIN / EXPLAIN ANALYZE JSON document round-trips through
//! `obs::json` byte-identically (parse, re-render, compare), and (2) the
//! per-operator runtime tallies satisfy their flow-conservation
//! invariants — what one step emits is exactly what the next step enters,
//! and per-variant match counts sum to the clause's match count.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point
#![cfg(not(miri))] // proptest-heavy: hundreds of cases, far too slow under miri

use autobias::clause::{Clause, Definition, Literal, Term, VarId};
use obs::json::Json;
use plan::{compile_definition, Analyzed, BatchTally, CompileConfig, ExecScratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::{Const, Database, RelId};

struct World {
    db: Database,
    tuples: Vec<[Const; 2]>,
    definition: Definition,
    seed: u64,
}

#[derive(Clone, Copy)]
struct Rels {
    r: RelId,
    s: RelId,
    u: RelId,
    t: RelId,
}

fn build_world(seed: u64, n_consts: usize, n_r: usize, n_s: usize) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let r = db.add_relation("r", &["a", "b"]);
    let s = db.add_relation("s", &["a", "b"]);
    let u = db.add_relation("u", &["a"]);
    let t = db.add_relation("t", &["a", "b"]);
    let rels = Rels { r, s, u, t };

    let names: Vec<String> = (0..n_consts).map(|i| format!("c{i}")).collect();
    for name in &names {
        db.insert(t, &[name, name]);
    }
    let pick = |rng: &mut StdRng| rng.random_range(0..n_consts);
    for _ in 0..n_r {
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        db.insert(r, &[&names[a], &names[b]]);
    }
    for _ in 0..n_s {
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        db.insert(s, &[&names[a], &names[b]]);
    }
    for name in &names {
        if rng.random_range(0..2u32) == 0 {
            db.insert(u, &[name]);
        }
    }
    db.build_indexes();

    let consts: Vec<Const> = names.iter().map(|n| db.lookup(n).unwrap()).collect();
    let tuples: Vec<[Const; 2]> = (0..8)
        .map(|_| {
            let (a, b) = (rng.random_range(0..n_consts), rng.random_range(0..n_consts));
            [consts[a], consts[b]]
        })
        .collect();
    let clauses: Vec<Clause> = (0..5)
        .map(|_| random_clause(&mut rng, rels, &consts))
        .collect();
    World {
        db,
        tuples,
        definition: Definition { clauses },
        seed,
    }
}

/// Same undisciplined clause generator as `compiled_vs_interpreted`:
/// disconnected components, repeated variables, body constants, and free
/// variables all stress the rendering and the tallies.
fn random_clause(rng: &mut StdRng, rels: Rels, consts: &[Const]) -> Clause {
    let term = |rng: &mut StdRng| {
        if rng.random_range(0..5u32) == 0 {
            Term::Const(consts[rng.random_range(0..consts.len())])
        } else {
            Term::Var(VarId(rng.random_range(0..5u32)))
        }
    };
    let mut body = Vec::new();
    for _ in 0..rng.random_range(0..=4usize) {
        match rng.random_range(0..3u32) {
            0 => {
                let (a, b) = (term(rng), term(rng));
                body.push(Literal::new(rels.r, vec![a, b]));
            }
            1 => {
                let (a, b) = (term(rng), term(rng));
                body.push(Literal::new(rels.s, vec![a, b]));
            }
            _ => {
                let a = term(rng);
                body.push(Literal::new(rels.u, vec![a]));
            }
        }
    }
    Clause::new(
        Literal::new(rels.t, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]),
        body,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// EXPLAIN and EXPLAIN ANALYZE emit canonical JSON: parsing with
    /// `obs::json` and re-rendering reproduces the exact bytes. Runs under
    /// both a default and a deliberately tight compile config so the
    /// document mixes compiled and declined clauses.
    #[test]
    fn explain_json_round_trips_byte_identically(
        seed in 0u64..u64::MAX / 2,
        n_consts in 3usize..9,
        n_r in 0usize..16,
        n_s in 0usize..16,
    ) {
        let world = build_world(seed, n_consts, n_r, n_s);
        let tight = CompileConfig { max_slots: 4, ..CompileConfig::default() };
        for cfg in [CompileConfig::default(), tight] {
            let plans = compile_definition(&world.db, &world.definition, &cfg);
            let mut tally = BatchTally::for_definition(&plans);
            let mut scratch = ExecScratch::default();
            for args in &world.tuples {
                let _ = plans.covers_compiled_tallied(&world.db, args, &mut scratch, &mut tally);
            }
            for analyzed in [None, Some(Analyzed { tally: &tally, batches: 1 })] {
                let json = plan::explain_json(
                    &world.db, Some("w"), &world.definition, Some(&plans), analyzed,
                );
                let parsed = Json::parse(&json)
                    .unwrap_or_else(|e| panic!("seed {}: invalid JSON: {e}", world.seed));
                prop_assert_eq!(
                    parsed.to_string(), json.clone(),
                    "seed {} does not round-trip", world.seed
                );
                let clauses = parsed.get("clauses").unwrap().as_arr().unwrap();
                prop_assert_eq!(clauses.len(), world.definition.clauses.len());
            }
        }
    }

    /// Flow conservation of the runtime tallies: variant selections enter
    /// step 0, each step's emissions are the next step's entries, final-step
    /// emissions across variants sum to the clause's matches, and no step
    /// classifies more candidates than it saw.
    #[test]
    fn tallies_sum_consistently_across_variants(
        seed in 0u64..u64::MAX / 2,
        n_consts in 3usize..9,
        n_r in 0usize..16,
        n_s in 0usize..16,
    ) {
        let world = build_world(seed, n_consts, n_r, n_s);
        let plans = compile_definition(&world.db, &world.definition, &CompileConfig::default());
        let mut tally = BatchTally::for_definition(&plans);
        let mut scratch = ExecScratch::default();
        for args in &world.tuples {
            let _ = plans.covers_compiled_tallied(&world.db, args, &mut scratch, &mut tally);
        }
        for (plan, ct) in plans.plans().iter().zip(&tally.clauses) {
            let selected: u64 = ct.variants.iter().map(|v| v.selected).sum();
            prop_assert!(
                selected <= ct.evals,
                "seed {}: selected {selected} > evals {}", world.seed, ct.evals
            );
            let all_nonempty = (0..plan.num_variants()).all(|vi| plan.variant_len(vi) > 0);
            let mut last_emitted = 0u64;
            for vt in &ct.variants {
                if let Some(first) = vt.steps.first() {
                    prop_assert_eq!(
                        first.entries, vt.selected,
                        "seed {}: step 0 entries != selections", world.seed
                    );
                }
                for w in vt.steps.windows(2) {
                    prop_assert_eq!(
                        w[1].entries, w[0].emitted,
                        "seed {}: step entries != upstream emissions", world.seed
                    );
                }
                for st in &vt.steps {
                    prop_assert!(
                        st.emitted + st.rejected <= st.candidates,
                        "seed {}: emitted+rejected > candidates", world.seed
                    );
                }
                if let Some(last) = vt.steps.last() {
                    last_emitted += last.emitted;
                }
            }
            if all_nonempty {
                prop_assert_eq!(
                    last_emitted, ct.matches,
                    "seed {}: final emissions != matches", world.seed
                );
            }
        }
    }
}
