//! Public-API property suite for the plan soundness verifier: on random
//! worlds, every definition compiled through [`plan::compile_definition`]
//! carries a clean verification report, the offline re-run
//! ([`plan::verify_definition`]) agrees, and — since verification declines
//! rather than fails — the compiled-plus-fallback evaluation still matches
//! the interpreter. The randomized mutation-kill half of the suite lives in
//! `src/verify.rs` unit tests, where plan internals are reachable.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point
#![cfg(not(miri))] // proptest-heavy: hundreds of cases, far too slow under miri

use autobias::clause::{Clause, Definition, Literal, Term, VarId};
use autobias::example::Example;
use autobias::query::{definition_covers, QueryConfig};
use plan::{compile_definition, CompileConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::{Const, Database};

fn build_world(
    seed: u64,
    n_consts: usize,
    n_r: usize,
    n_s: usize,
) -> (Database, Definition, Vec<Example>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let r = db.add_relation("r", &["a", "b"]);
    let s = db.add_relation("s", &["a", "b"]);
    let u = db.add_relation("u", &["a"]);
    let t = db.add_relation("t", &["a", "b"]);

    let names: Vec<String> = (0..n_consts).map(|i| format!("c{i}")).collect();
    for name in &names {
        db.insert(t, &[name, name]);
    }
    let pick = |rng: &mut StdRng| rng.random_range(0..n_consts);
    for _ in 0..n_r {
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        db.insert(r, &[&names[a], &names[b]]);
    }
    for _ in 0..n_s {
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        db.insert(s, &[&names[a], &names[b]]);
    }
    for name in &names {
        if rng.random_range(0..2u32) == 0 {
            db.insert(u, &[name]);
        }
    }
    db.build_indexes();

    let consts: Vec<Const> = names.iter().map(|n| db.lookup(n).unwrap()).collect();
    let examples: Vec<Example> = (0..6)
        .map(|_| {
            let (a, b) = (rng.random_range(0..n_consts), rng.random_range(0..n_consts));
            Example::new(t, vec![consts[a], consts[b]])
        })
        .collect();
    let term = |rng: &mut StdRng| {
        if rng.random_range(0..5u32) == 0 {
            Term::Const(consts[rng.random_range(0..consts.len())])
        } else {
            Term::Var(VarId(rng.random_range(0..5u32)))
        }
    };
    let clause = |rng: &mut StdRng| {
        let mut body = Vec::new();
        for _ in 0..rng.random_range(0..=4usize) {
            let lit = match rng.random_range(0..3u32) {
                0 => Literal::new(r, vec![term(rng), term(rng)]),
                1 => Literal::new(s, vec![term(rng), term(rng)]),
                _ => Literal::new(u, vec![term(rng)]),
            };
            body.push(lit);
        }
        Clause::new(
            Literal::new(t, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]),
            body,
        )
    };
    let definition = Definition {
        clauses: (0..6).map(|_| clause(&mut rng)).collect(),
    };
    (db, definition, examples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiler output always verifies clean — at the compile boundary
    /// (the report carried on the `CompiledDefinition`), on the offline
    /// re-run, and with no verification-declined clauses — and the served
    /// verdicts still match the interpreter.
    #[test]
    fn compiled_definitions_verify_clean_and_serve_correctly(
        seed in 0u64..u64::MAX / 2,
        n_consts in 3usize..9,
        n_r in 0usize..16,
        n_s in 0usize..16,
    ) {
        let (db, definition, examples) = build_world(seed, n_consts, n_r, n_s);
        let compiled = compile_definition(&db, &definition, &CompileConfig::default());
        if let Some(report) = compiled.verify_report() {
            prop_assert!(
                !report.has_errors(),
                "seed {seed}: compile-time verification flagged compiler output:\n{}",
                report.render_text()
            );
        }
        prop_assert!(
            !compiled
                .declined()
                .iter()
                .any(|(_, why)| matches!(why, plan::Declined::FailedVerification(_))),
            "seed {seed}: a compiler-produced plan was rejected"
        );
        let offline = plan::verify_definition(&db, &definition, &compiled);
        prop_assert!(
            offline.is_clean(),
            "seed {seed}: offline verification disagrees:\n{}",
            offline.render_text()
        );
        let qcfg = QueryConfig::default();
        for example in &examples {
            prop_assert_eq!(
                compiled.covers_compiled(&db, &example.args),
                definition_covers(&db, &definition, example, &qcfg),
                "seed {seed}: verified plans disagree with the interpreter on {}",
                example.render(&db)
            );
        }
    }
}

/// Directed companion so the property can't pass vacuously: a fixed
/// multi-component, multi-variant definition verifies clean through every
/// public entry point.
#[test]
fn known_world_verifies_clean() {
    let mut db = Database::new();
    let r = db.add_relation("r", &["a", "b"]);
    let s = db.add_relation("s", &["a", "b"]);
    let u = db.add_relation("u", &["a"]);
    let t = db.add_relation("t", &["a", "b"]);
    db.insert(r, &["x", "m"]);
    db.insert(s, &["m", "y"]);
    db.insert(u, &["m"]);
    db.insert(t, &["x", "y"]);
    db.build_indexes();

    let v = |n| Term::Var(VarId(n));
    let definition = Definition {
        clauses: vec![
            // Chain with a free-variable component: two barriers.
            Clause::new(
                Literal::new(t, vec![v(0), v(1)]),
                vec![
                    Literal::new(r, vec![v(0), v(2)]),
                    Literal::new(s, vec![v(2), v(1)]),
                    Literal::new(u, vec![v(3)]),
                ],
            ),
            // Symmetric self-join: compiles to multiple variants.
            Clause::new(
                Literal::new(t, vec![v(0), v(1)]),
                vec![
                    Literal::new(r, vec![v(2), v(0)]),
                    Literal::new(r, vec![v(2), v(1)]),
                ],
            ),
        ],
    };
    let compiled = compile_definition(&db, &definition, &CompileConfig::default());
    assert!(compiled.is_fully_compiled());
    if let Some(report) = compiled.verify_report() {
        assert!(report.is_clean(), "{}", report.render_text());
    }
    let report = plan::verify_definition(&db, &definition, &compiled);
    assert!(report.is_clean(), "{}", report.render_text());
}
