//! Compiled evaluation plans for learned Horn definitions — the serve-side
//! half of the paper's learn-once/serve-fast split.
//!
//! The interpreter in [`autobias::query`] re-derives everything per tuple:
//! which literal to try next, which index to probe, whether each argument is
//! bound — and allocates candidate lists at every backtracking node. That is
//! the right trade-off during learning, where clauses are transient. A model
//! that reached the registry is different: it will be evaluated millions of
//! times against a frozen, fully indexed database, and the static verifier
//! (`analyze`, findings AB101–AB110) has already guaranteed the structural
//! invariants — head-connectedness and range restriction — that make a
//! one-shot compilation sound without defensive re-checks.
//!
//! [`compile_definition`] turns each clause into a [`CompiledClause`]: an
//! ordered pipeline of index-probe steps (literal order chosen greedily by
//! estimated selectivity from relation cardinalities, in the spirit of
//! `core::semijoin_tree`), with every bound/free argument decision resolved
//! at compile time into a flat op list. Execution is a zero-allocation
//! backtracking walk over `relstore`'s posting lists — see [`exec`].
//!
//! Compilation *declines* (rather than fails) on clauses outside the plan
//! shape — too many literals or variables for the fixed-size runtime
//! buffers, or arities out of sync with the catalog. Declined clauses are
//! counted on [`PLAN_FALLBACK`] and served by the interpreter, so the
//! compiled path is an optimization, never a semantics change. The
//! differential suite in `tests/compiled_vs_interpreted.rs` holds the two
//! engines equal on randomized worlds, and [`verify`] statically proves
//! each emitted plan equivalent to its source clause at every compile
//! boundary — a plan that fails the proof is declined to the interpreter
//! and counted on [`PLAN_VERIFY_REJECTS`], so even a compiler bug can make
//! serving slower but never wrong.
//!
//! Setting `AUTOBIAS_COMPILE=0` disables compilation globally ([`enabled`]),
//! which is how the serve-level byte-identity tests drive both engines
//! through the same HTTP surface.
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod compile;
pub mod exec;
pub mod explain;
pub mod stats;
pub mod verify;

pub use compile::{
    compile_clause, compile_definition, CompileConfig, CompiledClause, CompiledDefinition, Declined,
};
pub use exec::ExecScratch;
pub use explain::{explain_json, explain_text, Analyzed, EXPLAIN_VERSION};
pub use stats::{
    q_error, step_q_errors, BatchTally, ClauseTally, PlanStats, StepTally, TallyTotals,
    VariantTally,
};
pub use verify::{verify_clause, verify_definition};

use obs::metrics::Counter;
use std::sync::Once;

/// Clauses compiled into evaluation plans at model load.
pub static PLAN_COMPILED: Counter = Counter::new(
    "autobias_plan_compiled_total",
    "Clauses compiled into index-probe evaluation plans at model load.",
);

/// Clauses the compiler declined; the interpreter serves them.
pub static PLAN_FALLBACK: Counter = Counter::new(
    "autobias_plan_fallback_total",
    "Clauses the plan compiler declined, served by the interpreter instead.",
);

/// Plans rejected by the soundness verifier ([`verify`]) at a compile
/// boundary; also counted on [`PLAN_FALLBACK`] since the interpreter takes
/// over. Nonzero means a compiler bug was caught before it could serve a
/// wrong answer.
pub static PLAN_VERIFY_REJECTS: Counter = Counter::new(
    "autobias_plan_verify_rejects_total",
    "Compiled plans rejected by the soundness verifier, served by the interpreter instead.",
);

/// Registers the plan counters with the [`obs::metrics`] registry so a
/// `/metrics` scrape sees them even before the first model loads. Cheap and
/// idempotent.
pub fn register() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        obs::metrics::register(&PLAN_COMPILED);
        obs::metrics::register(&PLAN_FALLBACK);
        obs::metrics::register(&PLAN_VERIFY_REJECTS);
    });
}

/// Whether plan compilation is enabled (`AUTOBIAS_COMPILE` unset or not
/// `"0"`). Read per call, not cached, so differential tests can toggle the
/// engines within one process.
pub fn enabled() -> bool {
    std::env::var("AUTOBIAS_COMPILE").map_or(true, |v| v != "0")
}
